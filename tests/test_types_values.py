"""Tests for SQL value semantics: comparisons, sorting, LIKE, coercion."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConstraintError, TypeError_
from repro.types.datatypes import (
    BooleanType,
    DoubleType,
    IntegerType,
    IntervalType,
    TimestampType,
    VarcharType,
    type_from_name,
)
from repro.types.values import sql_compare, sql_equal, sql_like, sql_sort_key


class TestSqlCompare:
    def test_numbers(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(2, 2) == 0

    def test_mixed_int_float(self):
        assert sql_compare(1, 1.0) == 0
        assert sql_compare(1, 1.5) == -1

    def test_strings(self):
        assert sql_compare("a", "b") == -1
        assert sql_compare("b", "b") == 0

    def test_null_propagates(self):
        assert sql_compare(None, 1) is None
        assert sql_compare(1, None) is None
        assert sql_compare(None, None) is None

    def test_bools(self):
        assert sql_compare(True, False) == 1
        assert sql_compare(False, False) == 0

    def test_bool_vs_number(self):
        assert sql_compare(True, 1) == 0

    def test_incomparable_types_raise(self):
        with pytest.raises(TypeError_):
            sql_compare(1, "a")

    def test_bool_vs_string_raises(self):
        with pytest.raises(TypeError_):
            sql_compare(True, "true")


class TestSqlEqual:
    def test_equal(self):
        assert sql_equal(3, 3) is True

    def test_not_equal(self):
        assert sql_equal(3, 4) is False

    def test_null(self):
        assert sql_equal(None, None) is None
        assert sql_equal(None, 3) is None


class TestSortKey:
    def test_nulls_sort_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sql_sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_numbers_before_strings(self):
        ordered = sorted(["b", 2, "a", 1], key=sql_sort_key)
        assert ordered == [1, 2, "a", "b"]

    def test_mixed_with_null(self):
        ordered = sorted([None, "x", 5], key=sql_sort_key)
        assert ordered == [5, "x", None]

    @given(st.lists(st.one_of(st.none(), st.integers(), st.floats(
        allow_nan=False, allow_infinity=False))))
    def test_sorting_is_stable_total_order(self, values):
        once = sorted(values, key=sql_sort_key)
        twice = sorted(once, key=sql_sort_key)
        assert once == twice

    @given(st.lists(st.one_of(st.none(), st.integers(min_value=-100,
                                                     max_value=100))))
    def test_non_nulls_ascend(self, values):
        ordered = sorted(values, key=sql_sort_key)
        non_null = [v for v in ordered if v is not None]
        assert non_null == sorted(non_null)
        # all Nones at the end
        if None in ordered:
            first_null = ordered.index(None)
            assert all(v is None for v in ordered[first_null:])


class TestSqlLike:
    def test_percent(self):
        assert sql_like("hello", "he%") is True
        assert sql_like("hello", "%llo") is True
        assert sql_like("hello", "%ell%") is True

    def test_underscore(self):
        assert sql_like("cat", "c_t") is True
        assert sql_like("cart", "c_t") is False

    def test_exact(self):
        assert sql_like("abc", "abc") is True
        assert sql_like("abc", "abd") is False

    def test_case_sensitivity(self):
        assert sql_like("Hello", "hello") is False
        assert sql_like("Hello", "hello", case_insensitive=True) is True

    def test_escaped_percent(self):
        assert sql_like("50%", "50\\%") is True
        assert sql_like("500", "50\\%") is False

    def test_null(self):
        assert sql_like(None, "a%") is None
        assert sql_like("a", None) is None

    def test_regex_chars_are_literal(self):
        assert sql_like("a.c", "a.c") is True
        assert sql_like("abc", "a.c") is False

    def test_non_string_raises(self):
        with pytest.raises(TypeError_):
            sql_like(5, "5")

    @given(st.text(alphabet="abc%_", max_size=10))
    def test_pattern_matches_itself_when_no_wildcards(self, text):
        if "%" not in text and "_" not in text:
            assert sql_like(text, text) is True


class TestDataTypes:
    def test_integer_coerce(self):
        t = IntegerType()
        assert t.coerce("42") == 42
        assert t.coerce(7.0) == 7
        assert t.coerce(None) is None

    def test_integer_rejects_fraction(self):
        with pytest.raises(TypeError_):
            IntegerType().coerce(1.5)

    def test_integer_rejects_garbage(self):
        with pytest.raises(TypeError_):
            IntegerType().coerce("forty-two")

    def test_double_coerce(self):
        t = DoubleType()
        assert t.coerce("3.14") == 3.14
        assert t.coerce(2) == 2.0
        assert isinstance(t.coerce(2), float)

    def test_boolean_coerce(self):
        t = BooleanType()
        assert t.coerce("true") is True
        assert t.coerce("f") is False
        assert t.coerce(1) is True
        assert t.coerce(0) is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(TypeError_):
            BooleanType().coerce("maybe")

    def test_varchar_length_enforced(self):
        t = VarcharType(3)
        assert t.coerce("abc") == "abc"
        with pytest.raises(ConstraintError):
            t.coerce("abcd")

    def test_varchar_unbounded(self):
        assert VarcharType(None).coerce("x" * 10000) == "x" * 10000

    def test_varchar_stringifies_numbers(self):
        assert VarcharType(None).coerce(42) == "42"

    def test_timestamp_coerce(self):
        assert TimestampType().coerce("1970-01-01 00:01:00") == 60.0

    def test_interval_coerce(self):
        assert IntervalType().coerce("5 minutes") == 300.0

    def test_type_from_name(self):
        assert type_from_name("varchar", 50).sql_name() == "varchar(50)"
        assert type_from_name("bigint").name == "bigint"
        assert type_from_name("DOUBLE PRECISION").is_numeric()

    def test_type_from_name_unknown(self):
        with pytest.raises(TypeError_):
            type_from_name("blob")

    def test_length_on_non_char_rejected(self):
        with pytest.raises(TypeError_):
            type_from_name("integer", 10)

    def test_type_equality(self):
        assert VarcharType(50) == VarcharType(50)
        assert VarcharType(50) != VarcharType(60)
        assert IntegerType() == IntegerType()
        assert hash(VarcharType(50)) == hash(VarcharType(50))
