"""Property-based parity: the vectorized executor vs the iterator.

Three layers, each pinned bit-for-bit to the row-at-a-time semantics:

- *kernels*: ``compile_batch_expr`` against ``compile_expr`` over random
  batches with NULLs, empty batches, and single-row batches — including
  SQL three-valued logic (Kleene AND/OR, non-Kleene BETWEEN, IN with a
  NULL item) and error parity (division by zero);
- *aggregates*: the sliced/batched aggregation against the iterator
  HashAggregate through a full CQ (``Database(vectorize=...)``);
- *mixed mode*: a plan with an unconvertible operator keeps a batch
  source below an iterator aggregate and still matches.

The final class proves the engine stays fully functional when numpy is
missing (``REPRO_DISABLE_NUMPY``), satisfying the optional-dependency
contract in :mod:`repro.exec.columnar`.
"""

import math
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.errors import ExecutionError
from repro.exec.columnar import HAS_NUMPY, ColumnBatch
from repro.exec.expressions import RowLayout, compile_expr
from repro.sql.parser import parse_statement
from repro.types.datatypes import (BooleanType, DoubleType, IntegerType,
                                   VarcharType)

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="vectorized executor needs numpy")

# schema shared by the kernel tests: two doubles, two ints, a bool, a str
COLUMNS = ["a", "b", "i", "j", "p", "s"]
TYPES = [DoubleType(), DoubleType(), IntegerType(), IntegerType(),
         BooleanType(), VarcharType(16, "varchar")]
LAYOUT = RowLayout([(None, name, t) for name, t in zip(COLUMNS, TYPES)])


def expr_of(fragment):
    return parse_statement(f"SELECT {fragment} FROM t").items[0].expr


def run_iterator(expr, rows):
    fn = compile_expr(expr, LAYOUT)
    return [fn(row, {}) for row in rows]


def run_batch(expr, rows):
    from repro.exec.vector import compile_batch_expr
    kernel = compile_batch_expr(expr, LAYOUT, {})
    batch = ColumnBatch.from_rows(rows, TYPES)
    values, mask = kernel(batch, {})
    out = values.tolist() if hasattr(values, "tolist") else list(values)
    if mask is not None:
        out = [None if m else v for v, m in zip(out, mask.tolist())]
    return out


def assert_lanes_equal(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        if isinstance(e, float) and isinstance(g, float):
            assert g == e or math.isclose(g, e, rel_tol=1e-12), (g, e)
        else:
            assert g == e, (g, e)


finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
nullable_double = st.one_of(st.none(), finite)
nullable_int = st.one_of(st.none(), st.integers(-2**31, 2**31))
nullable_bool = st.one_of(st.none(), st.booleans())
nullable_str = st.one_of(st.none(), st.sampled_from(["", "a", "b", "xyz"]))

row_strategy = st.tuples(nullable_double, nullable_double, nullable_int,
                         nullable_int, nullable_bool, nullable_str)
# min_size=0 covers the empty batch; Hypothesis shrinks through size 1
rows_strategy = st.lists(row_strategy, min_size=0, max_size=40)

# every vectorizable expression shape; divisors are made non-zero so the
# lanes are comparable (error parity is its own test below)
EXPRESSIONS = [
    "a + b", "a - b", "a * b", "-a",
    "a / 3.5", "i % 7", "(i + 1000) / (j * j + 1)",
    "i + j * 2",
    "a < b", "a <= b", "a > b", "a >= b", "a = b", "a <> b",
    "i >= j", "i = j",
    "s = 'a'", "s <> 'xyz'",
    "p AND i < j", "p OR a > 0.0", "NOT p",
    "a IS NULL", "a IS NOT NULL", "s IS NULL",
    "i BETWEEN j AND 100", "a BETWEEN -1.5 AND 1.5",
    "i NOT BETWEEN -10 AND 10",
    "i IN (1, 2, 3)", "s IN ('a', 'b')", "i NOT IN (0, 5)",
]


@needs_numpy
class TestKernelParity:
    @pytest.mark.parametrize("fragment", EXPRESSIONS)
    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy)
    def test_kernel_matches_iterator(self, fragment, rows):
        expr = expr_of(fragment)
        assert_lanes_equal(run_batch(expr, rows),
                           run_iterator(expr, rows))

    @pytest.mark.parametrize("fragment", EXPRESSIONS)
    def test_empty_batch(self, fragment):
        assert run_batch(expr_of(fragment), []) == []

    @pytest.mark.parametrize("fragment", EXPRESSIONS)
    def test_all_null_single_row(self, fragment):
        rows = [(None,) * len(COLUMNS)]
        expr = expr_of(fragment)
        assert_lanes_equal(run_batch(expr, rows),
                           run_iterator(expr, rows))

    @pytest.mark.parametrize("fragment", ["i / j", "i % j"])
    def test_division_by_zero_parity(self, fragment):
        rows = [(1.0, 1.0, 10, 0, True, "a")]
        expr = expr_of(fragment)
        with pytest.raises(ExecutionError, match="division by zero"):
            run_iterator(expr, rows)
        with pytest.raises(ExecutionError, match="division by zero"):
            run_batch(expr, rows)

    def test_null_divisor_is_null_not_error(self):
        rows = [(1.0, 1.0, 10, None, True, "a")]
        expr = expr_of("i / j")
        assert run_iterator(expr, rows) == [None]
        assert run_batch(expr, rows) == [None]

    @pytest.mark.parametrize("fragment", [
        "i IN (1, NULL)",       # NULL literal has no type family
        "s || 'x'",             # string concat
        "CASE WHEN p THEN 1 ELSE 2 END",
        "s LIKE 'a%'",
    ])
    def test_unvectorizable_shapes_raise(self, fragment):
        """Shapes with no kernel must refuse loudly (the planner then
        keeps the iterator operator) rather than diverge silently."""
        from repro.exec.vector import NotVectorizable, compile_batch_expr
        with pytest.raises(NotVectorizable):
            compile_batch_expr(expr_of(fragment), LAYOUT, {})


# ---------------------------------------------------------------------------
# end-to-end: whole CQs, vectorize on vs off
# ---------------------------------------------------------------------------


AGG_QUERY = ("SELECT k, count(*), count(v), sum(v), avg(v), min(v), max(v) "
             "FROM s <VISIBLE '20 seconds' ADVANCE '10 seconds'> GROUP BY k")
FILTER_QUERY = ("SELECT sum(v), count(*) "
                "FROM s <VISIBLE '30 seconds' ADVANCE '10 seconds'> "
                "WHERE v IS NOT NULL AND v > -500000.0 AND k <> 9")

events_strategy = st.lists(
    st.tuples(st.integers(0, 3),                     # group key
              st.one_of(st.none(), finite),          # value (nullable)
              st.integers(0, 90)),                   # event time, seconds
    min_size=1, max_size=60,
).map(lambda evs: sorted(evs, key=lambda e: e[2]))


def run_cq(query, events, vectorize):
    db = Database(vectorize=vectorize)
    db.execute("CREATE STREAM s (k integer, v double, "
               "ts timestamp CQTIME USER)")
    sub = db.subscribe(query)
    db.insert_stream("s", [(k, v, float(t)) for k, v, t in events])
    db.advance_streams(float(events[-1][2]) + 60.0)
    return [(w.close_time, sorted(w.rows)) for w in sub.poll()]


@needs_numpy
class TestEndToEndParity:
    @settings(max_examples=25, deadline=None)
    @given(events=events_strategy)
    def test_grouped_aggregates_match(self, events):
        assert run_cq(AGG_QUERY, events, True) == \
            run_cq(AGG_QUERY, events, False)

    @settings(max_examples=25, deadline=None)
    @given(events=events_strategy)
    def test_filtered_aggregates_match(self, events):
        assert run_cq(FILTER_QUERY, events, True) == \
            run_cq(FILTER_QUERY, events, False)

    def test_mixed_mode_unconvertible_aggregate(self):
        """count(DISTINCT ...) has no batch kernel: the aggregate stays
        an iterator operator over a batch source, and the results still
        match the fully-iterator plan."""
        query = ("SELECT count(DISTINCT k), sum(v) "
                 "FROM s <VISIBLE '20 seconds' ADVANCE '10 seconds'> "
                 "WHERE v >= 0.0")
        events = [(k, float(k * 7 % 5), t)
                  for t, k in enumerate(range(40))]
        db = Database()
        db.execute("CREATE STREAM s (k integer, v double, "
                   "ts timestamp CQTIME USER)")
        sub = db.subscribe(query)
        text = db.explain(f"EXPLAIN {query}")
        assert "[mode=batch]" in text and "[mode=iterator]" in text
        assert "BatchSource(s) [mode=batch]" in text
        assert "HashAggregate" in text          # not BatchAggregate
        db.insert_stream("s", [(k, v, float(t)) for k, v, t in events])
        db.advance_streams(float(events[-1][2]) + 60.0)
        got = [(w.close_time, sorted(w.rows)) for w in sub.poll()]
        assert got == run_cq(query, events, False)


class TestNumpyFallback:
    def test_engine_runs_without_numpy(self):
        """REPRO_DISABLE_NUMPY simulates a missing numpy: plans build
        iterator-only and the pipeline still produces correct windows."""
        code = (
            "from repro import Database\n"
            "from repro.exec.columnar import HAS_NUMPY\n"
            "assert not HAS_NUMPY\n"
            "db = Database()\n"
            "db.execute(\"CREATE STREAM s (k integer, "
            "ts timestamp CQTIME USER)\")\n"
            "sub = db.subscribe(\"SELECT k, count(*) FROM s "
            "<VISIBLE '10 seconds' ADVANCE '10 seconds'> GROUP BY k\")\n"
            "text = db.explain(\"EXPLAIN SELECT count(*) FROM s "
            "<VISIBLE '10 seconds'>\")\n"
            "assert 'Batch' not in text and 'mode=' not in text, text\n"
            "db.insert_stream('s', [(1, 1.0), (1, 2.0), (2, 3.0)])\n"
            "db.advance_streams(30.0)\n"
            "w = sub.poll()[0]\n"
            "assert sorted(w.rows) == [(1, 2), (2, 1)], w.rows\n"
            "print('OK')\n"
        )
        env = dict(os.environ, REPRO_DISABLE_NUMPY="1",
                   PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True, timeout=60)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"
