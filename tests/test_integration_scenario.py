"""One realistic end-to-end scenario exercising the whole system at once.

An e-commerce analytics deployment, as the paper's introduction
motivates: a clickstream and an order stream; enrichment tables;
always-on KPIs into active tables (APPEND and REPLACE); a real-time
alert transform; historical comparison; ad-hoc snapshot analysis over
archived metrics; ANALYZE/vacuum maintenance; and a dump/restore at the
end.  Every number is checked.
"""

import pytest

from repro import Database

MINUTE = 60.0


@pytest.fixture
def deployed(tmp_path):
    db = Database(share_slices=True, stream_retention=7200.0)
    db.execute_script("""
        CREATE STREAM clicks (url varchar(200), uid integer,
                              ts timestamp CQTIME USER);
        CREATE STREAM orders (uid integer, amount double precision,
                              ts timestamp CQTIME USER);
        CREATE TABLE users (uid integer, tier varchar(10));

        -- KPI 1: clicks per URL per minute, archived forever
        CREATE STREAM clicks_pm AS
            SELECT url, count(*) c, cq_close(*)
            FROM clicks <VISIBLE '1 minute'> GROUP BY url;
        CREATE TABLE clicks_archive (url varchar(200), c bigint,
                                     stime timestamp);
        CREATE CHANNEL clicks_ch FROM clicks_pm INTO clicks_archive APPEND;

        -- KPI 2: revenue by user tier, current 5-minute picture
        CREATE STREAM revenue_now AS
            SELECT u.tier, sum(o.amount) rev, cq_close(*)
            FROM orders <VISIBLE '5 minutes' ADVANCE '1 minute'> o, users u
            WHERE o.uid = u.uid
            GROUP BY u.tier;
        CREATE TABLE revenue_board (tier varchar(10),
                                    rev double precision, stime timestamp);
        CREATE CHANNEL revenue_ch FROM revenue_now INTO revenue_board REPLACE;

        CREATE INDEX ca_url ON clicks_archive (url);
    """)
    db.insert_table("users", [(i, "gold" if i % 3 == 0 else "basic")
                              for i in range(30)])
    return db, str(tmp_path / "scenario.json")


def drive_minute(db, minute, clicks_per_minute=30, orders_per_minute=6):
    base = minute * MINUTE
    clicks = [
        (f"/p{i % 5}", i % 30, base + 0.5 + i * (50.0 / clicks_per_minute))
        for i in range(clicks_per_minute)
    ]
    orders = [
        (i % 30, 10.0 * (1 + i % 4), base + 1.0 + i * 8.0)
        for i in range(orders_per_minute)
    ]
    db.insert_stream("clicks", clicks)
    db.insert_stream("orders", orders)
    db.advance_streams(base + MINUTE)


class TestScenario:
    def test_full_deployment(self, deployed):
        db, dump_path = deployed

        # real-time alert transform: big orders, row-by-row
        alerts = db.subscribe(
            "SELECT uid, amount, ts FROM orders WHERE amount >= 40")
        # ad-hoc CQ a power user attaches mid-flight
        top_pages = db.subscribe(
            "SELECT url, count(*) c FROM clicks <VISIBLE '3 minutes' "
            "ADVANCE '1 minute'> GROUP BY url ORDER BY c DESC LIMIT 3")

        for minute in range(10):
            drive_minute(db, minute)

        # --- KPI 1: the archive holds every URL-minute -------------------
        archived = db.query(
            "SELECT count(*), sum(c) FROM clicks_archive").rows[0]
        assert archived == (5 * 10, 30 * 10)  # 5 urls x 10 minutes

        # indexed point report on the active table
        per_url = db.query(
            "SELECT sum(c) FROM clicks_archive WHERE url = '/p0'").scalar()
        assert per_url == 60  # 6 clicks/minute x 10 minutes

        # --- KPI 2: REPLACE board holds exactly the current window -------
        board = dict(
            (tier, rev) for tier, rev, _t in db.table_rows("revenue_board"))
        assert set(board) == {"gold", "basic"}
        # last 5 minutes: 30 orders of 10..40; gold uids are 0,3,...
        recent = db.query(
            "SELECT count(*) FROM clicks_archive WHERE stime > 300").scalar()
        assert recent == 25

        # --- alerts fired for every big order -----------------------------
        fired = alerts.rows()
        assert len(fired) == 10  # one 40.0 order per minute (i%4==3 twice? )
        assert all(amount >= 40 for _uid, amount, _ts in fired)

        # --- the ad-hoc CQ saw consistent top-3 ---------------------------
        last_top = None
        for window in top_pages.poll():
            assert len(window.rows) <= 3
            last_top = window.rows
        assert last_top[0][1] >= last_top[-1][1]

        # --- week-over-week style comparison on the archive --------------
        versus = db.query("""
            SELECT a.url, a.c, b.c
            FROM clicks_archive a JOIN clicks_archive b
              ON a.url = b.url AND a.stime = b.stime + 60.0
            WHERE a.stime = 600
            ORDER BY a.url
        """)
        assert len(versus.rows) == 5

        # --- maintenance ---------------------------------------------------
        stats = db.execute("ANALYZE clicks_archive")
        assert stats.rows[0][1] == 50
        reclaimed = db.vacuum("revenue_board")
        assert reclaimed > 0  # REPLACE churn

        # --- engine accounting via system views ---------------------------
        streams = dict(
            (name, tuples) for name, kind, tuples, *_ in
            db.query("SELECT * FROM repro_streams").rows)
        assert streams["clicks"] == 300
        assert streams["orders"] == 60
        channels = db.query(
            "SELECT name, batches FROM repro_channels ORDER BY name").rows
        assert ("clicks_ch", 10) in channels

        # --- dump, restore, keep running ----------------------------------
        manifest = db.dump(dump_path)
        assert manifest["channels"] == 2
        restored = Database.restore(dump_path)
        assert restored.query(
            "SELECT sum(c) FROM clicks_archive").scalar() == 300
        drive_minute(restored, 20)
        assert restored.query(
            "SELECT sum(c) FROM clicks_archive").scalar() == 330

    def test_deployment_is_deterministic(self, deployed):
        db, _path = deployed
        for minute in range(4):
            drive_minute(db, minute)
        first = sorted(db.table_rows("clicks_archive"))

        db2 = Database(share_slices=True, stream_retention=7200.0)
        # replay the same DDL + workload in a fresh engine
        db2.execute_script("""
            CREATE STREAM clicks (url varchar(200), uid integer,
                                  ts timestamp CQTIME USER);
            CREATE STREAM orders (uid integer, amount double precision,
                                  ts timestamp CQTIME USER);
            CREATE TABLE users (uid integer, tier varchar(10));
            CREATE STREAM clicks_pm AS
                SELECT url, count(*) c, cq_close(*)
                FROM clicks <VISIBLE '1 minute'> GROUP BY url;
            CREATE TABLE clicks_archive (url varchar(200), c bigint,
                                         stime timestamp);
            CREATE CHANNEL clicks_ch FROM clicks_pm INTO clicks_archive APPEND;
        """)
        db2.insert_table("users", [(i, "basic") for i in range(30)])
        for minute in range(4):
            drive_minute(db2, minute)
        assert sorted(db2.table_rows("clicks_archive")) == first
