"""Admission control: tenants, quotas, rate limits, tiered shedding,
weighted fair scheduling, and idempotent ingest.

Everything time-sensitive runs on a :class:`~repro.clock.ManualClock`
— no test here sleeps to make a token bucket refill or a retry back
off.  Server-side tests share one manual clock between the client and
the server, so a client-side ``sleep(retry_after)`` *is* the bucket's
refill.
"""

import pytest

from repro import Database
from repro import client
from repro.admission import (
    AdmissionController,
    DedupIndex,
    TokenBucket,
    WeightedFairQueue,
)
from repro.clock import ManualClock
from repro.errors import AdmissionError, ExecutionError, ProtocolError
from repro.server import ServerThread

STREAM_DDL = "CREATE STREAM s (v integer, ts timestamp CQTIME USER)"


# ---------------------------------------------------------------------------
# token bucket
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=ManualClock())
        assert bucket.try_take(5) == 0.0
        assert bucket.admitted == 5

    def test_refills_at_rate(self):
        clk = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clk)
        bucket.try_take(5)
        wait = bucket.try_take(3)
        assert wait == pytest.approx(0.3)
        assert bucket.rejected == 1
        clk.advance(wait)
        assert bucket.try_take(3) == 0.0

    def test_never_exceeds_burst(self):
        clk = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clk)
        clk.advance(100.0)
        assert bucket.available() == 5.0

    def test_full_bucket_overdraft_admits_oversized_batch(self):
        clk = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clk)
        # a batch bigger than burst could never be admitted strictly;
        # a full bucket takes it and goes into debt
        assert bucket.try_take(20) == 0.0
        assert bucket.tokens == -15.0
        # the debt is repaid before anything else gets in
        assert bucket.try_take(1) > 0.0
        clk.advance(1.6)  # 16 tokens: debt + 1
        assert bucket.try_take(1) == 0.0

    def test_configure_clamps_balance(self):
        bucket = TokenBucket(rate=10.0, burst=50.0, clock=ManualClock())
        bucket.configure(burst=5.0)
        assert bucket.tokens == 5.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=5)
        with pytest.raises(ValueError):
            TokenBucket(rate=5, burst=-1)


# ---------------------------------------------------------------------------
# dedup index
# ---------------------------------------------------------------------------


class TestDedupIndex:
    def test_fresh_seq_not_seen_then_recorded(self):
        idx = DedupIndex()
        assert not idx.seen("s", "c1", 1)
        idx.record("s", "c1", 1)
        assert idx.seen("s", "c1", 1)
        assert idx.duplicates == 1

    def test_senders_and_streams_are_independent(self):
        idx = DedupIndex()
        idx.record("s", "c1", 1)
        assert not idx.seen("s", "c2", 1)
        assert not idx.seen("t", "c1", 1)

    def test_below_window_floor_is_conservatively_seen(self):
        idx = DedupIndex(window=8)
        idx.record("s", "c1", 100)
        # 92 is exactly the floor (high - window): treated as applied
        assert idx.seen("s", "c1", 92)
        # gaps inside the window are genuinely unseen
        assert not idx.seen("s", "c1", 95)

    def test_recent_set_stays_bounded(self):
        idx = DedupIndex(window=16)
        for seq in range(1, 1000):
            idx.record("s", "c1", seq)
        state = idx._senders[("s", "c1")]
        assert len(state.recent) <= 2 * 16
        assert idx.watermark("s", "c1") == 999

    def test_forget_stream(self):
        idx = DedupIndex()
        idx.record("s", "c1", 1)
        idx.forget_stream("s")
        assert not idx.seen("s", "c1", 1)
        assert idx.sender_count() == 0


# ---------------------------------------------------------------------------
# weighted fair queue
# ---------------------------------------------------------------------------


class TestWeightedFairQueue:
    def test_system_lane_has_strict_priority(self):
        q = WeightedFairQueue()
        q.put_fair("acme", 1.0, "tenant-job")
        q.put("system-job")
        assert q.get() == "system-job"
        assert q.get() == "tenant-job"

    def test_weights_share_service_proportionally(self):
        q = WeightedFairQueue()
        for i in range(8):
            q.put_fair("light", 1.0, ("light", i))
            q.put_fair("heavy", 3.0, ("heavy", i))
        first8 = [q.get()[0] for _ in range(8)]
        served = q.lane_served()
        assert served["heavy"] >= 2 * served["light"]
        assert "light" in first8  # fairness, not starvation

    def test_idle_lane_rejoins_without_banked_credit(self):
        q = WeightedFairQueue()
        for i in range(10):
            q.put_fair("busy", 1.0, i)
        for _ in range(10):
            q.get()
        # a lane that was idle all along must not now monopolise
        q.put_fair("busy", 1.0, "busy-next")
        q.put_fair("newcomer", 1.0, "new-1")
        q.put_fair("newcomer", 1.0, "new-2")
        first_two = {q.get(), q.get()}
        assert "busy-next" in first_two  # not starved behind newcomer

    def test_none_lane_falls_back_to_system(self):
        q = WeightedFairQueue()
        q.put_fair(None, 1.0, "untenanted")
        q.put_fair("acme", 1.0, "tenanted")
        assert q.get() == "untenanted"

    def test_close_drains_then_stops(self):
        q = WeightedFairQueue()
        q.put_fair("acme", 1.0, "last-job")
        q.close()
        assert q.get() == "last-job"
        assert q.get() is None

    def test_lane_depths(self):
        q = WeightedFairQueue()
        q.put_fair("acme", 1.0, "a")
        q.put("sys")
        depths = q.lane_depths()
        assert depths == {"acme": 1, "(system)": 1}


# ---------------------------------------------------------------------------
# the admission controller
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def controller(self, **kwargs):
        ctl = AdmissionController(clock=ManualClock(), **kwargs)
        ctl.enabled = True
        return ctl

    def test_disabled_controller_admits_everything(self):
        ctl = AdmissionController(clock=ManualClock())
        ctl.configure_tenant("acme", row_quota=1)
        assert ctl.admit("acme", 10 ** 6, 10 ** 9) == "admit"

    def test_row_quota_is_a_durable_refusal(self):
        ctl = self.controller()
        ctl.configure_tenant("acme", row_quota=10)
        assert ctl.admit("acme", 8, 100) == "admit"
        ctl.record_result("acme", 8, 0, 0, 100)
        with pytest.raises(AdmissionError) as info:
            ctl.admit("acme", 3, 50)
        assert info.value.retry_after_ms is None
        assert not info.value.retryable
        assert info.value.reason == "row-quota"
        # a batch that still fits goes through
        assert ctl.admit("acme", 2, 50) == "admit"

    def test_byte_quota(self):
        ctl = self.controller()
        ctl.configure_tenant("acme", byte_quota=100)
        with pytest.raises(AdmissionError) as info:
            ctl.admit("acme", 1, 101)
        assert info.value.reason == "byte-quota"

    def test_rate_limit_is_retryable_with_refill_hint(self):
        ctl = self.controller()
        ctl.configure_tenant("acme", rate_limit=10.0, burst=5.0)
        assert ctl.admit("acme", 5, 10) == "admit"
        with pytest.raises(AdmissionError) as info:
            ctl.admit("acme", 5, 10)
        assert info.value.retryable
        assert info.value.reason == "rate-limit"
        assert info.value.retry_after_ms >= 500  # 5 rows at 10 rows/s
        ctl.clock.advance(info.value.retry_after_ms / 1000.0)
        assert ctl.admit("acme", 5, 10) == "admit"

    def test_soft_depth_rejects_bulk_keeps_trickle(self):
        ctl = self.controller()
        ctl.depth_probe = lambda: ctl.soft_depth
        with pytest.raises(AdmissionError) as info:
            ctl.admit("acme", ctl.bulk_rows, 100)
        assert info.value.reason == "overload"
        assert info.value.retryable
        assert ctl.admit("acme", 1, 10) == "admit"
        assert ctl.tier() == 1

    def test_hard_depth_sheds(self):
        ctl = self.controller()
        ctl.depth_probe = lambda: ctl.hard_depth
        assert ctl.admit("acme", 5, 50) == "shed"
        assert ctl.tier() == 2
        assert ctl.tenant("acme").rows_shed == 5
        assert ctl.batches_shed == 1

    def test_defaults_apply_retroactively(self):
        ctl = self.controller()
        ctl.tenant("early")
        ctl.set_default("row_quota", 5)
        with pytest.raises(AdmissionError):
            ctl.admit("early", 6, 10)
        with pytest.raises(AdmissionError):
            ctl.admit("late", 6, 10)

    def test_session_binding_counts(self):
        ctl = self.controller()
        ctl.bind_session("acme")
        ctl.bind_session("acme")
        assert ctl.tenant("acme").sessions == 2
        ctl.release_session("acme")
        ctl.release_session("acme")
        ctl.release_session("acme")  # over-release is harmless
        assert ctl.tenant("acme").sessions == 0

    def test_view_rows_shape(self):
        ctl = self.controller()
        ctl.configure_tenant("acme", rate_limit=100.0, weight=2.0)
        rows = ctl.tenants_rows()
        assert len(rows) == 1 and len(rows[0]) == 15
        assert rows[0][0] == "acme" and rows[0][2] == 2.0
        (row,) = ctl.admission_rows()
        assert len(row) == 15
        assert row[0] is True  # enabled


# ---------------------------------------------------------------------------
# embedded database surfaces: SET/SHOW, views, counted ingest, dedup
# ---------------------------------------------------------------------------


class TestDatabaseSurfaces:
    @pytest.fixture
    def db(self):
        db = Database(clock=ManualClock())
        db.execute(STREAM_DDL)
        yield db
        db.close()

    def test_set_show_roundtrip(self, db):
        db.execute("SET admission = on")
        assert db.query("SHOW admission").scalar() in ("on", True)
        db.execute("SET tenant_rate_limit = 100")
        db.execute("SET tenant_row_quota = 1000")
        db.execute("SET dedup_window = 64")
        assert db.admission.defaults["rate_limit"] == 100
        assert db.admission.defaults["row_quota"] == 1000
        assert db.admission.dedup.window == 64
        db.execute("SET tenant_rate_limit = off")
        assert db.admission.defaults["rate_limit"] is None

    def test_bad_option_values_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SET tenant_rate_limit = 0")
        with pytest.raises(ExecutionError):
            db.execute("SET admission_soft_depth = 0")

    def test_counted_ingest_ack_is_consistent(self, db):
        counts = db.ingest_batch("s", [(1, 1.0), (2, 2.0)])
        assert counts == {"accepted": 2, "shed": 0, "dropped": 0,
                          "duplicate": 0}

    def test_idempotent_replay_acks_duplicate(self, db):
        first = db.ingest_batch("s", [(1, 1.0), (2, 2.0)],
                                sender="c1", seq=1)
        replay = db.ingest_batch("s", [(1, 1.0), (2, 2.0)],
                                 sender="c1", seq=1)
        assert first["accepted"] == 2 and replay["accepted"] == 0
        assert replay["duplicate"] == 2
        assert db.query(
            "SELECT tuples FROM repro_streams").scalar() == 2

    def test_out_of_order_seqs_within_window(self, db):
        db.ingest_batch("s", [(5, 5.0)], sender="c1", seq=5)
        # seq arrives out of order (event time still advances)
        counts = db.ingest_batch("s", [(3, 6.0)], sender="c1", seq=3)
        assert counts["accepted"] == 1
        assert db.ingest_batch("s", [(3, 7.0)], sender="c1",
                               seq=3)["duplicate"] == 1

    def test_drop_stream_forgets_dedup_state(self, db):
        db.ingest_batch("s", [(1, 1.0)], sender="c1", seq=1)
        db.execute("DROP STREAM s")
        db.execute(STREAM_DDL)
        counts = db.ingest_batch("s", [(1, 1.0)], sender="c1", seq=1)
        assert counts["accepted"] == 1

    def test_admission_views_exist(self, db):
        (row,) = db.query(
            "SELECT enabled, tier, tenants FROM repro_admission").rows
        assert row[0] is False and row[1] == 0
        db.admission.tenant("acme")
        names = [r[0] for r in db.query(
            "SELECT name FROM repro_tenants").rows]
        assert names == ["acme"]

    def test_admission_metrics_registered(self, db):
        db.ingest_batch("s", [(1, 1.0)], sender="c1", seq=1)
        db.ingest_batch("s", [(1, 1.0)], sender="c1", seq=1)
        rows = dict((name, value) for name, _kind, value, *_rest
                    in db.query(
                        "SELECT name, kind, value, count, p50, p95, p99 "
                        "FROM repro_metrics").rows
                    if name.startswith("admission."))
        assert rows.get("admission.duplicates") == 1

    def test_dedup_markers_survive_recovery(self, tmp_path):
        from repro.replication import open_database
        wal_path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=wal_path, stream_retention=600.0)
        db.execute(STREAM_DDL)
        db.ingest_batch("s", [(1, 1.0), (2, 2.0)], sender="c1", seq=7)
        db.close()
        recovered = open_database(wal_path=wal_path,
                                  stream_retention=600.0)
        try:
            assert recovered.admission.dedup.watermark("s", "c1") == 7
            replay = recovered.ingest_batch(
                "s", [(1, 3.0), (2, 4.0)], sender="c1", seq=7)
            assert replay["duplicate"] == 2
            assert recovered.query(
                "SELECT tuples FROM repro_streams").scalar() == 2
        finally:
            recovered.close()


# ---------------------------------------------------------------------------
# server integration: hello binding, wire errors, client retry, reaper
# ---------------------------------------------------------------------------


class TestServerAdmission:
    def test_hello_binds_tenant_and_views_show_it(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port, tenant="acme")
            try:
                assert conn.tenant == "acme"
                assert conn.query(
                    "SELECT tenant FROM repro_connections").rows \
                    == [("acme",)]
                assert conn.query(
                    "SELECT name, sessions FROM repro_tenants").rows \
                    == [("acme", 1)]
            finally:
                conn.close()

    def test_untenanted_session_uses_default(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            try:
                assert conn.query(
                    "SELECT tenant FROM repro_connections").rows \
                    == [("default",)]
            finally:
                conn.close()

    def test_ingest_ack_counts_on_the_wire(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            try:
                conn.execute(STREAM_DDL)
                ack = conn.ingest("s", [(1, 1.0), (2, 2.0)],
                                  sender="c1", seq=1)
                assert ack == 2  # IngestAck still compares as an int
                assert (ack.accepted, ack.shed, ack.duplicate) == (2, 0, 0)
                replay = conn.ingest("s", [(1, 1.0), (2, 2.0)],
                                     sender="c1", seq=1)
                assert replay == 0 and replay.duplicate == 2
                assert conn.query(
                    "SELECT tuples FROM repro_streams").scalar() == 2
            finally:
                conn.close()

    def test_sender_without_seq_rejected_client_side(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            try:
                conn.execute(STREAM_DDL)
                with pytest.raises(ProtocolError):
                    conn.ingest("s", [(1, 1.0)], sender="c1")
            finally:
                conn.close()

    def test_quota_refusal_travels_typed(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port, tenant="acme")
            try:
                conn.execute(STREAM_DDL)
                conn.execute("SET admission = on")
                conn.execute("SET tenant_row_quota = 2")
                conn.ingest("s", [(1, 1.0), (2, 2.0)])
                with pytest.raises(AdmissionError) as info:
                    conn.ingest("s", [(3, 3.0)])
                assert info.value.retry_after_ms is None
                assert not info.value.retryable
                assert info.value.tenant == "acme"
                assert info.value.reason == "row-quota"
            finally:
                conn.close()

    def test_replay_at_quota_is_acked_duplicate_not_refused(self):
        # a retry of an already-applied batch must come back as a
        # duplicate ack even when the tenant has since hit its quota —
        # otherwise the client can never learn the batch landed
        with ServerThread() as st:
            conn = client.connect(st.host, st.port, tenant="acme")
            try:
                conn.execute(STREAM_DDL)
                conn.execute("SET admission = on")
                conn.execute("SET tenant_row_quota = 6")
                ack = conn.ingest("s", [(i, float(i)) for i in range(1, 6)],
                                  sender="agent", seq=1)
                assert ack.accepted == 5
                replay = conn.ingest("s",
                                     [(i, float(i)) for i in range(1, 6)],
                                     sender="agent", seq=1, retry=False)
                assert replay.accepted == 0
                assert replay.duplicate == 5
                # the replay consumed no quota: a fresh 1-row batch
                # still fits under the 6-row cap
                ack2 = conn.ingest("s", [(6, 6.0)], sender="agent", seq=2)
                assert ack2.accepted == 1
                rows = conn.query(
                    "SELECT rows_ingested, duplicates "
                    "FROM repro_tenants").rows
                assert rows == [(6, 5)]  # duplicates counts rows
            finally:
                conn.close()

    def test_duplicate_batch_does_not_charge_byte_quota(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port, tenant="acme")
            try:
                conn.execute(STREAM_DDL)
                conn.execute("SET admission = on")
                conn.ingest("s", [(1, 1.0)], sender="agent", seq=1)
                before = conn.query(
                    "SELECT bytes_ingested FROM repro_tenants").rows[0][0]
                conn.ingest("s", [(1, 1.0)], sender="agent", seq=1,
                            retry=False)
                after = conn.query(
                    "SELECT bytes_ingested FROM repro_tenants").rows[0][0]
                assert after == before
            finally:
                conn.close()

    def test_client_retries_rate_limit_on_shared_manual_clock(self):
        clk = ManualClock()
        with ServerThread(clock=clk) as st:
            conn = client.connect(st.host, st.port, tenant="acme",
                                  clock=clk)
            try:
                conn.execute(STREAM_DDL)
                conn.execute("SET admission = on")
                conn.execute("SET tenant_rate_limit = 100")
                conn.execute("SET tenant_burst = 5")
                assert conn.ingest("s", [(i, float(i))
                                         for i in range(5)]) == 5
                before = clk.monotonic()
                # bucket is empty: the server refuses with a retry hint,
                # the client sleeps it off (advancing the shared clock,
                # which *is* the refill) and retries to success
                ack = conn.ingest("s", [(i, 10.0 + i) for i in range(5)])
                assert ack == 5
                assert clk.monotonic() >= before + 0.05
                tenant = st.db.admission.tenant("acme")
                assert tenant.batches_rejected >= 1
                assert tenant.rows_ingested == 10
            finally:
                conn.close()

    def test_retry_false_surfaces_the_error(self):
        clk = ManualClock()
        with ServerThread(clock=clk) as st:
            conn = client.connect(st.host, st.port, clock=clk)
            try:
                conn.execute(STREAM_DDL)
                conn.execute("SET admission = on")
                conn.execute("SET tenant_rate_limit = 10")
                conn.execute("SET tenant_burst = 1")
                conn.ingest("s", [(1, 1.0)], retry=False)
                with pytest.raises(AdmissionError):
                    conn.ingest("s", [(2, 2.0)], retry=False)
            finally:
                conn.close()

    def test_shed_tier_acks_but_drops_to_dead_letters(self):
        with ServerThread(supervised=True) as st:
            conn = client.connect(st.host, st.port, tenant="noisy")
            try:
                conn.execute(STREAM_DDL)
                conn.execute("SET admission = on")
                st.db.admission.hard_depth = 0  # force tier 2
                ack = conn.ingest("s", [(1, 1.0), (2, 2.0)])
                assert ack == 0 and ack.shed == 2
                assert conn.query(
                    "SELECT tuples FROM repro_streams "
                    "WHERE name = 's'").scalar() == 0
                letters = st.db.supervisor.dead_letter_rows()
                assert any("noisy" in reason
                           for _seq, _src, _kind, reason, *_ in letters)
            finally:
                conn.close()

    def test_fair_scheduling_splits_engine_turns_by_weight(self):
        with ServerThread() as st:
            heavy = client.connect(st.host, st.port, tenant="heavy")
            light = client.connect(st.host, st.port, tenant="light")
            try:
                heavy.execute(STREAM_DDL)
                st.db.admission.configure_tenant("heavy", weight=4.0)
                st.db.admission.configure_tenant("light", weight=1.0)
                for i in range(20):
                    heavy.ingest("s", [(i, float(i))])
                    light.query("SELECT 1")
                served = st.server.executor.lane_served()
                assert served["heavy"] > 0 and served["light"] > 0
            finally:
                heavy.close()
                light.close()

    def test_idle_reaper_on_manual_clock(self):
        clk = ManualClock()
        with ServerThread(clock=clk, idle_timeout=30.0,
                          reap_interval=0.05) as st:
            conn = client.connect(st.host, st.port)
            try:
                assert conn.query("SELECT 1").scalar() == 1
                clk.advance(31.0)  # no sleeping matched to the timeout
                import time as _time
                deadline = _time.monotonic() + 10.0
                while _time.monotonic() < deadline:
                    if not st.server.connection_rows():
                        break
                    _time.sleep(0.02)
                assert not st.server.connection_rows()
            finally:
                conn.close()


# ---------------------------------------------------------------------------
# the \tenants CLI command
# ---------------------------------------------------------------------------


class TestTenantsCommand:
    def test_tenants_command_embedded(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(out=out)
        shell.handle_line("SET admission = on")
        shell.db.admission.tenant("acme")
        shell.handle_line("\\tenants")
        text = out.getvalue()
        assert "-- admission" in text
        assert "acme" in text
        shell.db.close()
