"""SQL-semantics conformance: a battery of small behavioural cases
(NULL propagation, coercion, grouping, ordering, aliasing edge cases)."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b varchar(10), "
                     "c double precision)")
    database.insert_table("t", [
        (1, "one", 1.5),
        (2, "two", None),
        (None, "none", 3.5),
        (2, None, 0.0),
    ])
    return database


class TestNullSemantics:
    def test_null_arith(self, db):
        assert db.query("SELECT a + c FROM t WHERE b = 'two'").scalar() is None

    def test_where_null_row_excluded_from_comparison(self, db):
        assert db.query("SELECT count(*) FROM t WHERE a = a").scalar() == 3

    def test_null_not_equal_null(self, db):
        assert db.query(
            "SELECT count(*) FROM t WHERE a <> a").scalar() == 0

    def test_coalesce_chain(self, db):
        rows = db.query("SELECT coalesce(b, 'missing') FROM t "
                        "WHERE a = 2 ORDER BY 1").rows
        assert rows == [("missing",), ("two",)]

    def test_case_with_null(self, db):
        result = db.query(
            "SELECT CASE WHEN a IS NULL THEN 'n' ELSE 'v' END FROM t "
            "WHERE b = 'none'")
        assert result.scalar() == "n"

    def test_count_vs_count_star(self, db):
        row = db.query("SELECT count(*), count(a), count(b), count(c) "
                       "FROM t").rows[0]
        assert row == (4, 3, 3, 3)

    def test_sum_avg_ignore_nulls(self, db):
        row = db.query("SELECT sum(c), avg(c) FROM t").rows[0]
        assert row == (5.0, pytest.approx(5.0 / 3))

    def test_group_by_null_forms_its_own_group(self, db):
        rows = db.query("SELECT a, count(*) FROM t GROUP BY a "
                        "ORDER BY a").rows
        assert (None, 1) in rows
        assert (2, 2) in rows

    def test_distinct_treats_nulls_equal(self, db):
        db.insert_table("t", [(None, "other", 9.0)])
        rows = db.query("SELECT DISTINCT a FROM t ORDER BY a").rows
        assert rows.count((None,)) == 1


class TestCoercion:
    def test_string_to_number_in_comparison(self, db):
        assert db.query("SELECT count(*) FROM t WHERE a = 2").scalar() == 2

    def test_int_float_equality(self, db):
        assert db.query("SELECT 1 = 1.0").scalar() is True

    def test_boolean_output(self, db):
        assert db.query("SELECT 2 > 1").scalar() is True

    def test_concat_coerces(self, db):
        assert db.query("SELECT 'n=' || 5").scalar() == "n=5"

    def test_cast_chain(self, db):
        assert db.query("SELECT '42'::text::integer + 1").scalar() == 43


class TestAliasingAndScoping:
    def test_alias_hides_table_name(self, db):
        from repro.errors import BindError
        with pytest.raises(BindError):
            db.query("SELECT t.a FROM t AS renamed")

    def test_self_join_needs_aliases(self, db):
        result = db.query(
            "SELECT count(*) FROM t x, t y WHERE x.a = y.a")
        assert result.scalar() == 5  # 1x1 + 2x2 matches

    def test_reserved_like_identifiers(self, db):
        # 'visible' is only special inside a window clause
        db.execute("CREATE TABLE visible (value integer)")
        db.execute("INSERT INTO visible VALUES (1)")
        assert db.query("SELECT value FROM visible").scalar() == 1

    def test_quoted_identifier(self, db):
        db.execute('CREATE TABLE "Mixed Case" (x integer)')
        db.execute('INSERT INTO "Mixed Case" VALUES (9)')
        assert db.query('SELECT x FROM "Mixed Case"').scalar() == 9

    def test_select_item_alias_usable_in_order(self, db):
        rows = db.query("SELECT a * -1 AS neg FROM t WHERE a IS NOT NULL "
                        "ORDER BY neg").rows
        assert rows[0] == (-2,)


class TestGroupingEdges:
    def test_group_by_expression_reused_in_select(self, db):
        rows = db.query(
            "SELECT a % 2, count(*) FROM t WHERE a IS NOT NULL "
            "GROUP BY a % 2 ORDER BY 1").rows
        assert rows == [(0, 2), (1, 1)]

    def test_having_references_unselected_aggregate(self, db):
        rows = db.query(
            "SELECT a FROM t WHERE a IS NOT NULL GROUP BY a "
            "HAVING count(*) > 1").rows
        assert rows == [(2,)]

    def test_order_by_unselected_aggregate(self, db):
        rows = db.query(
            "SELECT a FROM t WHERE a IS NOT NULL GROUP BY a "
            "ORDER BY count(*) DESC").rows
        assert rows[0] == (2,)

    def test_aggregate_of_expression(self, db):
        assert db.query(
            "SELECT sum(a * 10) FROM t").scalar() == 50

    def test_nested_aggregate_rejected(self, db):
        from repro.errors import TruvisoError
        with pytest.raises(Exception):
            db.query("SELECT sum(count(*)) FROM t")

    def test_group_by_two_keys(self, db):
        rows = db.query(
            "SELECT a, b, count(*) FROM t GROUP BY a, b").rows
        assert len(rows) == 4


class TestLimitsAndOrdering:
    def test_order_stable_across_equal_keys(self, db):
        db.execute("CREATE TABLE seq (pos integer, grp integer)")
        db.insert_table("seq", [(i, i % 2) for i in range(6)])
        rows = db.query("SELECT pos FROM seq ORDER BY grp").rows
        evens = [p for (p,) in rows[:3]]
        assert evens == sorted(evens)  # stable within the equal group

    def test_offset_without_limit(self, db):
        rows = db.query("SELECT a FROM t WHERE a IS NOT NULL "
                        "ORDER BY a OFFSET 2").rows
        assert rows == [(2,)]

    def test_limit_larger_than_result(self, db):
        assert len(db.query("SELECT * FROM t LIMIT 100")) == 4

    def test_between_inclusive(self, db):
        assert db.query("SELECT count(*) FROM t "
                        "WHERE a BETWEEN 1 AND 2").scalar() == 3

    def test_like_on_null_excluded(self, db):
        assert db.query("SELECT count(*) FROM t "
                        "WHERE b LIKE '%o%'").scalar() == 3
