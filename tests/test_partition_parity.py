"""Parity: partitioned execution must be bit-identical to one engine.

The hard requirement of the partition subsystem is that splitting a CQ
across N workers is *invisible* in the output: for partition counts
1..4, a shuffled keyed input produces exactly the same window sequence
— boundaries, kinds (final / retract / correct), and rows — as the
plain single-process engine fed the identical batches.

Two granularities of "identical":

* **exact sequence** — `(kind, open, close, rows)` tuples compared in
  order.  Used whenever SQL pins the row order (``ORDER BY`` in the
  CQ) or only one worker contributes (partition count 1, single
  group).
* **canonical sequence** — rows sorted within each window.  Without
  ``ORDER BY``, intra-window row order is an implementation detail
  (the single engine yields groups in global first-seen order, the
  merge stage in worker order), so parity is per-window multiset
  equality plus identical boundaries and kinds.

Aggregate values stay integral so float addition order cannot manufacture
spurious diffs; every comparison below is therefore exact equality.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro.partition import PartitionedEngine

KEYS = ["alpha", "beta", "gamma", "delta"]

ARRIVAL_DDL = ("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
               "PARTITION BY k")
EVENT_DDL = ("CREATE STREAM s (k TEXT, v DOUBLE, ts TIMESTAMP CQTIME USER) "
             "WATERMARK '4 seconds' PARTITION BY k")

GROUPED_CQ = ("SELECT k, count(*) AS n, sum(v) AS total, min(v) AS lo, "
              "max(v) AS hi FROM s <visible 10 advance 5> "
              "GROUP BY k ORDER BY k")
EVENT_CQ = ("SELECT k, count(*) AS n, sum(v) AS total "
            "FROM s <visible 10 advance 5> GROUP BY k "
            "EMIT ON WATERMARK ORDER BY k")
RETRACT_CQ = ("SELECT k, count(*) AS n, sum(v) AS total "
              "FROM s <visible 10 advance 5> GROUP BY k "
              "EMIT ON WATERMARK ALLOW LATENESS '6 seconds' RETRACT "
              "ORDER BY k")


def exact(sub):
    return [(w.kind, w.open_time, w.close_time, tuple(w.rows))
            for w in sub.poll()]


def canonical(sub):
    return [(w.kind, w.open_time, w.close_time, tuple(sorted(w.rows)))
            for w in sub.poll()]


def run_single(ddl, cq_sql, batches, collect=exact, vectorize=True):
    db = Database()
    db.runtime.vectorize = vectorize
    db.execute(ddl.replace(" PARTITION BY k", ""))
    sub = db.execute(cq_sql)
    for rows in batches:
        db.ingest_batch("s", rows)
    db.flush_streams()
    out = collect(sub)
    sub.close()
    return out


def run_partitioned(n, ddl, cq_sql, batches, collect=exact, vectorize=True):
    eng = PartitionedEngine(partitions=n)
    try:
        eng.db.runtime.vectorize = vectorize
        eng.execute(ddl)
        sub = eng.execute(cq_sql)
        for rows in batches:
            eng.ingest("s", rows)
        eng.flush()
        return collect(sub)
    finally:
        eng.close()


def split_batches(rows, size):
    return [rows[i:i + size] for i in range(0, len(rows), size)]


arrival_rows = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(KEYS),
              st.integers(-5, 5)),
    min_size=1, max_size=36,
).map(lambda rs: [(float(t), k, float(v)) for t, k, v in sorted(
    rs, key=lambda r: r[0])])

# event-time rows arrive in the drawn (shuffled) order; the ts column
# is last per the DDL and rows more than the watermark bound behind the
# maximum seen so far are late
event_rows = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(KEYS),
              st.integers(-5, 5)),
    min_size=1, max_size=30,
).map(lambda rs: [(k, float(v), float(t)) for t, k, v in rs])


class TestArrivalParity:
    @pytest.mark.parametrize("vectorize", [True, False],
                             ids=["sliced", "iterator"])
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows=arrival_rows, batch=st.integers(1, 7))
    def test_shuffled_keys_all_partition_counts(self, rows, batch,
                                                vectorize):
        batches = split_batches(rows, batch)
        want = run_single(ARRIVAL_DDL, GROUPED_CQ, batches,
                          vectorize=vectorize)
        for n in (1, 2, 3, 4):
            got = run_partitioned(n, ARRIVAL_DDL, GROUPED_CQ, batches,
                                  vectorize=vectorize)
            assert got == want, f"partitions={n}"

    def test_single_partition_is_bit_identical_without_order_by(self):
        # with one worker the merge stage sees one partial, so even the
        # unspecified group order matches the single engine exactly
        cq = ("SELECT k, count(*) AS n FROM s <visible 10 advance 10> "
              "GROUP BY k")
        rows = [(float(t), KEYS[t % 3], 1.0) for t in range(24)]
        batches = split_batches(rows, 5)
        assert run_partitioned(1, ARRIVAL_DDL, cq, batches) == \
            run_single(ARRIVAL_DDL, cq, batches)

    def test_without_order_by_windows_match_as_multisets(self):
        # interleaving forces different first-seen orders per worker;
        # boundaries and row multisets must still agree
        cq = ("SELECT k, count(*) AS n FROM s <visible 10 advance 5> "
              "GROUP BY k")
        rows = [(float(t), KEYS[(t * 7) % 4], 1.0) for t in range(40)]
        batches = split_batches(rows, 6)
        want = run_single(ARRIVAL_DDL, cq, batches, collect=canonical)
        for n in (2, 3, 4):
            got = run_partitioned(n, ARRIVAL_DDL, cq, batches,
                                  collect=canonical)
            assert got == want, f"partitions={n}"

    def test_null_keys_spill_lane_parity(self):
        # NULL partition keys ride the spill lane on worker 0; a global
        # aggregate must count them exactly like the single engine
        cq = "SELECT count(*) AS n FROM s <visible 10 advance 10>"
        rows = [(float(t), None if t % 3 == 0 else KEYS[t % 4], 1.0)
                for t in range(30)]
        batches = split_batches(rows, 4)
        want = run_single(ARRIVAL_DDL, cq, batches)
        for n in (1, 2, 3):
            assert run_partitioned(n, ARRIVAL_DDL, cq, batches) == want


class TestEventTimeParity:
    @pytest.mark.parametrize("vectorize", [True, False],
                             ids=["sliced", "iterator"])
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows=event_rows, batch=st.integers(1, 6))
    def test_drop_policy_exact_sequence(self, rows, batch, vectorize):
        # default lateness policy: rows below the watermark vanish; the
        # router syncs the pre-row watermark to the owning worker so
        # each worker makes the identical late/on-time call
        batches = split_batches(rows, batch)
        want = run_single(EVENT_DDL, EVENT_CQ, batches,
                          vectorize=vectorize)
        for n in (1, 2, 3, 4):
            got = run_partitioned(n, EVENT_DDL, EVENT_CQ, batches,
                                  vectorize=vectorize)
            assert got == want, f"partitions={n}"

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows=event_rows)
    def test_retract_correct_pairs_exact_at_batch_one(self, rows):
        # row-at-a-time ingest pins the retract/correct interleaving:
        # every late row's pair lands at the same position in both runs
        batches = split_batches(rows, 1)
        want = run_single(EVENT_DDL, RETRACT_CQ, batches)
        kinds = {kind for kind, _o, _c, _r in want}
        for n in (1, 2, 3, 4):
            got = run_partitioned(n, EVENT_DDL, RETRACT_CQ, batches)
            assert got == want, f"partitions={n}"
        # the property is vacuous if no example ever retracts; the
        # deterministic test below guarantees pair coverage
        assert kinds <= {"window", "retract", "correct"}

    def test_retract_pairs_actually_exercised(self):
        # deterministic straggler: a row 6 seconds behind the watermark
        # reopens two overlapping windows in both engines
        batches = [
            [("alpha", 1.0, 1.0), ("beta", 1.0, 3.0)],
            [("alpha", 1.0, 14.0)],            # watermark -> 10
            [("beta", 2.0, 6.0)],              # late: reopens [0,10)
            [("alpha", 1.0, 26.0)],
        ]
        batches = [row for batch in batches for row in
                   split_batches(batch, 1)]
        want = run_single(EVENT_DDL, RETRACT_CQ, batches)
        assert {"retract", "correct"} <= {k for k, _o, _c, _r in want}
        for n in (1, 2, 3, 4):
            got = run_partitioned(n, EVENT_DDL, RETRACT_CQ, batches)
            assert got == want, f"partitions={n}"

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows=event_rows, batch=st.integers(2, 6))
    def test_retract_converged_state_at_any_batch_size(self, rows, batch):
        # multi-row batches may interleave corrections differently
        # (frame granularity), but the *converged* account of every
        # window — last final or correct per boundary, minus retracted
        # ones — must be identical
        batches = split_batches(rows, batch)
        want = converged(run_single(EVENT_DDL, RETRACT_CQ, batches))
        for n in (1, 2, 3, 4):
            got = converged(
                run_partitioned(n, EVENT_DDL, RETRACT_CQ, batches))
            assert got == want, f"partitions={n}"


def converged(sequence):
    """Final state per window boundary after replaying the sequence."""
    state = {}
    for kind, open_time, close_time, rows in sequence:
        if kind == "retract":
            continue                    # its paired correct follows
        state[(open_time, close_time)] = rows
    return state
