"""Tests for client failover and standby auto-promotion.

The headline scenario from the HA work: kill the primary mid-window,
let the standby promote itself on missed heartbeats, and check a
subscribed client fails over and receives exactly the windows an
uninterrupted run would have produced — no gap, no duplicate.
"""

import socket
import threading
import time

import pytest

import repro.client as client
from repro.errors import ConnectionTimeoutError, ProtocolError, RemoteError
from repro.server import ServerThread

STREAM_DDL = "CREATE STREAM s (v integer, ts timestamp CQTIME USER)"
TOTALS_DDL = ("CREATE STREAM totals AS SELECT count(*) c, cq_close(*) "
              "FROM s <VISIBLE '10 seconds' ADVANCE '10 seconds'>")


def wait_until(probe, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    error = None
    while time.monotonic() < deadline:
        try:
            value = probe()
        except (RemoteError, ConnectionError, OSError) as exc:
            error = exc
            value = None
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"condition not reached (last error: {error})")


# ---------------------------------------------------------------------------
# connection hardening (satellite: handshake leak + connect timeout)
# ---------------------------------------------------------------------------


class TestConnectHardening:
    def test_connect_timeout_raises_typed_error(self, monkeypatch):
        def hang(address, timeout=None):
            raise socket.timeout("timed out")

        monkeypatch.setattr(client.socket, "create_connection", hang)
        with pytest.raises(ConnectionTimeoutError) as info:
            client.connect("192.0.2.1", 9999, connect_timeout=0.2)
        assert info.value.host == "192.0.2.1"
        assert info.value.port == 9999
        assert "0.2" in str(info.value)

    def test_handshake_failure_closes_socket(self):
        """A server that accepts TCP but never answers hello must not
        leak the socket when the handshake times out."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []

        def accept():
            try:
                sock, _ = listener.accept()
                accepted.append(sock)
            except OSError:
                pass

        thread = threading.Thread(target=accept, daemon=True)
        thread.start()
        port = listener.getsockname()[1]
        try:
            with pytest.raises((ConnectionTimeoutError, ProtocolError,
                                ConnectionError)):
                client.connect("127.0.0.1", port, timeout=0.3,
                               connect_timeout=0.3)
            thread.join(timeout=2.0)
            assert accepted, "server never saw the connection"
            # the failed handshake must close the client socket: drain
            # the hello bytes, then expect EOF rather than a blocked recv
            accepted[0].settimeout(3.0)
            while accepted[0].recv(65536):
                pass
        finally:
            listener.close()
            for sock in accepted:
                sock.close()

    def test_bad_failover_target_spec_rejected(self):
        with pytest.raises(ProtocolError):
            client._parse_targets("not-a-hostport")
        assert client._parse_targets("h1:1, h2:2") == [("h1", 1), ("h2", 2)]
        assert client._parse_targets([("h", 5)]) == [("h", 5)]


class TestClientOptions:
    def test_set_and_show_failover_options(self):
        with ServerThread() as st:
            with client.connect(st.host, st.port) as c:
                c.execute("SET failover_targets = 'h1:7001,h2:7002'")
                shown = c.query("SHOW failover_targets").scalar()
                assert "h1:7001" in shown
                assert c.failover_targets == [("h1", 7001), ("h2", 7002)]
                c.execute("SET reconnect_max_backoff = 0.25")
                assert c.reconnect_max_backoff == 0.25
                assert float(
                    c.query("SHOW reconnect_max_backoff").scalar()) == 0.25


# ---------------------------------------------------------------------------
# the headline failover scenario
# ---------------------------------------------------------------------------


class TestFailover:
    def run_pipeline(self, tmp_path, crash):
        """Run the reference workload; when ``crash`` is true, kill the
        primary between window 2 and window 3 and continue against the
        auto-promoted standby.  Returns the windows the watcher saw."""
        prim = ServerThread(data_dir=str(tmp_path / f"prim-{crash}"),
                            stream_retention=600.0)
        prim.start()
        stby = None
        try:
            pconn = client.connect(prim.host, prim.port)
            pconn.execute(STREAM_DDL)
            pconn.execute(TOTALS_DDL)
            # the archive is the CQ's Active Table: promotion rebuilds
            # the in-flight window from it (the paper's strategy), which
            # is what makes the post-crash windows exact
            pconn.execute("CREATE TABLE archive (c bigint, ts timestamp)")
            pconn.execute("CREATE CHANNEL arch FROM totals "
                          "INTO archive APPEND")

            stby = ServerThread(
                data_dir=str(tmp_path / f"stby-{crash}"),
                standby_of=f"{prim.host}:{prim.port}",
                heartbeat_interval=0.1, miss_limit=3, auto_promote=True,
                stream_retention=600.0)
            stby.start()

            watcher = client.connect(
                prim.host, prim.port,
                failover_targets=[(stby.host, stby.port)],
                reconnect_max_backoff=0.3)
            sub = watcher.subscribe("totals")

            pconn.ingest("s", [(i, float(i)) for i in range(1, 10)])
            pconn.ingest("s", [(i, 10.0 + i) for i in range(1, 6)])
            pconn.ingest("s", [(0, 21.0)])   # closes (10,20]
            got = []
            wait_until(lambda: got.extend(sub.poll(timeout=0.2))
                       or len(got) >= 2)

            # standby fully caught up before any crash
            sconn = client.connect(stby.host, stby.port)
            wait_until(lambda: sconn.query(
                "SELECT lag FROM repro_replication_status")
                .scalar() == 0)

            if crash:
                prim.kill()
                wait_until(lambda: sconn.query(
                    "SELECT role FROM repro_replication_status")
                    .scalar() == "primary", timeout=20.0)
                driver = client.connect(stby.host, stby.port)
            else:
                driver = pconn
            driver.ingest("s", [(i, 20.0 + i) for i in range(1, 8)])
            driver.ingest("s", [(0, 31.0)])  # closes (20,30]
            wait_until(lambda: got.extend(sub.poll(timeout=0.2))
                       or len(got) >= 3, timeout=20.0)
            failovers = watcher.failovers
            watcher.close()
            sconn.close()
            if crash:
                driver.close()
            else:
                pconn.close()
            return [(w.open_time, w.close_time, sorted(w.rows))
                    for w in got], failovers
        finally:
            if stby is not None:
                stby.stop()
            prim.stop()

    def test_windows_identical_to_uninterrupted_run(self, tmp_path):
        reference, _ = self.run_pipeline(tmp_path, crash=False)
        survived, failovers = self.run_pipeline(tmp_path, crash=True)
        assert failovers >= 1, "client never failed over"
        assert survived == reference
        closes = [close for _open, close, _rows in survived]
        assert closes == sorted(set(closes)), "duplicate or reordered"

    def test_nonresumable_subscription_closed_on_failover(self, tmp_path):
        prim = ServerThread(data_dir=str(tmp_path / "p2"),
                            stream_retention=600.0)
        prim.start()
        stby = None
        try:
            pconn = client.connect(prim.host, prim.port)
            pconn.execute(STREAM_DDL)
            stby = ServerThread(
                data_dir=str(tmp_path / "s2"),
                standby_of=f"{prim.host}:{prim.port}",
                heartbeat_interval=0.1, miss_limit=3, auto_promote=True,
                stream_retention=600.0)
            stby.start()
            watcher = client.connect(
                prim.host, prim.port,
                failover_targets=[(stby.host, stby.port)],
                reconnect_max_backoff=0.3)
            # an ad-hoc CQ subscription has no durable name to re-attach
            adhoc = watcher.execute(
                "SELECT count(*) c, cq_close(*) FROM s "
                "<VISIBLE '10 seconds' ADVANCE '10 seconds'>")
            assert adhoc.kind == "query"
            durable = watcher.subscribe("s")

            sconn = client.connect(stby.host, stby.port)
            wait_until(lambda: sconn.query(
                "SELECT lag FROM repro_replication_status").scalar() == 0)
            prim.kill()
            wait_until(lambda: sconn.query(
                "SELECT role FROM repro_replication_status")
                .scalar() == "primary", timeout=20.0)

            # drive traffic so the watcher notices the dead socket
            npconn = client.connect(stby.host, stby.port)
            npconn.ingest("s", [(1, 1.0)])
            wait_until(lambda: durable.tuples(timeout=0.2)
                       or watcher.failovers >= 1, timeout=20.0)
            assert watcher.failovers >= 1
            assert adhoc.closed
            assert adhoc.close_reason == "failover"
            assert not durable.closed
            watcher.close()
            sconn.close()
            npconn.close()
        finally:
            if stby is not None:
                stby.stop()
            prim.stop()

    def test_promotion_rejected_on_plain_primary(self, tmp_path):
        with ServerThread(data_dir=str(tmp_path / "p3")) as st:
            with client.connect(st.host, st.port) as c:
                with pytest.raises(RemoteError):
                    c.promote("nope")


# ---------------------------------------------------------------------------
# retraction-pair sequencing across failover replay (event-time satellite)
# ---------------------------------------------------------------------------


class _StubConnection:
    """Just enough of a Connection for RemoteSubscription unit tests."""

    def _pump_until(self, ready, timeout):
        pass


def _sub():
    return client.RemoteSubscription(_StubConnection(), 1, "counts",
                                     ["c"], "derived")


def _frame(seq, kind, open_time, close, rows=((1,),)):
    frame = {"push": "window", "sub": 1, "seq": seq,
             "open": open_time, "close": close,
             "rows": [list(r) for r in rows]}
    if kind != "window":
        frame["kind"] = kind
    return frame


class TestRetractionPairSequencing:
    def test_ordered_pair_is_delivered(self):
        sub = _sub()
        sub._on_push(_frame(1, "window", 0.0, 10.0))
        sub._on_push(_frame(2, "retract", 0.0, 10.0))
        sub._on_push(_frame(3, "correct", 0.0, 10.0, rows=((2,),)))
        kinds = [w.kind for w in sub.poll()]
        assert kinds == ["window", "retract", "correct"]
        # corrections never advance the resume cursor
        assert sub.last_close == 10.0

    def test_unpaired_retraction_is_an_error(self):
        sub = _sub()
        sub._on_push(_frame(1, "retract", 0.0, 10.0))
        with pytest.raises(ProtocolError):
            sub._on_push(_frame(2, "window", 10.0, 20.0))

    def test_double_retraction_is_an_error(self):
        sub = _sub()
        sub._on_push(_frame(1, "retract", 0.0, 10.0))
        with pytest.raises(ProtocolError):
            sub._on_push(_frame(2, "retract", 10.0, 20.0))

    def test_mismatched_correction_is_an_error(self):
        sub = _sub()
        sub._on_push(_frame(1, "retract", 0.0, 10.0))
        with pytest.raises(ProtocolError):
            sub._on_push(_frame(2, "correct", 10.0, 20.0))

    def test_replayed_frames_are_dropped_not_reordered(self):
        """Failover replay overlap: the server re-delivers frames the
        client already has.  They carry stale seqs and must be dropped
        whole — replaying half a retract/correct pair must not trip
        the pairing assertion or re-apply a correction."""
        sub = _sub()
        sub._on_push(_frame(1, "window", 0.0, 10.0))
        sub._on_push(_frame(2, "retract", 0.0, 10.0))
        sub._on_push(_frame(3, "correct", 0.0, 10.0, rows=((2,),)))
        sub.poll()
        # overlap: same frames again — including a lone retract
        sub._on_push(_frame(2, "retract", 0.0, 10.0))
        sub._on_push(_frame(3, "correct", 0.0, 10.0, rows=((2,),)))
        assert sub.poll() == []
        assert sub._pending_retract is None
        # and delivery continues cleanly after the overlap
        sub._on_push(_frame(4, "window", 10.0, 20.0))
        assert [w.kind for w in sub.poll()] == ["window"]

    def test_shed_gap_invalidates_pending_pair(self):
        """A seq gap proves frames were shed (slow-client policy): a
        half-open retraction can no longer pair and must be forgotten
        rather than raising on the next frame."""
        sub = _sub()
        sub._on_push(_frame(1, "retract", 0.0, 10.0))
        assert sub._pending_retract == (0.0, 10.0)
        sub._on_push(_frame(4, "window", 20.0, 30.0))  # 2, 3 shed
        assert sub._pending_retract is None
        assert [w.kind for w in sub.poll()] == ["retract", "window"]

    def test_failover_resets_seq_space(self):
        """After failover the new primary numbers pushes from 1 again;
        the reset must let those frames through."""
        sub = _sub()
        sub._on_push(_frame(7, "window", 0.0, 10.0))
        assert sub.last_seq == 7
        # what Connection._resume_subscriptions does on reconnect
        sub.last_seq = None
        sub._pending_retract = None
        sub._on_push(_frame(1, "window", 10.0, 20.0))
        assert sub.last_seq == 1
        assert len(sub.poll()) == 2
