"""End-to-end snapshot (table-only) SQL through the Database facade."""

import pytest

from repro import Database
from repro.errors import BindError, PlanningError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id integer, name varchar(50), dept varchar(20), "
        "salary double precision)")
    database.insert_table("emp", [
        (1, "ann", "eng", 100.0),
        (2, "bob", "eng", 90.0),
        (3, "cy", "sales", 80.0),
        (4, "dee", "sales", 85.0),
        (5, "eve", "hr", None),
    ])
    return database


class TestProjectionFilter:
    def test_select_star(self, db):
        result = db.query("SELECT * FROM emp")
        assert len(result) == 5
        assert result.columns == ["id", "name", "dept", "salary"]

    def test_projection(self, db):
        result = db.query("SELECT name FROM emp WHERE id = 3")
        assert result.rows == [("cy",)]

    def test_expression_projection(self, db):
        result = db.query("SELECT salary * 2 AS double_pay FROM emp WHERE id = 1")
        assert result.columns == ["double_pay"]
        assert result.rows == [(200.0,)]

    def test_where_and(self, db):
        result = db.query(
            "SELECT id FROM emp WHERE dept = 'eng' AND salary > 95")
        assert result.rows == [(1,)]

    def test_where_or(self, db):
        result = db.query(
            "SELECT id FROM emp WHERE dept = 'hr' OR salary < 81 ORDER BY id")
        assert result.rows == [(3,), (5,)]

    def test_null_filtered_by_comparison(self, db):
        # eve's NULL salary must not satisfy either branch
        assert len(db.query("SELECT * FROM emp WHERE salary > 0")) == 4
        assert len(db.query("SELECT * FROM emp WHERE salary <= 0")) == 0

    def test_is_null(self, db):
        result = db.query("SELECT name FROM emp WHERE salary IS NULL")
        assert result.rows == [("eve",)]

    def test_like(self, db):
        result = db.query("SELECT name FROM emp WHERE name LIKE '%e%'")
        assert sorted(r[0] for r in result) == ["dee", "eve"]

    def test_in(self, db):
        result = db.query("SELECT id FROM emp WHERE dept IN ('hr', 'sales') ORDER BY id")
        assert result.rows == [(3,), (4,), (5,)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 40 + 2").scalar() == 42

    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            db.query("SELECT * FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            db.query("SELECT bogus FROM emp")


class TestAggregation:
    def test_count_star(self, db):
        assert db.query("SELECT count(*) FROM emp").scalar() == 5

    def test_count_column_skips_null(self, db):
        assert db.query("SELECT count(salary) FROM emp").scalar() == 4

    def test_group_by(self, db):
        result = db.query(
            "SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY dept")
        assert result.rows == [("eng", 2), ("hr", 1), ("sales", 2)]

    def test_group_by_multiple_aggs(self, db):
        result = db.query(
            "SELECT dept, min(salary), max(salary), avg(salary) "
            "FROM emp WHERE dept = 'eng' GROUP BY dept")
        assert result.rows == [("eng", 90.0, 100.0, 95.0)]

    def test_having(self, db):
        result = db.query(
            "SELECT dept, count(*) c FROM emp GROUP BY dept "
            "HAVING count(*) > 1 ORDER BY dept")
        assert result.rows == [("eng", 2), ("sales", 2)]

    def test_scalar_aggregate_over_empty(self, db):
        result = db.query("SELECT count(*), sum(salary) FROM emp WHERE id > 99")
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_no_rows(self, db):
        result = db.query(
            "SELECT dept, count(*) FROM emp WHERE id > 99 GROUP BY dept")
        assert result.rows == []

    def test_expression_on_aggregate(self, db):
        result = db.query("SELECT sum(salary) / count(salary) FROM emp")
        assert result.scalar() == pytest.approx((100 + 90 + 80 + 85) / 4)

    def test_group_by_expression(self, db):
        result = db.query(
            "SELECT length(dept), count(*) FROM emp GROUP BY length(dept) "
            "ORDER BY length(dept)")
        assert result.rows == [(2, 1), (3, 2), (5, 2)]

    def test_bare_column_without_group_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT name, count(*) FROM emp")

    def test_count_distinct(self, db):
        assert db.query("SELECT count(DISTINCT dept) FROM emp").scalar() == 3

    def test_having_without_group_on_scalar(self, db):
        result = db.query("SELECT count(*) FROM emp HAVING count(*) > 100")
        assert result.rows == []


class TestOrderLimit:
    def test_order_by_non_projected_column(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE salary IS NOT NULL "
            "ORDER BY salary DESC LIMIT 2")
        assert result.rows == [("ann",), ("bob",)]

    def test_nulls_last_ascending(self, db):
        result = db.query("SELECT name FROM emp ORDER BY salary")
        assert result.rows[-1] == ("eve",)

    def test_nulls_first_descending(self, db):
        # PostgreSQL semantics: DESC implies NULLS FIRST
        result = db.query("SELECT name FROM emp ORDER BY salary DESC")
        assert result.rows[0] == ("eve",)

    def test_order_by_alias(self, db):
        result = db.query(
            "SELECT salary * -1 AS neg FROM emp WHERE salary IS NOT NULL "
            "ORDER BY neg LIMIT 1")
        assert result.rows == [(-100.0,)]

    def test_order_by_position(self, db):
        result = db.query("SELECT id, name FROM emp ORDER BY 1 DESC LIMIT 1")
        assert result.rows == [(5, "eve")]

    def test_order_by_aggregate_expression(self, db):
        result = db.query(
            "SELECT dept, count(*) AS c FROM emp GROUP BY dept "
            "ORDER BY count(*) DESC, dept LIMIT 1")
        assert result.rows == [("eng", 2)]

    def test_limit_offset(self, db):
        result = db.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")
        assert result.rows == [(3,), (4,)]

    def test_multi_key_sort(self, db):
        result = db.query("SELECT dept, name FROM emp ORDER BY dept, name DESC")
        assert result.rows[0] == ("eng", "bob")
        assert result.rows[1] == ("eng", "ann")

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert result.rows == [("eng",), ("hr",), ("sales",)]


class TestJoins:
    @pytest.fixture
    def jdb(self, db):
        db.execute("CREATE TABLE dept (dname varchar(20), floor integer)")
        db.insert_table("dept", [("eng", 3), ("sales", 1), ("legal", 9)])
        return db

    def test_inner_join_on(self, jdb):
        result = jdb.query(
            "SELECT e.name, d.floor FROM emp e JOIN dept d "
            "ON e.dept = d.dname WHERE e.id = 1")
        assert result.rows == [("ann", 3)]

    def test_comma_join_with_where(self, jdb):
        result = jdb.query(
            "SELECT count(*) FROM emp e, dept d WHERE e.dept = d.dname")
        assert result.scalar() == 4  # hr has no dept row

    def test_left_join_null_extends(self, jdb):
        result = jdb.query(
            "SELECT e.name, d.floor FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.dname WHERE e.id = 5")
        assert result.rows == [("eve", None)]

    def test_cross_join_count(self, jdb):
        assert jdb.query(
            "SELECT count(*) FROM emp CROSS JOIN dept").scalar() == 15

    def test_join_with_expression_key(self, jdb):
        result = jdb.query(
            "SELECT count(*) FROM emp e, dept d WHERE lower(e.dept) = d.dname")
        assert result.scalar() == 4

    def test_three_way_join(self, jdb):
        jdb.execute("CREATE TABLE floors (fl integer, label varchar(10))")
        jdb.insert_table("floors", [(3, "third"), (1, "first")])
        result = jdb.query(
            "SELECT e.name, f.label FROM emp e "
            "JOIN dept d ON e.dept = d.dname "
            "JOIN floors f ON d.floor = f.fl "
            "ORDER BY e.name")
        assert result.rows == [
            ("ann", "third"), ("bob", "third"), ("cy", "first"),
            ("dee", "first")]

    def test_join_aggregate(self, jdb):
        result = jdb.query(
            "SELECT d.floor, count(*) FROM emp e JOIN dept d "
            "ON e.dept = d.dname GROUP BY d.floor ORDER BY d.floor")
        assert result.rows == [(1, 2), (3, 2)]


class TestSubqueriesAndViews:
    def test_subquery_in_from(self, db):
        result = db.query(
            "SELECT sub.dept, sub.c FROM "
            "(SELECT dept, count(*) AS c FROM emp GROUP BY dept) sub "
            "WHERE sub.c > 1 ORDER BY sub.dept")
        assert result.rows == [("eng", 2), ("sales", 2)]

    def test_nested_subquery(self, db):
        result = db.query(
            "SELECT max(c) FROM (SELECT dept, count(*) AS c FROM emp "
            "GROUP BY dept) x")
        assert result.scalar() == 2

    def test_view(self, db):
        db.execute("CREATE VIEW engineers AS "
                   "SELECT id, name FROM emp WHERE dept = 'eng'")
        result = db.query("SELECT count(*) FROM engineers")
        assert result.scalar() == 2

    def test_view_over_view(self, db):
        db.execute("CREATE VIEW engineers AS "
                   "SELECT id, name FROM emp WHERE dept = 'eng'")
        db.execute("CREATE VIEW first_engineer AS "
                   "SELECT name FROM engineers WHERE id = 1")
        assert db.query("SELECT * FROM first_engineer").rows == [("ann",)]

    def test_subquery_alias_scoping(self, db):
        result = db.query(
            "SELECT s.name FROM (SELECT name FROM emp WHERE id = 2) s")
        assert result.rows == [("bob",)]


class TestIndexUsage:
    def test_index_equality_plan(self, db):
        db.execute("CREATE INDEX emp_id ON emp (id)")
        plan = db.explain("SELECT name FROM emp WHERE id = 3")
        assert "IndexScan" in plan
        assert db.query("SELECT name FROM emp WHERE id = 3").rows == [("cy",)]

    def test_index_range_plan(self, db):
        db.execute("CREATE INDEX emp_sal ON emp (salary)")
        plan = db.explain("SELECT name FROM emp WHERE salary > 85")
        assert "IndexScan" in plan
        rows = db.query(
            "SELECT name FROM emp WHERE salary > 85 ORDER BY name").rows
        assert rows == [("ann",), ("bob",)]

    def test_index_results_match_seqscan(self, db):
        expected = db.query(
            "SELECT id FROM emp WHERE salary >= 85 ORDER BY id").rows
        db.execute("CREATE INDEX emp_sal ON emp (salary)")
        actual = db.query(
            "SELECT id FROM emp WHERE salary >= 85 ORDER BY id").rows
        assert actual == expected

    def test_index_sees_new_inserts(self, db):
        db.execute("CREATE INDEX emp_id ON emp (id)")
        db.insert_table("emp", [(6, "fay", "eng", 70.0)])
        assert db.query("SELECT name FROM emp WHERE id = 6").rows == [("fay",)]

    def test_no_index_on_other_column(self, db):
        db.execute("CREATE INDEX emp_id ON emp (id)")
        plan = db.explain("SELECT name FROM emp WHERE dept = 'eng'")
        assert "SeqScan" in plan
