"""Tests for the TruSQL tokenizer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import EOF, IDENT, NUMBER, OP, STRING, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql) if t.kind != EOF]


class TestBasicTokens:
    def test_idents_and_ops(self):
        assert texts("select a from t") == ["select", "a", "from", "t"]

    def test_eof_always_last(self):
        assert kinds("x")[-1] == EOF
        assert kinds("")[-1] == EOF

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75 1e3 2.5e-2")
        numbers = [t.text for t in tokens if t.kind == NUMBER]
        assert numbers == ["1", "2.5", ".75", "1e3", "2.5e-2"]

    def test_number_then_dot_stops(self):
        # "1.2.3" must not swallow two dots into one number
        tokens = [t.text for t in tokenize("1.2.3") if t.kind != EOF]
        assert tokens == ["1.2", ".3"]

    def test_string_literal(self):
        tokens = tokenize("'5 minutes'")
        assert tokens[0].kind == STRING
        assert tokens[0].text == "5 minutes"

    def test_string_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"My Table"')
        assert tokens[0].kind == IDENT
        assert tokens[0].text == "My Table"

    def test_multi_char_operators(self):
        assert texts("a::int <> b != c <= d >= e || f") == [
            "a", "::", "int", "<>", "b", "!=", "c", "<=", "d", ">=",
            "e", "||", "f",
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert texts("select 1 -- trailing\n") == ["select", "1"]

    def test_line_comment_mid_statement(self):
        assert texts("select -- c\n 1") == ["select", "1"]

    def test_block_comment(self):
        assert texts("select /* multi\nline */ 1") == ["select", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("select /* oops")

    def test_line_numbers_advance(self):
        tokens = tokenize("a\nb\nc")
        lines = [t.line for t in tokens if t.kind == IDENT]
        assert lines == [1, 2, 3]


class TestWindowClauseTokens:
    def test_angle_brackets_tokenize(self):
        text = "url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>"
        tokens = [(t.kind, t.text) for t in tokenize(text) if t.kind != EOF]
        assert tokens == [
            (IDENT, "url_stream"), (OP, "<"), (IDENT, "VISIBLE"),
            (STRING, "5 minutes"), (IDENT, "ADVANCE"),
            (STRING, "1 minute"), (OP, ">"),
        ]
