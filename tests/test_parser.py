"""Tests for the TruSQL parser: statements, expressions, window clauses."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_script, parse_statement


class TestSelectBasics:
    def test_simple_select(self):
        s = parse_statement("SELECT a, b FROM t")
        assert isinstance(s, ast.Select)
        assert len(s.items) == 2
        assert isinstance(s.from_clause, ast.TableRef)
        assert s.from_clause.name == "t"

    def test_select_star(self):
        s = parse_statement("SELECT * FROM t")
        assert isinstance(s.items[0].expr, ast.Star)

    def test_qualified_star(self):
        s = parse_statement("SELECT t.* FROM t")
        assert isinstance(s.items[0].expr, ast.Star)
        assert s.items[0].expr.table == "t"

    def test_aliases(self):
        s = parse_statement("SELECT a AS x, b y FROM t")
        assert s.items[0].alias == "x"
        assert s.items[1].alias == "y"

    def test_no_from(self):
        s = parse_statement("SELECT 1 + 1")
        assert s.from_clause is None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_where(self):
        s = parse_statement("SELECT a FROM t WHERE a > 5")
        assert isinstance(s.where, ast.BinaryOp)
        assert s.where.op == ">"

    def test_group_having_order_limit_offset(self):
        s = parse_statement(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 "
            "ORDER BY a DESC LIMIT 10 OFFSET 5")
        assert len(s.group_by) == 1
        assert s.having is not None
        assert s.order_by[0].descending
        assert s.limit == 10
        assert s.offset == 5

    def test_order_by_asc_default(self):
        s = parse_statement("SELECT a FROM t ORDER BY a")
        assert s.order_by[0].descending is False

    def test_table_alias(self):
        s = parse_statement("SELECT x.a FROM t AS x")
        assert s.from_clause.alias == "x"

    def test_table_alias_without_as(self):
        s = parse_statement("SELECT x.a FROM t x")
        assert s.from_clause.alias == "x"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t garbage extra ,")


class TestJoins:
    def test_comma_join(self):
        s = parse_statement("SELECT * FROM a, b")
        assert isinstance(s.from_clause, ast.Join)
        assert s.from_clause.kind == "CROSS"

    def test_inner_join_on(self):
        s = parse_statement("SELECT * FROM a JOIN b ON a.x = b.x")
        assert s.from_clause.kind == "INNER"
        assert s.from_clause.condition is not None

    def test_inner_keyword(self):
        s = parse_statement("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert s.from_clause.kind == "INNER"

    def test_left_join(self):
        s = parse_statement("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert s.from_clause.kind == "LEFT"

    def test_left_outer_join(self):
        s = parse_statement("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert s.from_clause.kind == "LEFT"

    def test_cross_join(self):
        s = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert s.from_clause.kind == "CROSS"
        assert s.from_clause.condition is None

    def test_three_way(self):
        s = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
        outer = s.from_clause
        assert isinstance(outer.left, ast.Join)

    def test_subquery_in_from(self):
        s = parse_statement("SELECT * FROM (SELECT a FROM t) sub")
        assert isinstance(s.from_clause, ast.SubqueryRef)
        assert s.from_clause.alias == "sub"

    def test_subquery_requires_alias(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM (SELECT a FROM t)")


class TestWindowClauses:
    def test_visible_advance(self):
        s = parse_statement(
            "SELECT * FROM s <VISIBLE '5 minutes' ADVANCE '1 minute'>")
        w = s.from_clause.window
        assert w.visible == 300.0
        assert w.advance == 60.0

    def test_tumbling_visible_only(self):
        w = parse_statement("SELECT * FROM s <VISIBLE '1 minute'>").from_clause.window
        assert w.visible == w.advance == 60.0

    def test_tumbling_advance_only(self):
        w = parse_statement("SELECT * FROM s <ADVANCE '10 seconds'>").from_clause.window
        assert w.visible == w.advance == 10.0

    def test_row_window(self):
        w = parse_statement(
            "SELECT * FROM s <VISIBLE 100 ROWS ADVANCE 10 ROWS>").from_clause.window
        assert w.visible_rows == 100
        assert w.advance_rows == 10

    def test_slices_windows(self):
        w = parse_statement("SELECT * FROM s <slices 3 windows>").from_clause.window
        assert w.slices_windows == 3

    def test_numeric_seconds(self):
        w = parse_statement("SELECT * FROM s <VISIBLE 60 ADVANCE 30>").from_clause.window
        assert w.visible == 60.0
        assert w.advance == 30.0

    def test_window_after_alias(self):
        s = parse_statement("SELECT * FROM s u <VISIBLE '1 minute'>")
        assert s.from_clause.alias == "u"
        assert s.from_clause.window is not None

    def test_mixed_extents_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM s <VISIBLE '1 minute' ADVANCE 5 ROWS>")

    def test_comparison_lt_not_window(self):
        # '<' followed by a non-window word must stay a comparison
        s = parse_statement("SELECT * FROM t WHERE a < b")
        assert s.where.op == "<"


class TestExpressions:
    def parse_expr(self, text):
        return parse_statement(f"SELECT {text}").items[0].expr

    def test_precedence_mul_over_add(self):
        e = self.parse_expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parens(self):
        e = self.parse_expr("(1 + 2) * 3")
        assert e.op == "*"

    def test_and_or_precedence(self):
        e = self.parse_expr("a OR b AND c")
        assert e.op == "OR"
        assert e.right.op == "AND"

    def test_not(self):
        e = self.parse_expr("NOT a")
        assert isinstance(e, ast.UnaryOp)
        assert e.op == "NOT"

    def test_unary_minus(self):
        e = self.parse_expr("-5")
        assert isinstance(e, ast.UnaryOp)

    def test_is_null(self):
        e = self.parse_expr("a IS NULL")
        assert isinstance(e, ast.IsNull)
        assert not e.negated

    def test_is_not_null(self):
        e = self.parse_expr("a IS NOT NULL")
        assert e.negated

    def test_like(self):
        e = self.parse_expr("a LIKE 'x%'")
        assert isinstance(e, ast.Like)

    def test_not_like(self):
        assert self.parse_expr("a NOT LIKE 'x%'").negated

    def test_ilike(self):
        assert self.parse_expr("a ILIKE 'x%'").case_insensitive

    def test_in_list(self):
        e = self.parse_expr("a IN (1, 2, 3)")
        assert isinstance(e, ast.InList)
        assert len(e.items) == 3

    def test_not_in(self):
        assert self.parse_expr("a NOT IN (1)").negated

    def test_between(self):
        e = self.parse_expr("a BETWEEN 1 AND 10")
        assert isinstance(e, ast.Between)

    def test_cast_postfix(self):
        e = self.parse_expr("'1 week'::interval")
        assert isinstance(e, ast.Cast)
        assert e.type_name == "interval"

    def test_cast_function(self):
        e = self.parse_expr("CAST(a AS integer)")
        assert isinstance(e, ast.Cast)
        assert e.type_name == "integer"

    def test_interval_keyword_literal(self):
        e = self.parse_expr("INTERVAL '5 minutes'")
        assert isinstance(e, ast.Cast)

    def test_chained_cast(self):
        e = self.parse_expr("a::text::varchar")
        assert isinstance(e, ast.Cast)
        assert isinstance(e.operand, ast.Cast)

    def test_case_searched(self):
        e = self.parse_expr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(e, ast.CaseExpr)
        assert e.operand is None
        assert e.default is not None

    def test_case_simple(self):
        e = self.parse_expr("CASE a WHEN 1 THEN 'one' END")
        assert e.operand is not None
        assert e.default is None

    def test_function_call(self):
        e = self.parse_expr("lower(a)")
        assert isinstance(e, ast.FunctionCall)
        assert e.name == "lower"

    def test_count_star(self):
        e = self.parse_expr("count(*)")
        assert isinstance(e.args[0], ast.Star)

    def test_count_distinct(self):
        e = self.parse_expr("count(DISTINCT a)")
        assert e.distinct

    def test_cq_close(self):
        e = self.parse_expr("cq_close(*)")
        assert e.name == "cq_close"

    def test_string_concat_op(self):
        e = self.parse_expr("a || b")
        assert e.op == "||"

    def test_boolean_literals(self):
        assert self.parse_expr("TRUE").value is True
        assert self.parse_expr("FALSE").value is False
        assert self.parse_expr("NULL").value is None

    def test_comparison_chain(self):
        e = self.parse_expr("1 < 2")
        assert e.op == "<"

    def test_ne_variants(self):
        assert self.parse_expr("a != b").op == "<>"
        assert self.parse_expr("a <> b").op == "<>"

    def test_modulo(self):
        assert self.parse_expr("a % 2").op == "%"


class TestDDL:
    def test_create_table(self):
        s = parse_statement(
            "CREATE TABLE t (a integer NOT NULL, b varchar(10), "
            "c double precision, d timestamp)")
        assert isinstance(s, ast.CreateTable)
        assert s.columns[0].not_null
        assert s.columns[1].length == 10
        assert s.columns[2].type_name == "double precision"

    def test_create_table_if_not_exists(self):
        s = parse_statement("CREATE TABLE IF NOT EXISTS t (a int)")
        assert s.if_not_exists

    def test_primary_key(self):
        s = parse_statement("CREATE TABLE t (id integer PRIMARY KEY)")
        assert s.columns[0].primary_key
        assert s.columns[0].not_null

    def test_create_stream_cqtime(self):
        s = parse_statement(
            "CREATE STREAM s (v int, ts timestamp CQTIME USER)")
        assert isinstance(s, ast.CreateStream)
        assert s.columns[1].cqtime == "user"

    def test_cqtime_system(self):
        s = parse_statement(
            "CREATE STREAM s (v int, ts timestamp CQTIME SYSTEM)")
        assert s.columns[1].cqtime == "system"

    def test_create_derived_stream(self):
        s = parse_statement(
            "CREATE STREAM d AS SELECT a FROM s <VISIBLE '1 minute'>")
        assert isinstance(s, ast.CreateDerivedStream)
        assert s.name == "d"

    def test_create_view(self):
        s = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(s, ast.CreateView)

    def test_create_channel(self):
        s = parse_statement("CREATE CHANNEL c FROM src INTO tgt APPEND")
        assert isinstance(s, ast.CreateChannel)
        assert s.mode == "append"

    def test_create_channel_replace(self):
        s = parse_statement("CREATE CHANNEL c FROM src INTO tgt REPLACE")
        assert s.mode == "replace"

    def test_create_index(self):
        s = parse_statement("CREATE INDEX i ON t (a)")
        assert isinstance(s, ast.CreateIndex)
        assert s.columns == ["a"]
        assert not s.unique

    def test_create_unique_index(self):
        assert parse_statement("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_drop_variants(self):
        for kind in ("TABLE", "STREAM", "VIEW", "CHANNEL", "INDEX"):
            s = parse_statement(f"DROP {kind} x")
            assert isinstance(s, ast.Drop)
            assert s.kind == kind.lower()

    def test_drop_if_exists(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists

    def test_numeric_precision_scale(self):
        s = parse_statement("CREATE TABLE t (a numeric(10, 2))")
        assert s.columns[0].type_name == "numeric"


class TestDML:
    def test_insert_values(self):
        s = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(s, ast.Insert)
        assert len(s.rows) == 2

    def test_insert_with_columns(self):
        s = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert s.columns == ["a", "b"]

    def test_insert_select(self):
        s = parse_statement("INSERT INTO t SELECT * FROM u")
        assert s.query is not None

    def test_update(self):
        s = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(s, ast.Update)
        assert len(s.assignments) == 2
        assert s.where is not None

    def test_delete(self):
        s = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(s, ast.Delete)

    def test_delete_all(self):
        assert parse_statement("DELETE FROM t").where is None


class TestTransactionsAndScripts:
    def test_begin_commit_rollback(self):
        assert isinstance(parse_statement("BEGIN"), ast.Begin)
        assert isinstance(parse_statement("COMMIT"), ast.Commit)
        assert isinstance(parse_statement("ROLLBACK"), ast.Rollback)
        assert isinstance(parse_statement("ABORT"), ast.Rollback)
        assert isinstance(parse_statement("BEGIN TRANSACTION"), ast.Begin)

    def test_script_multiple(self):
        statements = parse_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT * FROM t;")
        assert len(statements) == 3

    def test_script_empty_statements_skipped(self):
        assert parse_script(";;;") == []

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_statement("SELECT a\nFROM")
        assert "line" in str(info.value)
