"""Tests for shared slice aggregation (Section 2.2, refs [4, 12]):
many CQs, one per-tuple aggregation pass."""

import pytest

from repro import Database
from repro.sql import parse_statement
from repro.streaming.shared import sharing_signature


@pytest.fixture
def db():
    database = Database(share_slices=True)
    database.execute(
        "CREATE STREAM clicks (url varchar(100), ts timestamp CQTIME USER, "
        "ip varchar(20))")
    return database


@pytest.fixture
def plain_db():
    database = Database(share_slices=False)
    database.execute(
        "CREATE STREAM clicks (url varchar(100), ts timestamp CQTIME USER, "
        "ip varchar(20))")
    return database


CQ_TEMPLATE = ("SELECT url, count(*) c FROM clicks "
               "<VISIBLE '{v}' ADVANCE '1 minute'> GROUP BY url")


def drive(db, n_per_minute=3, minutes=6):
    events = []
    for minute in range(minutes):
        for i in range(n_per_minute):
            events.append((f"/p{i % 2}", minute * 60.0 + i + 1, "x"))
    db.insert_stream("clicks", events)
    db.advance_streams(minutes * 60.0)


class TestEligibility:
    def check(self, db, sql):
        return sharing_signature(parse_statement(sql), db.catalog)

    def test_simple_aggregate_eligible(self, db):
        assert self.check(db, CQ_TEMPLATE.format(v="5 minutes")) is not None

    def test_different_windows_same_signature(self, db):
        a = self.check(db, CQ_TEMPLATE.format(v="5 minutes"))
        b = self.check(db, CQ_TEMPLATE.format(v="10 minutes"))
        assert a.signature == b.signature

    def test_different_group_different_signature(self, db):
        a = self.check(db, CQ_TEMPLATE.format(v="5 minutes"))
        b = self.check(db, "SELECT ip, count(*) FROM clicks "
                           "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY ip")
        assert a.signature != b.signature

    def test_where_included_in_signature(self, db):
        a = self.check(db, "SELECT count(*) FROM clicks <VISIBLE '1 minute'> "
                           "WHERE url = '/a'")
        b = self.check(db, "SELECT count(*) FROM clicks <VISIBLE '1 minute'> "
                           "WHERE url = '/b'")
        assert a is not None and b is not None
        assert a.signature != b.signature

    def test_join_not_eligible(self, db):
        db.execute("CREATE TABLE t (url varchar(100))")
        assert self.check(
            db, "SELECT count(*) FROM clicks <VISIBLE '1 minute'> c, t "
                "WHERE c.url = t.url") is None

    def test_non_aggregate_not_eligible(self, db):
        assert self.check(db, "SELECT url FROM clicks <VISIBLE '1 minute'>") is None

    def test_row_window_not_eligible(self, db):
        assert self.check(
            db, "SELECT count(*) FROM clicks <VISIBLE 10 ROWS>") is None

    def test_table_query_not_eligible(self, db):
        db.execute("CREATE TABLE t (a integer)")
        assert self.check(db, "SELECT count(*) FROM t") is None


class TestSharedResults:
    def test_matches_generic_path(self, db, plain_db):
        """The shared path must produce exactly the generic path's output."""
        sql = CQ_TEMPLATE.format(v="2 minutes")
        shared_sub = db.subscribe(sql)
        plain_sub = plain_db.subscribe(sql)
        drive(db)
        drive(plain_db)
        shared_out = [(w.close_time, sorted(w.rows))
                      for w in shared_sub.poll()]
        plain_out = [(w.close_time, sorted(w.rows))
                     for w in plain_sub.poll()]
        assert shared_out == plain_out
        assert getattr(shared_sub.cq, "shared", False) is True

    def test_multiple_windows_one_aggregator(self, db):
        subs = [db.subscribe(CQ_TEMPLATE.format(v=v))
                for v in ("1 minute", "2 minutes", "5 minutes")]
        assert len(db.runtime.aggregators()) == 1
        drive(db)
        for sub in subs:
            assert len(sub.poll()) > 0

    def test_per_tuple_work_independent_of_cq_count(self, db):
        for v in ("1 minute", "2 minutes", "3 minutes", "4 minutes"):
            db.subscribe(CQ_TEMPLATE.format(v=v))
        drive(db, n_per_minute=5, minutes=4)
        aggregator = db.runtime.aggregators()[0]
        # every tuple aggregated exactly once despite 4 CQs
        assert aggregator.stats.tuples_in == 20
        assert aggregator.stats.agg_adds == 20

    def test_unshared_processes_per_cq(self, plain_db):
        subs = [plain_db.subscribe(CQ_TEMPLATE.format(v=v))
                for v in ("1 minute", "2 minutes")]
        drive(plain_db, n_per_minute=5, minutes=4)
        total_scanned = sum(s.stats.rows_scanned for s in subs)
        # generic path: each CQ rescans its window buffer per close
        assert total_scanned > 20

    def test_having_and_order_run_per_cq(self, db):
        sub = db.subscribe(
            "SELECT url, count(*) c FROM clicks "
            "<VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url "
            "HAVING count(*) > 2 ORDER BY c DESC LIMIT 1")
        drive(db, n_per_minute=6, minutes=3)
        for window in sub.poll():
            assert len(window.rows) <= 1
            for _url, count in window.rows:
                assert count > 2

    def test_where_filter_applied(self, db):
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE '1 minute'> "
            "WHERE url = '/p0'")
        drive(db, n_per_minute=4, minutes=2)
        rows = sub.rows()
        assert all(isinstance(c, int) for (c,) in rows)
        aggregator = db.runtime.aggregators()[0]
        assert aggregator.stats.tuples_filtered > 0

    def test_incompatible_grid_gets_second_aggregator(self, db):
        db.subscribe(CQ_TEMPLATE.format(v="2 minutes"))   # slice = 60s
        db.subscribe("SELECT url, count(*) c FROM clicks "
                     "<VISIBLE '90 seconds' ADVANCE '30 seconds'> GROUP BY url")
        assert len(db.runtime.aggregators()) == 2

    def test_stop_removes_consumer(self, db):
        sub = db.subscribe(CQ_TEMPLATE.format(v="1 minute"))
        aggregator = db.runtime.aggregators()[0]
        assert aggregator.consumer_count == 1
        sub.close()
        assert aggregator.consumer_count == 0

    def test_flush_emits_pending_window(self, db):
        sub = db.subscribe(CQ_TEMPLATE.format(v="1 minute"))
        db.insert_stream("clicks", [("/a", 10.0, "x")])
        db.flush_streams()
        rows = sub.rows()
        assert rows == [("/a", 1)]

    def test_scalar_aggregate_no_group(self, db):
        sub = db.subscribe(
            "SELECT count(*), avg(length(url)) FROM clicks <VISIBLE '1 minute'>")
        db.insert_stream("clicks", [("/ab", 1.0, "x"), ("/cd", 2.0, "x")])
        db.advance_streams(60.0)
        rows = sub.rows()
        assert rows == [(2, 3.0)]

    def test_scalar_empty_window_matches_generic(self, db, plain_db):
        sql = "SELECT count(*) FROM clicks <VISIBLE '1 minute'>"
        shared_sub = db.subscribe(sql)
        plain_sub = plain_db.subscribe(sql)
        for d in (db, plain_db):
            d.insert_stream("clicks", [("/a", 10.0, "x")])
            d.advance_streams(180.0)
        shared_out = [(w.close_time, w.rows) for w in shared_sub.poll()]
        plain_out = [(w.close_time, w.rows) for w in plain_sub.poll()]
        assert shared_out == plain_out
        assert shared_out[-1][1] == [(0,)]

    def test_empty_window_emits_nothing_for_grouped(self, db):
        sub = db.subscribe(CQ_TEMPLATE.format(v="1 minute"))
        db.insert_stream("clicks", [("/a", 10.0, "x")])
        db.advance_streams(180.0)
        windows = sub.poll()
        # grouped aggregates over empty windows produce zero rows
        assert [len(w.rows) for w in windows] == [1, 0, 0]
