"""Tests for two-stream windowed joins (extension beyond the paper's
single-stream examples; the paper's Section 6 promises systems that
"combine streaming and table-based data" — this combines two streams)."""

import pytest

from repro import Database
from repro.errors import PlanningError

MINUTE = 60.0


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE STREAM impressions (ad varchar(20), "
                     "ts timestamp CQTIME USER)")
    database.execute("CREATE STREAM clicks (ad varchar(20), "
                     "ts timestamp CQTIME USER)")
    return database


JOIN_SQL = """
SELECT i.ad, count(*) AS pairs
FROM impressions <VISIBLE '1 minute'> i,
     clicks <VISIBLE '1 minute'> c
WHERE i.ad = c.ad
GROUP BY i.ad ORDER BY i.ad
"""


class TestTwoStreamJoin:
    def test_equi_join_within_common_window(self, db):
        sub = db.subscribe(JOIN_SQL)
        db.insert_stream("impressions", [("a", 5.0), ("b", 10.0)])
        db.insert_stream("clicks", [("a", 20.0), ("a", 30.0)])
        db.advance_streams(MINUTE)
        # a: 1 impression x 2 clicks = 2 pairs; b: no clicks
        assert sub.rows() == [("a", 2)]

    def test_windows_pair_by_boundary(self, db):
        sub = db.subscribe(JOIN_SQL)
        db.insert_stream("impressions", [("a", 5.0)])
        db.insert_stream("clicks", [("a", 70.0)])  # the *next* minute
        db.advance_streams(2 * MINUTE)
        windows = sub.poll()
        # minute 1: impression but no click; minute 2: click but no
        # impression — no pairs either way
        assert all(w.rows == [] for w in windows)

    def test_join_over_consecutive_windows(self, db):
        sub = db.subscribe(JOIN_SQL)
        db.insert_stream("impressions", [("x", 5.0)])
        db.insert_stream("clicks", [("x", 6.0)])
        db.advance_streams(MINUTE)
        db.insert_stream("impressions", [("x", 65.0), ("y", 66.0)])
        db.insert_stream("clicks", [("y", 70.0)])
        db.advance_streams(2 * MINUTE)
        out = [(w.close_time, w.rows) for w in sub.poll()]
        assert out == [(60.0, [("x", 1)]), (120.0, [("y", 1)])]

    def test_sliding_windows_with_common_advance(self, db):
        sub = db.subscribe("""
            SELECT count(*) FROM
                impressions <VISIBLE '2 minutes' ADVANCE '1 minute'> i,
                clicks <VISIBLE '1 minute' ADVANCE '1 minute'> c
            WHERE i.ad = c.ad
        """)
        db.insert_stream("impressions", [("a", 5.0)])
        db.insert_stream("clicks", [("a", 70.0)])
        db.advance_streams(2 * MINUTE)
        counts = [w.rows[0][0] for w in sub.poll()]
        # at close 120 the 2-min impression window still holds t=5,
        # the 1-min click window holds t=70 -> one pair
        assert counts[-1] == 1

    def test_mismatched_advance_rejected(self, db):
        with pytest.raises(PlanningError):
            db.subscribe("""
                SELECT count(*) FROM
                    impressions <VISIBLE '1 minute'> i,
                    clicks <VISIBLE '2 minutes' ADVANCE '2 minutes'> c
                WHERE i.ad = c.ad
            """)

    def test_row_windows_rejected(self, db):
        with pytest.raises(PlanningError):
            db.subscribe("""
                SELECT count(*) FROM
                    impressions <VISIBLE 5 ROWS> i,
                    clicks <VISIBLE '1 minute'> c
                WHERE i.ad = c.ad
            """)

    def test_missing_window_rejected(self, db):
        with pytest.raises(PlanningError):
            db.subscribe(
                "SELECT count(*) FROM impressions i, "
                "clicks <VISIBLE '1 minute'> c WHERE i.ad = c.ad")

    def test_self_join(self, db):
        """Join a stream with itself over two different extents: which
        ads were seen both in the last minute and the last two minutes."""
        sub = db.subscribe("""
            SELECT recent.ad, count(*)
            FROM impressions <VISIBLE '1 minute'> recent,
                 impressions <VISIBLE '2 minutes' ADVANCE '1 minute'> longer
            WHERE recent.ad = longer.ad
            GROUP BY recent.ad ORDER BY recent.ad
        """)
        db.insert_stream("impressions", [("a", 5.0)])
        db.advance_streams(MINUTE)
        db.insert_stream("impressions", [("a", 65.0), ("b", 66.0)])
        db.advance_streams(2 * MINUTE)
        out = {w.close_time: w.rows for w in sub.poll()}
        # at 120: recent={a@65,b@66}, longer={a@5,a@65,b@66}
        assert out[120.0] == [("a", 2), ("b", 1)]

    def test_flush_drains_unmatched_boundaries(self, db):
        sub = db.subscribe(JOIN_SQL)
        db.insert_stream("impressions", [("a", 5.0)])
        db.insert_stream("clicks", [("a", 10.0)])
        # no heartbeat: nothing closed yet
        assert sub.poll() == []
        db.flush_streams()
        assert sub.rows() == [("a", 1)]

    def test_quiet_stream_still_joins(self, db):
        """One stream silent: heartbeats alone drive its empty windows."""
        sub = db.subscribe(JOIN_SQL)
        db.insert_stream("impressions", [("a", 5.0)])
        db.get_stream("clicks").insert(("a", 6.0))
        db.advance_streams(MINUTE)
        assert sub.rows() == [("a", 1)]
        # next minute: impressions silent, clicks active
        db.insert_stream("clicks", [("a", 70.0)])
        db.advance_streams(2 * MINUTE)
        assert sub.rows() == []

    def test_stats_count_both_sides(self, db):
        sub = db.subscribe(JOIN_SQL)
        db.insert_stream("impressions", [("a", 5.0), ("b", 6.0)])
        db.insert_stream("clicks", [("a", 7.0)])
        db.advance_streams(MINUTE)
        sub.poll()
        assert sub.stats.rows_scanned == 3
        assert sub.stats.windows_evaluated == 1

    def test_join_plus_table(self, db):
        """Two streams *and* a table in one CQ."""
        db.execute("CREATE TABLE ad_owner (ad varchar(20), owner varchar(20))")
        db.insert_table("ad_owner", [("a", "acme")])
        sub = db.subscribe("""
            SELECT o.owner, count(*)
            FROM impressions <VISIBLE '1 minute'> i,
                 clicks <VISIBLE '1 minute'> c,
                 ad_owner o
            WHERE i.ad = c.ad AND i.ad = o.ad
            GROUP BY o.owner
        """)
        db.insert_stream("impressions", [("a", 5.0)])
        db.insert_stream("clicks", [("a", 10.0)])
        db.advance_streams(MINUTE)
        assert sub.rows() == [("acme", 1)]

    def test_ctr_use_case(self, db):
        """The canonical use: click-through rate per ad per minute."""
        sub = db.subscribe("""
            SELECT i.ad, count(DISTINCT c.ts) * 1.0 / count(DISTINCT i.ts)
            FROM impressions <VISIBLE '1 minute'> i
            LEFT JOIN clicks <VISIBLE '1 minute'> c ON i.ad = c.ad
            GROUP BY i.ad ORDER BY i.ad
        """)
        db.insert_stream("impressions",
                         [("a", 1.0), ("a", 2.0), ("a", 3.0), ("a", 4.0),
                          ("b", 5.0)])
        db.insert_stream("clicks", [("a", 30.0)])
        db.advance_streams(MINUTE)
        rows = sub.rows()
        assert rows[0] == ("a", 0.25)
        assert rows[1] == ("b", 0.0)
