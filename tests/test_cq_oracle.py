"""End-to-end property test: the whole CQ pipeline against a naive oracle.

Hypothesis generates random event streams and window extents; the oracle
computes every window's grouped counts by brute force (scan all events
per boundary).  The engine — window operator, planner, executor, and the
shared-slice path — must agree exactly.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import Database

KEYS = ["a", "b", "c"]

events_strategy = st.lists(
    st.tuples(st.sampled_from(KEYS),
              st.integers(min_value=0, max_value=600)),
    min_size=1, max_size=80,
).map(lambda evs: sorted(evs, key=lambda e: e[1]))

extents_strategy = st.sampled_from([
    (60.0, 60.0), (120.0, 60.0), (300.0, 60.0), (90.0, 30.0), (30.0, 30.0),
])


def oracle(events, visible, advance, end_time):
    """All (close, {key: count}) windows per RSTREAM semantics."""
    first = events[0][1]
    base = math.floor(first / advance) * advance
    out = []
    k = 1
    while base + k * advance <= end_time:
        close = base + k * advance
        counts = {}
        for key, t in events:
            if close - visible <= t < close:
                counts[key] = counts.get(key, 0) + 1
        out.append((close, counts))
        k += 1
    return out


def run_engine(events, visible, advance, end_time, share):
    db = Database(share_slices=share)
    db.execute("CREATE STREAM s (k varchar(5), ts timestamp CQTIME USER)")
    sub = db.subscribe(
        f"SELECT k, count(*) FROM s <VISIBLE {visible} ADVANCE {advance}> "
        "GROUP BY k")
    db.insert_stream("s", [(key, float(t)) for key, t in events])
    db.advance_streams(end_time)
    return [(w.close_time, dict(w.rows)) for w in sub.poll()]


@settings(max_examples=50, deadline=None)
@given(events_strategy, extents_strategy)
def test_generic_path_matches_oracle(events, extents):
    visible, advance = extents
    end_time = float(events[-1][1]) + visible + advance
    expected = oracle(events, visible, advance, end_time)
    actual = run_engine(events, visible, advance, end_time, share=False)
    assert actual == expected


@settings(max_examples=50, deadline=None)
@given(events_strategy, extents_strategy)
def test_shared_path_matches_oracle(events, extents):
    visible, advance = extents
    end_time = float(events[-1][1]) + visible + advance
    expected = oracle(events, visible, advance, end_time)
    actual = run_engine(events, visible, advance, end_time, share=True)
    assert actual == expected


@settings(max_examples=30, deadline=None)
@given(events_strategy, extents_strategy)
def test_channel_archive_matches_oracle_totals(events, extents):
    """The archived active table must contain exactly the oracle's
    non-empty window rows."""
    visible, advance = extents
    end_time = float(events[-1][1]) + visible + advance
    db = Database()
    db.execute("CREATE STREAM s (k varchar(5), ts timestamp CQTIME USER)")
    db.execute_script(f"""
        CREATE STREAM rollup AS SELECT k, count(*) c, cq_close(*)
            FROM s <VISIBLE {visible} ADVANCE {advance}> GROUP BY k;
        CREATE TABLE arch (k varchar(5), c bigint, stime timestamp);
        CREATE CHANNEL ch FROM rollup INTO arch APPEND;
    """)
    db.insert_stream("s", [(key, float(t)) for key, t in events])
    db.advance_streams(end_time)
    expected = sorted(
        (key, count, close)
        for close, counts in oracle(events, visible, advance, end_time)
        for key, count in counts.items()
    )
    assert sorted(db.table_rows("arch")) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.sampled_from(KEYS),
                       st.integers(min_value=0, max_value=300)),
             min_size=1, max_size=40),
    st.integers(min_value=1, max_value=120),
)
def test_slack_stream_matches_sorted_ingest(jittered, slack):
    """Any jittered arrival order + enough slack == sorted arrival."""
    ordered = sorted(jittered, key=lambda e: e[1])
    end_time = float(max(t for _k, t in jittered)) + 120.0

    def run(rows, use_slack):
        db = Database(stream_slack=float(use_slack))
        db.execute("CREATE STREAM s (k varchar(5), ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT k, count(*) FROM s <VISIBLE 60 ADVANCE 60> GROUP BY k")
        db.insert_stream("s", [(k, float(t)) for k, t in rows])
        # the visible clock trails the raw clock by the slack: heartbeat
        # far enough that both runs' delivered clocks reach end_time
        db.get_stream("s").advance_to(end_time + use_slack)
        db.flush_streams()
        return [(w.close_time, dict(w.rows)) for w in sub.poll()]

    assert run(jittered, 400) == run(ordered, 0)
