"""Tests for the extended SQL surface: set operations, subquery
predicates, scalar subqueries, CREATE TABLE AS, and EXPLAIN."""

import pytest

from repro import Database
from repro.errors import BindError, ExecutionError, PlanningError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (x integer, tag varchar(10))")
    database.execute("CREATE TABLE b (x integer, tag varchar(10))")
    database.insert_table("a", [(1, "one"), (2, "two"), (2, "two"),
                                (3, "three")])
    database.insert_table("b", [(2, "two"), (4, "four")])
    return database


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, db):
        result = db.query("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert sorted(result.rows) == [(1,), (2,), (2,), (2,), (3,), (4,)]

    def test_union_deduplicates(self, db):
        result = db.query("SELECT x FROM a UNION SELECT x FROM b")
        assert sorted(result.rows) == [(1,), (2,), (3,), (4,)]

    def test_except(self, db):
        result = db.query("SELECT x FROM a EXCEPT SELECT x FROM b")
        assert sorted(result.rows) == [(1,), (3,)]

    def test_except_all_bag_semantics(self, db):
        result = db.query("SELECT x FROM a EXCEPT ALL SELECT x FROM b")
        # a has two 2s, b cancels one
        assert sorted(result.rows) == [(1,), (2,), (3,)]

    def test_intersect(self, db):
        result = db.query("SELECT x FROM a INTERSECT SELECT x FROM b")
        assert result.rows == [(2,)]

    def test_intersect_all(self, db):
        db.insert_table("b", [(2, "two")])
        result = db.query("SELECT x FROM a INTERSECT ALL SELECT x FROM b")
        assert sorted(result.rows) == [(2,), (2,)]

    def test_chained_set_ops(self, db):
        result = db.query(
            "SELECT x FROM a UNION SELECT x FROM b UNION SELECT 99")
        assert (99,) in result.rows
        assert len(result.rows) == 5

    def test_order_limit_apply_to_whole(self, db):
        result = db.query(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 2")
        assert result.rows == [(4,), (3,)]

    def test_order_by_position(self, db):
        result = db.query(
            "SELECT x, tag FROM a UNION SELECT x, tag FROM b ORDER BY 1")
        assert result.rows[0][0] == 1

    def test_column_names_from_left(self, db):
        result = db.query(
            "SELECT x AS left_name FROM a UNION SELECT x FROM b")
        assert result.columns == ["left_name"]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT x FROM a UNION SELECT x, tag FROM b")

    def test_set_op_in_from_subquery(self, db):
        result = db.query(
            "SELECT count(*) FROM "
            "(SELECT x FROM a UNION SELECT x FROM b) u")
        assert result.scalar() == 4

    def test_set_op_in_view(self, db):
        db.execute("CREATE VIEW both AS SELECT x FROM a UNION "
                   "SELECT x FROM b")
        assert db.query("SELECT count(*) FROM both").scalar() == 4

    def test_set_op_over_streams_rejected(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        with pytest.raises(PlanningError):
            db.execute("SELECT v FROM s <VISIBLE '1 minute'> "
                       "UNION SELECT x FROM a")


class TestSubqueryPredicates:
    def test_in_subquery(self, db):
        result = db.query("SELECT x FROM a WHERE x IN (SELECT x FROM b)")
        assert result.rows == [(2,), (2,)]

    def test_not_in_subquery(self, db):
        result = db.query(
            "SELECT DISTINCT x FROM a WHERE x NOT IN (SELECT x FROM b)")
        assert sorted(result.rows) == [(1,), (3,)]

    def test_not_in_with_null_in_subquery_is_empty(self, db):
        db.execute("CREATE TABLE n (x integer)")
        db.insert_table("n", [(2,), (None,)])
        result = db.query("SELECT x FROM a WHERE x NOT IN (SELECT x FROM n)")
        assert result.rows == []  # NULL makes NOT IN unknown

    def test_exists(self, db):
        assert db.query("SELECT count(*) FROM a WHERE EXISTS "
                        "(SELECT 1 FROM b WHERE x = 4)").scalar() == 4

    def test_exists_empty(self, db):
        assert db.query("SELECT count(*) FROM a WHERE EXISTS "
                        "(SELECT 1 FROM b WHERE x = 99)").scalar() == 0

    def test_not_exists(self, db):
        assert db.query("SELECT count(*) FROM a WHERE NOT EXISTS "
                        "(SELECT 1 FROM b WHERE x = 99)").scalar() == 4

    def test_in_subquery_must_be_single_column(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT x FROM a WHERE x IN (SELECT x, tag FROM b)")

    def test_subquery_with_aggregate(self, db):
        result = db.query(
            "SELECT x FROM a WHERE x IN (SELECT max(x) - 2 FROM b)")
        assert result.rows == [(2,), (2,)]

    def test_correlated_subquery_rejected(self, db):
        with pytest.raises(BindError):
            db.query("SELECT x FROM a WHERE EXISTS "
                     "(SELECT 1 FROM b WHERE b.x = a.x)")

    def test_in_subquery_inside_cq(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> "
            "WHERE v IN (SELECT x FROM b)")
        db.insert_stream("s", [(2, 1.0), (9, 2.0), (4, 3.0)])
        db.advance_streams(60.0)
        assert sub.rows() == [(2,)]

    def test_cq_subquery_sees_table_updates_at_boundaries(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> "
            "WHERE v IN (SELECT x FROM b)")
        db.insert_stream("s", [(7, 1.0)])
        db.advance_streams(60.0)
        assert sub.rows() == [(0,)]
        db.insert_table("b", [(7, "seven")])  # visible from next boundary
        db.insert_stream("s", [(7, 61.0)])
        db.advance_streams(120.0)
        assert sub.rows() == [(1,)]


class TestScalarSubqueries:
    def test_in_select_list(self, db):
        assert db.query("SELECT (SELECT max(x) FROM b)").scalar() == 4

    def test_in_where(self, db):
        result = db.query(
            "SELECT x FROM a WHERE x = (SELECT min(x) FROM b)")
        assert result.rows == [(2,), (2,)]

    def test_arithmetic_on_scalar(self, db):
        assert db.query(
            "SELECT (SELECT max(x) FROM b) * (SELECT min(x) FROM b)"
        ).scalar() == 8

    def test_empty_scalar_is_null(self, db):
        assert db.query(
            "SELECT (SELECT x FROM b WHERE x = 99)").scalar() is None

    def test_multirow_scalar_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT (SELECT x FROM b)")

    def test_multicolumn_scalar_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT (SELECT x, tag FROM b)")


class TestCreateTableAs:
    def test_basic(self, db):
        db.execute("CREATE TABLE doubled AS SELECT x * 2 AS y FROM a")
        assert sorted(db.table_rows("doubled")) == [(2,), (4,), (4,), (6,)]

    def test_schema_inferred(self, db):
        db.execute("CREATE TABLE t2 AS SELECT x, tag FROM a WHERE x = 1")
        table = db.get_table("t2")
        assert table.schema.names() == ["x", "tag"]

    def test_from_set_op(self, db):
        db.execute("CREATE TABLE u AS SELECT x FROM a UNION SELECT x FROM b")
        assert len(db.table_rows("u")) == 4

    def test_result_is_normal_table(self, db):
        db.execute("CREATE TABLE copy_a AS SELECT * FROM a")
        db.execute("INSERT INTO copy_a VALUES (99, 'new')")
        assert db.query("SELECT count(*) FROM copy_a").scalar() == 5

    def test_over_stream_rejected(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        with pytest.raises(PlanningError):
            db.execute("CREATE TABLE t AS SELECT v FROM s <VISIBLE '1 minute'>")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS a AS SELECT 1")
        # unchanged: 'a' already existed
        assert db.query("SELECT count(*) FROM a").scalar() == 4


class TestExplainStatement:
    def test_returns_plan_rows(self, db):
        result = db.execute("EXPLAIN SELECT x FROM a WHERE x = 1")
        assert result.columns == ["QUERY PLAN"]
        text = "\n".join(line for (line,) in result.rows)
        assert "SeqScan" in text
        assert "Filter" in text

    def test_explain_cq(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        result = db.execute(
            "EXPLAIN SELECT count(*) FROM s <VISIBLE '1 minute'>")
        text = "\n".join(line for (line,) in result.rows)
        assert ("RowSource" in text or "BatchSource" in text
                or "SharedSliceAggregator" in text)

    def test_explain_shows_index(self, db):
        db.execute("CREATE INDEX a_x ON a (x)")
        result = db.execute("EXPLAIN SELECT * FROM a WHERE x = 2")
        text = "\n".join(line for (line,) in result.rows)
        assert "IndexScan" in text
