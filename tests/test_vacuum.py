"""Tests for MVCC vacuum: dead version reclamation."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b varchar(20))")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return database


class TestVacuum:
    def test_deleted_rows_reclaimed(self, db):
        db.execute("DELETE FROM t WHERE a < 3")
        table = db.get_table("t")
        assert table.heap.row_count == 3  # versions still physically there
        removed = db.vacuum("t")
        assert removed == 2
        assert table.heap.row_count == 1

    def test_visible_rows_survive(self, db):
        db.execute("DELETE FROM t WHERE a = 1")
        db.vacuum("t")
        assert sorted(db.query("SELECT a FROM t").rows) == [(2,), (3,)]

    def test_update_leaves_one_dead_version(self, db):
        db.execute("UPDATE t SET b = 'updated' WHERE a = 1")
        assert db.vacuum("t") == 1
        assert db.query("SELECT b FROM t WHERE a = 1").scalar() == "updated"

    def test_nothing_dead_nothing_removed(self, db):
        assert db.vacuum("t") == 0

    def test_active_snapshot_blocks_vacuum(self, db):
        db.execute("BEGIN")  # session snapshot pins the horizon
        db.query("SELECT count(*) FROM t")
        other = Database()  # unrelated; just to be explicit about scoping
        del other
        # delete through a second path: use the engine API directly
        manager = db.txn_manager
        table = db.get_table("t")
        deleter = manager.begin()
        for rid, version in list(table.heap.scan(table._pool)):
            if version.values[0] == 1 and version.xmax is None:
                table.delete_version(deleter, rid, version)
        deleter.commit()
        # the session txn predates the delete: the version must survive
        assert table.vacuum(manager) == 0
        db.execute("COMMIT")
        assert table.vacuum(manager) == 1

    def test_vacuum_updates_indexes(self, db):
        db.execute("CREATE INDEX t_a ON t (a)")
        db.execute("DELETE FROM t WHERE a = 2")
        index = db.catalog.get_index("t_a")
        assert len(index.search((2,))) == 1  # dead but indexed
        db.vacuum("t")
        assert index.search((2,)) == []

    def test_vacuum_all_tables(self, db):
        db.execute("CREATE TABLE u (x integer)")
        db.execute("INSERT INTO u VALUES (1)")
        db.execute("DELETE FROM t")
        db.execute("DELETE FROM u")
        assert db.vacuum() == 4

    def test_replace_channel_churn_reclaimed(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        db.execute_script("""
            CREATE STREAM latest AS SELECT count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'>;
            CREATE TABLE current (c bigint, ts timestamp);
            CREATE CHANNEL ch FROM latest INTO current REPLACE;
        """)
        for minute in range(5):
            db.insert_stream("s", [(1, minute * 60.0 + 1)])
        db.advance_streams(300.0)
        table = db.get_table("current")
        assert table.heap.row_count == 5  # four dead + one live
        assert db.vacuum("current") == 4
        assert table.heap.row_count == 1
        assert len(db.query("SELECT * FROM current").rows) == 1
