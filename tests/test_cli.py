"""Tests for the interactive TruSQL shell."""

import io

import pytest

from repro.cli import Shell


def run_script(lines):
    out = io.StringIO()
    shell = Shell(out=out)
    shell.run(iter(lines))
    return out.getvalue(), shell


class TestShell:
    def test_ddl_and_query(self):
        output, _shell = run_script([
            "CREATE TABLE t (a integer);",
            "INSERT INTO t VALUES (1), (2);",
            "SELECT sum(a) FROM t;",
        ])
        assert "OK (rowcount=0)" in output
        assert "OK (rowcount=2)" in output
        assert "3" in output

    def test_multiline_statement(self):
        output, _shell = run_script([
            "CREATE TABLE t (a integer);",
            "SELECT a",
            "FROM t",
            "WHERE a > 0;",
        ])
        assert "(0 rows)" in output

    def test_error_reported_not_raised(self):
        output, _shell = run_script(["SELECT * FROM missing;"])
        assert "ERROR" in output
        assert "missing" in output

    def test_cq_becomes_named_subscription(self):
        output, shell = run_script([
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "SELECT count(*) FROM s <VISIBLE '1 minute'>;",
        ])
        assert "sub1" in output
        assert "sub1" in shell.subscriptions

    def test_advance_prints_windows(self):
        output, _shell = run_script([
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "SELECT count(*) c FROM s <VISIBLE '1 minute'>;",
            "INSERT INTO s VALUES (7, 5.0);",
            "\\advance 60",
        ])
        assert "window [0, 60)" in output

    def test_flush_prints_windows(self):
        output, _shell = run_script([
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "SELECT count(*) c FROM s <VISIBLE '1 minute'>;",
            "INSERT INTO s VALUES (7, 5.0);",
            "\\flush",
        ])
        assert "flushed" in output
        assert "window" in output

    def test_describe(self):
        output, _shell = run_script([
            "CREATE TABLE t (a integer);",
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "\\d",
        ])
        assert "t " in output and "table" in output
        assert "s " in output and "stream" in output

    def test_timing_toggle(self):
        output, _shell = run_script([
            "\\timing",
            "SELECT 1;",
        ])
        assert "timing on" in output
        assert "ms wall" in output

    def test_quit_stops_processing(self):
        output, _shell = run_script([
            "\\q",
            "SELECT 1;",
        ])
        assert "?column?" not in output

    def test_unknown_command(self):
        output, _shell = run_script(["\\frobnicate"])
        assert "unknown command" in output

    def test_help(self):
        output, _shell = run_script(["\\help"])
        assert "\\poll" in output

    def test_statement_without_trailing_semicolon_runs_at_eof(self):
        output, _shell = run_script(["SELECT 40 + 2"])
        assert "42" in output
