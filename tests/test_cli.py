"""Tests for the interactive TruSQL shell."""

import io

import pytest

from repro.cli import Shell


def run_script(lines):
    out = io.StringIO()
    shell = Shell(out=out)
    shell.run(iter(lines))
    return out.getvalue(), shell


class TestShell:
    def test_ddl_and_query(self):
        output, _shell = run_script([
            "CREATE TABLE t (a integer);",
            "INSERT INTO t VALUES (1), (2);",
            "SELECT sum(a) FROM t;",
        ])
        assert "OK (rowcount=0)" in output
        assert "OK (rowcount=2)" in output
        assert "3" in output

    def test_multiline_statement(self):
        output, _shell = run_script([
            "CREATE TABLE t (a integer);",
            "SELECT a",
            "FROM t",
            "WHERE a > 0;",
        ])
        assert "(0 rows)" in output

    def test_error_reported_not_raised(self):
        output, _shell = run_script(["SELECT * FROM missing;"])
        assert "ERROR" in output
        assert "missing" in output

    def test_cq_becomes_named_subscription(self):
        output, shell = run_script([
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "SELECT count(*) FROM s <VISIBLE '1 minute'>;",
        ])
        assert "sub1" in output
        assert "sub1" in shell.subscriptions

    def test_advance_prints_windows(self):
        output, _shell = run_script([
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "SELECT count(*) c FROM s <VISIBLE '1 minute'>;",
            "INSERT INTO s VALUES (7, 5.0);",
            "\\advance 60",
        ])
        assert "window [0, 60)" in output

    def test_flush_prints_windows(self):
        output, _shell = run_script([
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "SELECT count(*) c FROM s <VISIBLE '1 minute'>;",
            "INSERT INTO s VALUES (7, 5.0);",
            "\\flush",
        ])
        assert "flushed" in output
        assert "window" in output

    def test_describe(self):
        output, _shell = run_script([
            "CREATE TABLE t (a integer);",
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER);",
            "\\d",
        ])
        assert "t " in output and "table" in output
        assert "s " in output and "stream" in output

    def test_timing_toggle(self):
        output, _shell = run_script([
            "\\timing",
            "SELECT 1;",
        ])
        assert "timing on" in output
        assert "ms wall" in output

    def test_quit_stops_processing(self):
        output, _shell = run_script([
            "\\q",
            "SELECT 1;",
        ])
        assert "?column?" not in output

    def test_unknown_command(self):
        output, _shell = run_script(["\\frobnicate"])
        assert "unknown command" in output

    def test_help(self):
        output, _shell = run_script(["\\help"])
        assert "\\poll" in output

    def test_statement_without_trailing_semicolon_runs_at_eof(self):
        output, _shell = run_script(["SELECT 40 + 2"])
        assert "42" in output


class TestOneShot:
    """The -c/--execute flag: run statements, exit nonzero on error."""

    def test_success_exit_code(self, capsys):
        from repro.cli import main
        code = main(["-c", "SELECT 40 + 2"])
        assert code == 0
        assert "42" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        from repro.cli import main
        code = main(["-c", "SELECT * FROM missing"])
        assert code == 1
        assert "ERROR" in capsys.readouterr().out

    def test_semicolon_separated_statements(self, capsys):
        from repro.cli import main
        code = main(["-c", "CREATE TABLE t (a integer); "
                           "INSERT INTO t VALUES (1), (2); "
                           "SELECT sum(a) FROM t"])
        assert code == 0
        assert "3" in capsys.readouterr().out

    def test_repeated_flags_share_one_session(self, capsys):
        from repro.cli import main
        code = main(["-c", "CREATE TABLE t (a integer)",
                     "-c", "SELECT count(*) FROM t"])
        assert code == 0
        assert "0" in capsys.readouterr().out

    def test_error_mid_script_still_nonzero(self, capsys):
        from repro.cli import main
        code = main(["-c", "SELECT 1; SELECT * FROM missing; SELECT 2"])
        assert code == 1

    def test_backslash_commands_allowed(self, capsys):
        from repro.cli import main
        code = main(["-c",
                     "CREATE STREAM s (v integer, ts timestamp CQTIME USER);"
                     "SELECT count(*) c FROM s <VISIBLE '1 minute'>;"
                     "INSERT INTO s VALUES (7, 5.0);"
                     "\\advance 60"])
        assert code == 0
        assert "window [0, 60)" in capsys.readouterr().out


class TestRemoteShell:
    """The --connect flag: same shell over a live server."""

    @pytest.fixture
    def server(self):
        from repro.server import ServerThread
        with ServerThread() as st:
            yield st

    def test_one_shot_against_server(self, server, capsys):
        from repro.cli import main
        code = main(["--connect", f"{server.host}:{server.port}",
                     "-c", "CREATE TABLE t (a integer); "
                           "INSERT INTO t VALUES (41); "
                           "SELECT a + 1 FROM t"])
        assert code == 0
        assert "42" in capsys.readouterr().out

    def test_one_shot_error_against_server(self, server, capsys):
        from repro.cli import main
        code = main(["--connect", f"{server.host}:{server.port}",
                     "-c", "SELECT * FROM missing"])
        assert code == 1
        assert "ERROR" in capsys.readouterr().out

    def test_remote_cq_and_poll(self, server, capsys):
        from repro.cli import main
        code = main(["--connect", f"{server.host}:{server.port}",
                     "-c",
                     "CREATE STREAM s (v integer, ts timestamp CQTIME USER);"
                     "SELECT count(*) c FROM s <VISIBLE '1 minute'>;"
                     "INSERT INTO s VALUES (7, 5.0);"
                     "\\advance 60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "continuous query running as 'sub1'" in out
        assert "window [0, 60)" in out

    def test_remote_describe(self, server, capsys):
        from repro.cli import main
        code = main(["--connect", f"{server.host}:{server.port}",
                     "-c", "CREATE TABLE t (a integer); \\d"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t " in out and "table" in out

    def test_bad_connect_spec(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["--connect", "nonsense", "-c", "SELECT 1"])


class TestReplicationCommand:
    def test_replication_shows_standalone_row(self):
        output, _shell = run_script(["\\replication"])
        assert "standalone" in output
        assert "role" in output

    def test_replication_listed_in_help(self):
        output, _shell = run_script(["\\help"])
        assert "\\replication" in output
