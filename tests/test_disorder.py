"""Tests for bounded out-of-order ingest (reorder slack)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.catalog.schema import Column, Schema
from repro.errors import OutOfOrderError
from repro.streaming.streams import BaseStream
from repro.types.datatypes import IntegerType, TimestampType


def schema():
    return Schema([Column("v", IntegerType()),
                   Column("ts", TimestampType(), cqtime="user")])


class Recorder:
    def __init__(self):
        self.delivered = []
        self.heartbeats = []

    def on_tuple(self, row, event_time):
        self.delivered.append(event_time)

    def on_heartbeat(self, event_time):
        self.heartbeats.append(event_time)

    def on_flush(self):
        pass


class TestSlackReordering:
    def make(self, slack=10.0, policy="raise"):
        stream = BaseStream("s", schema(), disorder_policy=policy,
                            slack=slack)
        sink = Recorder()
        stream.subscribe(sink)
        return stream, sink

    def test_in_order_within_slack_delivered_sorted(self):
        stream, sink = self.make(slack=10.0)
        for t in (5.0, 3.0, 8.0, 6.0, 20.0):
            stream.insert((1, t))
        # raw clock is 20, threshold 10: 3,5,6,8 released in order
        assert sink.delivered == [3.0, 5.0, 6.0, 8.0]

    def test_flush_releases_everything(self):
        stream, sink = self.make(slack=10.0)
        for t in (5.0, 3.0):
            stream.insert((1, t))
        stream.flush()
        assert sink.delivered == [3.0, 5.0]

    def test_heartbeat_releases_and_delays(self):
        stream, sink = self.make(slack=10.0)
        stream.insert((1, 5.0))
        stream.advance_to(30.0)
        assert sink.delivered == [5.0]
        assert sink.heartbeats == [20.0]  # consumers see now - slack

    def test_late_beyond_slack_raises(self):
        stream, _sink = self.make(slack=10.0)
        stream.insert((1, 100.0))  # releases nothing yet (threshold 90)
        stream.insert((1, 95.0))   # within slack: fine
        stream.insert((1, 120.0))  # threshold 110: releases 95,100
        with pytest.raises(OutOfOrderError):
            stream.insert((1, 99.0))  # older than delivered watermark

    def test_late_beyond_slack_dropped_under_drop_policy(self):
        stream, sink = self.make(slack=10.0, policy="drop")
        stream.insert((1, 100.0))
        stream.insert((1, 120.0))
        assert stream.insert((1, 50.0)) is False
        assert stream.tuples_dropped == 1

    def test_reordered_counter(self):
        stream, _sink = self.make(slack=10.0)
        stream.insert((1, 5.0))
        stream.insert((1, 3.0))
        assert stream.tuples_reordered == 1

    def test_zero_slack_keeps_strict_behaviour(self):
        stream, _sink = self.make(slack=0.0)
        stream.insert((1, 5.0))
        with pytest.raises(OutOfOrderError):
            stream.insert((1, 4.0))

    def test_retention_tail_is_in_delivered_order(self):
        stream = BaseStream("s", schema(), slack=10.0, retention=1000.0)
        for t in (5.0, 3.0, 30.0):
            stream.insert((1, t))
        stream.flush()
        times = [when for when, _row in stream.replay_since(0.0)]
        assert times == sorted(times)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=50))
    def test_delivery_is_always_sorted(self, jittered):
        stream, sink = self.make(slack=200.0, policy="drop")
        for t in jittered:
            stream.insert((1, float(t)))
        stream.flush()
        assert sink.delivered == sorted(sink.delivered)
        assert len(sink.delivered) == len(jittered)


class TestSlackWithWindows:
    def test_cq_over_jittered_stream_matches_ordered_run(self):
        """A windowed CQ over a slack stream must produce exactly what it
        produces when the same events arrive pre-sorted."""
        events = [(i, float(t)) for i, t in enumerate(
            [12, 5, 48, 33, 61, 55, 70, 68, 90, 88, 130, 122])]

        def run(rows, slack):
            db = Database(stream_slack=slack)
            db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            sub = db.subscribe(
                "SELECT count(*), cq_close(*) FROM s <VISIBLE '1 minute'>")
            db.insert_stream("s", rows)
            db.flush_streams()
            return [(w.close_time, w.rows) for w in sub.poll()]

        jittered = run(events, slack=30.0)
        ordered = run(sorted(events, key=lambda e: e[1]), slack=0.0)
        assert jittered == ordered

    def test_database_slack_option(self):
        db = Database(stream_slack=15.0)
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        assert db.get_stream("s").slack == 15.0


class TestDisorderUnderFaults:
    """Slack and disorder policies must hold while the supervisor is
    quarantining windows and restarting CQs underneath the stream."""

    JITTERED = [(i, float(t)) for i, t in enumerate(
        [12, 5, 48, 33, 61, 55, 70, 68, 125, 118, 190, 182, 250, 248])]

    def pipeline(self, injector=None, policy="drop"):
        from repro.faults import FaultInjector  # noqa: F401 (doc pointer)
        db = Database(supervised=injector is not None, stream_slack=30.0,
                      disorder_policy=policy, stream_retention=3600.0,
                      fault_injector=injector)
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        db.execute_script("""
            CREATE STREAM agg AS SELECT count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'>;
            CREATE TABLE arch (c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)
        return db

    def test_restart_under_jitter_matches_fault_free_run(self):
        from repro.faults import FaultInjector

        def run(injector):
            db = self.pipeline(injector)
            db.insert_stream("s", self.JITTERED)
            db.advance_streams(400.0)
            return db

        injector = FaultInjector()
        # two consecutive poison windows force a supervised restart;
        # recovery replays the tail, so the archive converges anyway
        injector.arm("cq.window", after=1, count=2)
        faulted = run(injector)
        reference = run(None)
        assert sorted(faulted.table_rows("arch")) \
            == sorted(reference.table_rows("arch"))
        entry = faulted.supervisor.entry_for(
            faulted.runtime.cqs()["derived:agg"])
        assert entry.restarts == 1

    def test_no_double_counting_across_restart(self):
        from repro.faults import FaultInjector

        injector = FaultInjector()
        injector.arm("cq.window", after=1, count=2)
        db = self.pipeline(injector)
        db.insert_stream("s", self.JITTERED)
        db.advance_streams(400.0)
        stream = db.get_stream("s")
        counted = sum(c for c, _ts in db.table_rows("arch"))
        accepted = stream.tuples_in - stream.tuples_dropped
        assert counted == accepted
        closes = [ts for _c, ts in db.table_rows("arch")]
        assert len(closes) == len(set(closes))

    def test_late_tuple_after_restart_still_dropped(self):
        from repro.faults import FaultInjector

        injector = FaultInjector()
        injector.arm("cq.window", after=1, count=2)
        db = self.pipeline(injector, policy="drop")
        db.insert_stream("s", self.JITTERED)
        db.advance_streams(400.0)
        dropped_before = db.get_stream("s").tuples_dropped
        # far beyond slack: the disorder policy applies, restart or not
        assert db.insert_stream("s", [(99, 10.0)]) == 0
        assert db.get_stream("s").tuples_dropped == dropped_before + 1

    def test_late_tuple_after_restart_still_raises(self):
        from repro.faults import FaultInjector

        injector = FaultInjector()
        injector.arm("cq.window", after=1, count=2)
        db = self.pipeline(injector, policy="raise")
        events = [e for e in self.JITTERED]
        db.insert_stream("s", events)
        db.advance_streams(400.0)
        # disorder violations are an *inserter* error, not a subscriber
        # fault: supervision must not swallow them
        with pytest.raises(OutOfOrderError):
            db.insert_stream("s", [(99, 10.0)])
