"""Tests for the repro_* system views."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        CREATE STREAM s (k varchar(10), ts timestamp CQTIME USER);
        CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
            FROM s <VISIBLE '1 minute'> GROUP BY k;
        CREATE TABLE arch (k varchar(10), c bigint, ts timestamp);
        CREATE CHANNEL ch FROM agg INTO arch APPEND;
        CREATE INDEX arch_k ON arch (k);
    """)
    database.insert_stream("s", [("a", 5.0), ("b", 6.0)])
    database.advance_streams(60.0)
    return database


class TestSystemViews:
    def test_streams_view(self, db):
        rows = db.query("SELECT name, kind, tuples FROM repro_streams "
                        "ORDER BY name").rows
        assert ("agg", "derived", 2) in rows
        assert ("s", "base", 2) in rows

    def test_channels_view(self, db):
        row = db.query("SELECT source, target, mode, rows_written "
                       "FROM repro_channels").rows[0]
        assert row == ("agg", "arch", "append", 2)

    def test_tables_view(self, db):
        rows = dict((name, slots) for name, _p, slots, _i in
                    db.query("SELECT * FROM repro_tables").rows)
        assert rows["arch"] == 2

    def test_indexes_view(self, db):
        row = db.query("SELECT name, table_name, entries "
                       "FROM repro_indexes").rows[0]
        assert row == ("arch_k", "arch", 2)

    def test_cqs_view(self, db):
        rows = db.query("SELECT name, windows FROM repro_cqs").rows
        assert ("derived:agg", 1) in rows

    def test_io_view_moves(self, db):
        before = db.query("SELECT pages_written FROM repro_io").scalar()
        db.insert_table("arch", [("x", 1, 0.0)] * 500)
        db.storage.pool.flush()
        after = db.query("SELECT pages_written FROM repro_io").scalar()
        assert after > before

    def test_views_are_queryable_like_tables(self, db):
        # joins, filters, aggregates all work over system views
        result = db.query(
            "SELECT count(*) FROM repro_streams WHERE kind = 'base'")
        assert result.scalar() == 1

    def test_system_names_reserved(self, db):
        from repro.errors import DuplicateObjectError
        with pytest.raises(DuplicateObjectError):
            db.execute("CREATE TABLE repro_streams (x integer)")

    def test_stats_view_empty_until_analyze(self, db):
        assert db.query("SELECT count(*) FROM repro_stats").scalar() == 0
        db.execute("ANALYZE arch")
        assert db.query("SELECT count(*) FROM repro_stats").scalar() == 3

    def test_dropping_objects_updates_views(self, db):
        db.execute("DROP CHANNEL ch")
        assert db.query("SELECT count(*) FROM repro_channels").scalar() == 0
