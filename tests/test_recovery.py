"""Tests for CQ recovery: checkpointing vs rebuild-from-active-tables.

The crash model: the CQ (runtime state) dies; tables, the WAL and the
stream's retained tail survive.  Both strategies must resume producing
exactly the windows an uninterrupted run would have produced.
"""

import pytest

from repro import Database
from repro.errors import RecoveryError
from repro.streaming.cq import ContinuousQuery
from repro.streaming.recovery import (
    CheckpointManager,
    capture_window_state,
    recover_from_active_table,
    restore_window_state,
)
from repro.sql import parse_statement

CQ_SQL = ("SELECT url, count(*) scnt, cq_close(*) FROM clicks "
          "<VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url")


def make_db():
    db = Database(stream_retention=3600.0)
    db.execute("CREATE STREAM clicks (url varchar(100), "
               "ts timestamp CQTIME USER, ip varchar(20))")
    return db


def events(start_minute, end_minute):
    out = []
    for minute in range(start_minute, end_minute):
        out.append((f"/p{minute % 2}", minute * 60.0 + 5, "x"))
        out.append(("/p0", minute * 60.0 + 30, "x"))
    return out


def run_uninterrupted(total_minutes=8):
    """Reference output: the same workload with no crash."""
    db = make_db()
    sub = db.subscribe(CQ_SQL)
    db.insert_stream("clicks", events(0, total_minutes))
    db.advance_streams(total_minutes * 60.0)
    return [(w.close_time, sorted(w.rows)) for w in sub.poll()]


class TestCaptureRestore:
    def test_roundtrip(self):
        db = make_db()
        cq = db.runtime.create_cq(parse_statement(CQ_SQL))
        db.insert_stream("clicks", events(0, 3))
        state = capture_window_state(cq)
        assert state["buffer"]
        fresh = ContinuousQuery("copy", parse_statement(CQ_SQL),
                                db.catalog, db.txn_manager)
        restore_window_state(fresh, state)
        assert fresh._window_op._buffer == cq._window_op._buffer
        assert fresh._window_op._base == cq._window_op._base


class TestCheckpointRecovery:
    def crash_and_recover(self, crash_minute=4, total_minutes=8, every=1):
        db = make_db()
        cq = db.runtime.create_cq(parse_statement(CQ_SQL), name="reporting")
        outputs = []
        cq.add_sink(lambda rows, o, c: outputs.append((c, sorted(rows))))
        manager = CheckpointManager(cq, db.storage.wal, every_windows=every)

        db.insert_stream("clicks", events(0, crash_minute))
        db.advance_streams(crash_minute * 60.0)
        # crash: kill the CQ, lose its runtime state
        db.runtime.stop_cq(cq)

        # checkpoints are keyed by CQ name: the restarted CQ reuses it
        new_cq = ContinuousQuery("reporting", parse_statement(CQ_SQL),
                                 db.catalog, db.txn_manager)
        new_cq.add_sink(lambda rows, o, c: outputs.append((c, sorted(rows))))
        CheckpointManager.recover(new_cq, db.storage.wal)
        new_cq.attach()

        db.insert_stream("clicks", events(crash_minute, total_minutes))
        db.advance_streams(total_minutes * 60.0)
        return outputs, manager

    def test_output_matches_uninterrupted_run(self):
        outputs, _manager = self.crash_and_recover()
        assert outputs == run_uninterrupted()

    def test_no_duplicate_windows(self):
        outputs, _manager = self.crash_and_recover()
        closes = [c for c, _rows in outputs]
        assert len(closes) == len(set(closes))

    def test_checkpoints_pay_wal_io(self):
        db = make_db()
        cq = db.runtime.create_cq(parse_statement(CQ_SQL))
        CheckpointManager(cq, db.storage.wal, every_windows=1)
        before = db.io_snapshot()
        db.insert_stream("clicks", events(0, 5))
        db.advance_streams(300.0)
        delta = db.io_snapshot() - before
        assert delta.pages_written >= 4  # one flush per window close

    def test_every_n_checkpoints_less_often(self):
        db = make_db()
        cq = db.runtime.create_cq(parse_statement(CQ_SQL))
        manager = CheckpointManager(cq, db.storage.wal, every_windows=3)
        db.insert_stream("clicks", events(0, 7))
        db.advance_streams(420.0)
        assert manager.checkpoints_taken == 2

    def test_recover_without_checkpoint_raises(self):
        db = make_db()
        cq = ContinuousQuery("never_seen", parse_statement(CQ_SQL),
                             db.catalog, db.txn_manager)
        with pytest.raises(RecoveryError):
            CheckpointManager.recover(cq, db.storage.wal)

    def test_sparse_checkpoints_are_at_least_once(self):
        """With checkpoint gaps, windows emitted after the last checkpoint
        are re-emitted on recovery — at-least-once, never lossy."""
        outputs, _manager = self.crash_and_recover(every=3)
        reference = run_uninterrupted()
        # no window is lost, and duplicates are exact repeats
        deduped = []
        for item in outputs:
            if item not in deduped:
                deduped.append(item)
        assert deduped == reference
        for item in outputs:
            assert item in reference


class TestActiveTableRecovery:
    def build_pipeline(self, db):
        db.execute("CREATE TABLE archive (url varchar(100), scnt integer, "
                   "stime timestamp)")
        cq = db.runtime.create_cq(parse_statement(CQ_SQL))
        table = db.get_table("archive")

        def archive_sink(rows, open_time, close_time):
            txn = db.txn_manager.begin()
            for row in rows:
                table.insert(txn, row)
            txn.commit()
        cq.add_sink(archive_sink)
        return cq, table, archive_sink

    def test_output_matches_uninterrupted_run(self):
        total, crash = 8, 4
        db = make_db()
        cq, table, archive_sink = self.build_pipeline(db)
        db.insert_stream("clicks", events(0, crash))
        db.advance_streams(crash * 60.0)
        db.runtime.stop_cq(cq)  # crash

        new_cq = ContinuousQuery("recovered", parse_statement(CQ_SQL),
                                 db.catalog, db.txn_manager)
        new_cq.add_sink(archive_sink)
        replay_from = recover_from_active_table(
            new_cq, table, db.txn_manager, "stime")
        assert replay_from is not None
        new_cq.attach()
        db.insert_stream("clicks", events(crash, total))
        db.advance_streams(total * 60.0)

        # compare archives: crashed+recovered vs uninterrupted
        reference_db = make_db()
        _cq2, table2, _sink2 = self.build_pipeline(reference_db)
        reference_db.insert_stream("clicks", events(0, total))
        reference_db.advance_streams(total * 60.0)

        recovered = sorted(db.table_rows("archive"))
        reference = sorted(reference_db.table_rows("archive"))
        assert recovered == reference

    def test_empty_archive_means_cold_start(self):
        db = make_db()
        _cq, table, _sink = self.build_pipeline(db)
        fresh = ContinuousQuery("fresh", parse_statement(CQ_SQL),
                                db.catalog, db.txn_manager)
        assert recover_from_active_table(
            fresh, table, db.txn_manager, "stime") is None

    def test_no_steady_state_overhead(self):
        """The paper's key claim: this strategy costs nothing during
        normal operation beyond what the channel already writes."""
        db_plain = make_db()
        cq_plain = db_plain.runtime.create_cq(parse_statement(CQ_SQL))
        db_ckpt = make_db()
        cq_ckpt = db_ckpt.runtime.create_cq(parse_statement(CQ_SQL))
        CheckpointManager(cq_ckpt, db_ckpt.storage.wal, every_windows=1)

        for db in (db_plain, db_ckpt):
            before = db.io_snapshot()
            db.insert_stream("clicks", events(0, 6))
            db.advance_streams(360.0)
            db._steady_io = db.io_snapshot() - before

        assert db_plain._steady_io.pages_written == 0
        assert db_ckpt._steady_io.pages_written > 0

    def test_supervised_restart_matches_uninterrupted_run(self):
        """A supervisor-driven restart (poison windows, then recovery from
        the channel's active table) must converge to the same archive as a
        fault-free run: failed windows are re-derived by the replay, and
        nothing is archived twice."""
        from repro.faults import FaultInjector

        def run(injector):
            db = Database(supervised=injector is not None,
                          stream_retention=3600.0, fault_injector=injector)
            db.execute("CREATE STREAM clicks (url varchar(100), "
                       "ts timestamp CQTIME USER, ip varchar(20))")
            db.execute(f"CREATE STREAM agg AS {CQ_SQL}")
            db.execute("CREATE TABLE archive (url varchar(100), "
                       "scnt integer, stime timestamp)")
            db.execute("CREATE CHANNEL ch FROM agg INTO archive APPEND")
            db.insert_stream("clicks", events(0, 8))
            db.advance_streams(480.0)
            return db

        injector = FaultInjector()
        injector.arm("cq.window", after=2, count=2)
        faulted = run(injector)
        reference = run(None)
        assert sorted(faulted.table_rows("archive")) \
            == sorted(reference.table_rows("archive"))
        # every window close appears the same number of times as in the
        # reference (no double-archival from the replay)
        from collections import Counter
        assert Counter(r[2] for r in faulted.table_rows("archive")) \
            == Counter(r[2] for r in reference.table_rows("archive"))
        entry = faulted.supervisor.entry_for(
            faulted.runtime.cqs()["derived:agg"])
        assert entry.restarts == 1
        # the two poison windows were quarantined before being re-derived
        kinds = [row[2] for row in faulted.supervisor.dead_letter_rows()]
        assert kinds.count("poison-window") >= 2

    def test_insufficient_retention_detected(self):
        db = Database(stream_retention=30.0)  # too short for a 2min window
        db.execute("CREATE STREAM clicks (url varchar(100), "
                   "ts timestamp CQTIME USER, ip varchar(20))")
        db.execute("CREATE TABLE archive (url varchar(100), scnt integer, "
                   "stime timestamp)")
        cq = db.runtime.create_cq(parse_statement(CQ_SQL))
        table = db.get_table("archive")
        txn = db.txn_manager.begin()
        table.insert(txn, ("/p0", 1, 240.0))
        txn.commit()
        db.insert_stream("clicks", events(0, 8))
        db.runtime.stop_cq(cq)
        fresh = ContinuousQuery("fresh", parse_statement(CQ_SQL),
                                db.catalog, db.txn_manager)
        with pytest.raises(RecoveryError):
            recover_from_active_table(fresh, table, db.txn_manager, "stime")

    def test_retention_gap_error_names_missing_range(self):
        """When the stream's shed-oldest retention has already dropped
        the tail the in-flight window needs, recovery must fail loudly
        and say exactly which range is missing — silently rebuilding a
        short window would archive wrong aggregates forever."""
        db = Database(stream_retention=30.0)
        db.execute("CREATE STREAM clicks (url varchar(100), "
                   "ts timestamp CQTIME USER, ip varchar(20))")
        db.execute("CREATE TABLE archive (url varchar(100), scnt integer, "
                   "stime timestamp)")
        cq = db.runtime.create_cq(parse_statement(CQ_SQL))
        table = db.get_table("archive")
        txn = db.txn_manager.begin()
        table.insert(txn, ("/p0", 1, 240.0))   # archive high-water: 240
        txn.commit()
        db.insert_stream("clicks", events(0, 8))
        db.runtime.stop_cq(cq)
        stream = db.catalog.get_relation("clicks")
        # the tail the next window needs starts at 240 + 60 - 120 = 180,
        # but shed-oldest has already evicted everything before horizon
        needed = 180.0
        assert stream.replay_horizon() > needed
        fresh = ContinuousQuery("fresh", parse_statement(CQ_SQL),
                                db.catalog, db.txn_manager)
        with pytest.raises(RecoveryError) as info:
            recover_from_active_table(fresh, table, db.txn_manager, "stime")
        message = str(info.value)
        assert "clicks" in message
        assert f"need {needed}" in message
        assert f"have {stream.replay_horizon()}" in message


class TestRecordsFromEdges:
    """Direct contract tests for WriteAheadLog.records_from/head_lsn.

    These edges back the replication attach path: an empty log and a
    resume point past the head both mean "nothing to ship yet", never
    an error; a resume point inside a torn record resumes at the
    truncated (durable) head.
    """

    def test_empty_log(self):
        from repro.storage.wal import WriteAheadLog
        wal = WriteAheadLog()
        assert wal.head_lsn == 0
        assert wal.records_from(1) == []
        assert wal.records_from(100) == []

    def test_from_lsn_past_head_returns_nothing(self):
        from repro.storage.wal import WriteAheadLog
        wal = WriteAheadLog()
        for i in range(3):
            wal.append(1, "insert", "t", rid=(0, i), after=(i,))
        assert wal.head_lsn == 3
        assert wal.records_from(4) == []
        assert wal.records_from(99) == []
        assert [r.lsn for r in wal.records_from(3)] == [3]

    def test_from_lsn_clamps_below_one(self):
        from repro.storage.wal import WriteAheadLog
        wal = WriteAheadLog()
        wal.append(1, "insert", "t", rid=(0, 0), after=(1,))
        # 0 and negatives mean "from the beginning", not a gap error
        assert [r.lsn for r in wal.records_from(0)] == [1]
        assert [r.lsn for r in wal.records_from(-5)] == [1]

    def test_from_lsn_mid_torn_record(self, tmp_path):
        """A torn tail truncates the durable log; a resume point at or
        past the torn record finds nothing rather than garbage."""
        from repro.faults import FaultInjector
        from repro.storage.wal import WriteAheadLog
        path = str(tmp_path / "wal.jsonl")
        faults = FaultInjector(7)
        wal = WriteAheadLog(faults=faults, path=path)
        wal.append(1, "insert", "t", rid=(0, 1), after=(1, "a"))
        wal.append(1, "insert", "t", rid=(0, 2), after=(2, "b"))
        wal.flush()
        wal.append(2, "insert", "t", rid=(0, 3), after=(3, "c"))
        faults.arm("wal.torn_write", probability=1.0, count=1)
        wal.flush()                      # tears the lsn-3 record
        wal.close()

        reloaded = WriteAheadLog(path=path)
        assert reloaded.head_lsn == 2    # truncate-at-first-corrupt
        assert reloaded.records_from(3) == []
        assert [r.lsn for r in reloaded.records_from(2)] == [2]
        assert [r.lsn for r in reloaded.records_from(1)] == [1, 2]
