"""Property tests for the admission-control invariants.

Two promises are load-bearing enough to deserve hypothesis rather than
examples:

* a token bucket **never over-admits**: across any interleaving of
  clock advances and take attempts, the rows admitted are bounded by
  ``burst + rate * elapsed`` plus at most one batch of overdraft
  (the full-bucket escape hatch for oversized batches);
* idempotent ingest is **exactly-once**: for any sequence of batch
  attempts (fresh, replayed, reordered) each ``(stream, sender, seq)``
  is applied at most once — including when the engine is killed and
  rebuilt from its WAL mid-sequence.
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.admission import DedupIndex, TokenBucket
from repro.clock import ManualClock
from repro.replication import open_database

# an operation stream for the bucket: either time passes or a take
_advance = st.tuples(st.just("advance"),
                     st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False, allow_infinity=False))
_take = st.tuples(st.just("take"), st.integers(min_value=1, max_value=40))


class TestTokenBucketProperties:
    @given(rate=st.floats(min_value=0.5, max_value=100.0),
           burst=st.floats(min_value=1.0, max_value=50.0),
           ops=st.lists(st.one_of(_advance, _take), max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_never_over_admits(self, rate, burst, ops):
        clk = ManualClock()
        bucket = TokenBucket(rate, burst, clock=clk)
        elapsed = 0.0
        admitted = 0
        max_batch = 0
        for op, value in ops:
            if op == "advance":
                clk.advance(value)
                elapsed += value
            else:
                if bucket.try_take(value) == 0.0:
                    admitted += value
                    max_batch = max(max_batch, value)
        # the long-run bound: initial burst + refill, plus at most one
        # batch of overdraft from the full-bucket rule
        assert admitted <= burst + rate * elapsed + max_batch + 1e-6

    @given(rate=st.floats(min_value=0.5, max_value=100.0),
           burst=st.floats(min_value=1.0, max_value=50.0),
           ops=st.lists(_take, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_wait_hint_is_sufficient(self, rate, burst, ops):
        """Sleeping exactly the returned wait always gets the batch in."""
        clk = ManualClock()
        bucket = TokenBucket(rate, burst, clock=clk)
        for _op, n in ops:
            wait = bucket.try_take(n)
            if wait > 0.0:
                clk.advance(wait + 1e-9)
                assert bucket.try_take(n) == 0.0


class TestDedupProperties:
    @given(window=st.integers(min_value=4, max_value=64),
           attempts=st.lists(
               st.tuples(st.sampled_from(["c1", "c2"]),
                         st.integers(min_value=1, max_value=100)),
               max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_each_seq_applied_at_most_once(self, window, attempts):
        idx = DedupIndex(window=window)
        applied = set()
        for sender, seq in attempts:
            if not idx.seen("s", sender, seq):
                # "apply" the batch, then record it — exactly the
                # engine's order in Database.ingest_batch
                assert (sender, seq) not in applied, \
                    "a sequence number was admitted twice"
                applied.add((sender, seq))
                idx.record("s", sender, seq)


class TestReplayAfterRestartProperties:
    @given(batches=st.lists(
        st.integers(min_value=1, max_value=30),
        min_size=1, max_size=12, unique=True),
        cut=st.integers(min_value=0, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_resend_after_crash_is_exactly_once(self, tmp_path_factory,
                                                batches, cut):
        """Kill the engine after ``cut`` batches, rebuild from the WAL,
        re-send *everything*: every row lands exactly once."""
        tmp = tmp_path_factory.mktemp("dedup-replay")
        wal_path = str(tmp / "wal.jsonl")
        db = Database(wal_path=wal_path, stream_retention=3600.0)
        db.execute(
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        clock = 0.0
        for seq in batches[:cut]:
            clock += 1.0
            db.ingest_batch("s", [(seq, clock)], sender="c1", seq=seq)
        db.close()  # the WAL is all that survives

        recovered = open_database(wal_path=wal_path,
                                  stream_retention=3600.0)
        try:
            for seq in batches:  # full replay, prefix included
                clock += 1.0
                recovered.ingest_batch("s", [(seq, clock)],
                                       sender="c1", seq=seq)
            tuples = recovered.query(
                "SELECT tuples FROM repro_streams").scalar()
            assert tuples == len(batches)
        finally:
            recovered.close()
