"""Event-time semantics: watermarks, bounded lateness, retractions.

The acceptance bar for the subsystem is *convergence*: a stream fed
shuffled-within-bound input must end up with exactly the same window
results as the ordered run — finals plus retract/correct pairs have to
land downstream state (REPLACE tables, subscriptions) on the ordered
answer.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.errors import ParseError, PlanningError, StreamingError
from repro.eventtime import WatermarkTracker, late_reason
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.render import render_statement
from repro.workloads import OutOfOrderEvents


class TestWatermarkTracker:
    def test_observation_chases_bound(self):
        t = WatermarkTracker(5.0)
        assert t.observe(10.0) == 5.0
        assert t.watermark == 5.0
        assert t.observe(20.0) == 15.0

    def test_monotone_under_reordering(self):
        t = WatermarkTracker(5.0)
        t.observe(20.0)
        assert t.observe(12.0) is None  # older row: no regression
        assert t.watermark == 15.0

    def test_injection_and_regression_ignored(self):
        t = WatermarkTracker(5.0)
        assert t.inject(30.0) == 30.0
        assert t.inject(10.0) is None
        assert t.watermark == 30.0
        assert t.injections == 2

    def test_late_rows_counted(self):
        t = WatermarkTracker(0.0)
        t.observe(10.0)
        t.observe(3.0)
        t.observe(4.0)
        assert t.late_rows == 2
        assert t.is_late(9.9) and not t.is_late(10.0)

    def test_lag(self):
        t = WatermarkTracker(5.0)
        assert t.lag() == 0.0
        t.observe(10.0)
        assert t.lag() == 5.0
        t.inject(10.0)
        assert t.lag() == 0.0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            WatermarkTracker(-1.0)


class TestOutOfOrderEvents:
    def test_deterministic_from_seed(self):
        times = [float(i) for i in range(50)]
        a = OutOfOrderEvents(5.0, seed=7).arrival_order(times)
        b = OutOfOrderEvents(5.0, seed=7).arrival_order(times)
        assert a == b
        assert sorted(a) == times

    def test_bounded_shuffle_is_never_late(self):
        """delay <= bound guarantees no event lands below a watermark
        with the same out-of-orderness bound."""
        times = [i * 0.5 for i in range(200)]
        shuffled = OutOfOrderEvents(4.0, seed=3).arrival_order(times)
        assert shuffled != times  # it did reorder something
        tracker = WatermarkTracker(4.0)
        for event in shuffled:
            assert not tracker.is_late(event)
            tracker.observe(event)

    def test_stragglers_exceed_bound(self):
        gen = OutOfOrderEvents(2.0, straggler_prob=1.0, tail=1.0, seed=1)
        assert all(gen.delay() >= 2.0 for _ in range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            OutOfOrderEvents(-1.0)
        with pytest.raises(ValueError):
            OutOfOrderEvents(1.0, straggler_prob=1.5)
        with pytest.raises(ValueError):
            OutOfOrderEvents(1.0, tail=0.0)


class TestEmitGrammar:
    def test_emit_on_watermark(self):
        stmt = parse_statement(
            "SELECT count(*) FROM s <VISIBLE '10 seconds'> "
            "EMIT ON WATERMARK")
        assert stmt.emit == ast.EmitClause("watermark")

    def test_emit_with_lateness_policy(self):
        stmt = parse_statement(
            "SELECT count(*) FROM s <VISIBLE '10 seconds'> "
            "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT")
        assert stmt.emit.lateness == 30.0
        assert stmt.emit.late_policy == "retract"

    def test_emit_dead_letter(self):
        stmt = parse_statement(
            "SELECT count(*) FROM s <VISIBLE '10 seconds'> "
            "EMIT ON CHANGE ALLOW LATENESS '5 seconds' DEAD LETTER")
        assert stmt.emit.mode == "change"
        assert stmt.emit.late_policy == "dead_letter"

    def test_emit_every(self):
        stmt = parse_statement(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> "
            "EMIT EVERY '10 seconds'")
        assert stmt.emit == ast.EmitClause("every", every=10.0)

    def test_emit_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT count(*) FROM s <VISIBLE '1 minute'> "
                            "EMIT SOMETIMES")
        with pytest.raises(ParseError):
            parse_statement("SELECT count(*) FROM s <VISIBLE '1 minute'> "
                            "EMIT ON WATERMARK ALLOW LATENESS '5 s' MAYBE")

    def test_create_stream_watermark(self):
        stmt = parse_statement(
            "CREATE STREAM s (v integer, ts timestamp CQTIME USER) "
            "WATERMARK '5 seconds'")
        assert stmt.watermark_bound == 5.0

    @pytest.mark.parametrize("sql", [
        "SELECT count(*) FROM s <VISIBLE '10 seconds'> EMIT ON WATERMARK",
        "SELECT count(*) FROM s <VISIBLE '10 seconds'> EMIT ON CHANGE",
        "SELECT count(*) FROM s <VISIBLE '1 minute'> EMIT EVERY '5 seconds'",
        "SELECT url, count(*) FROM s <VISIBLE '10 seconds'> GROUP BY url "
        "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT",
        "SELECT count(*) FROM s <VISIBLE '10 seconds'> "
        "EMIT ON WATERMARK ALLOW LATENESS '1 minute' DEAD LETTER",
    ])
    def test_render_round_trip(self, sql):
        parsed = parse_statement(sql)
        assert parse_statement(render_statement(parsed)) == parsed


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE STREAM clicks (url varchar(100), "
               "ts timestamp CQTIME USER) WATERMARK '5 seconds'")
    return db


class TestEventTimeDDL:
    def test_watermark_stream_has_tracker(self):
        db = make_db()
        stream = db.runtime.get_stream("clicks")
        assert stream.watermark_bound == 5.0
        assert stream.tracker is not None

    def test_slack_and_watermark_exclusive(self):
        from repro.streaming.streams import BaseStream
        db = make_db()
        schema = db.runtime.get_stream("clicks").schema
        with pytest.raises(StreamingError):
            BaseStream("s", schema, slack=2.0, watermark_bound=5.0)

    def test_engine_default_slack_yields_to_watermark(self):
        # the engine-wide slack default must not block event-time DDL:
        # the stream simply opts out of the reorder buffer
        db = Database(stream_slack=2.0)
        db.execute("CREATE STREAM s (v integer, ts timestamp "
                   "CQTIME USER) WATERMARK '5 seconds'")
        assert db.runtime.get_stream("s").slack == 0.0

    def test_system_time_stream_rejected(self):
        db = Database()
        with pytest.raises(StreamingError):
            db.execute("CREATE STREAM s (v integer, ts timestamp "
                       "CQTIME SYSTEM) WATERMARK '5 seconds'")

    def test_emit_requires_event_time_stream(self):
        db = Database()
        db.execute("CREATE STREAM plain (v integer, "
                   "ts timestamp CQTIME USER)")
        with pytest.raises(PlanningError):
            db.subscribe("SELECT count(*) FROM plain "
                         "<VISIBLE '10 seconds'> EMIT ON WATERMARK")

    def test_emit_requires_window(self):
        db = make_db()
        with pytest.raises(PlanningError):
            db.subscribe("SELECT url FROM clicks EMIT ON WATERMARK")


class TestEventTimeWindows:
    def test_windows_close_on_watermark_not_arrival(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'>")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 12.0)])
        # watermark = 12 - 5 = 7: boundary 10 not passed, nothing closes
        assert sub.poll() == []
        db.insert_stream("clicks", [("/c", 16.0)])
        # watermark = 11: [0, 10) closes with the two rows below 10
        windows = sub.poll()
        assert [(w.close_time, w.rows) for w in windows] == [(10.0, [(1,)])]

    def test_out_of_order_within_bound_assigns_by_event_time(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'>")
        # reordered arrivals, all within the 5 s bound
        db.insert_stream("clicks", [
            ("/a", 4.0), ("/b", 8.0), ("/c", 6.0), ("/d", 11.0),
            ("/e", 9.0), ("/f", 17.0)])
        db.flush_streams()
        counts = {w.close_time: w.rows for w in sub.poll()
                  if w.kind == "window"}
        assert counts[10.0] == [(4,)]
        assert counts[20.0] == [(2,)]

    def test_reordered_first_row_does_not_skip_first_window(self):
        # the stream's very first arrival is from the *second* window;
        # the grid must rewind when the older on-time row shows up
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'>")
        db.insert_stream("clicks", [("/b", 12.0), ("/a", 9.0)])
        db.insert_stream("clicks", [("/c", 16.0)])
        windows = sub.poll()
        assert [(w.close_time, w.rows) for w in windows] == [(10.0, [(1,)])]

    def test_explicit_injection_closes_windows(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'>")
        db.insert_stream("clicks", [("/a", 3.0)])
        assert sub.poll() == []
        final = db.inject_watermark("clicks", 10.0)
        assert final == 10.0
        windows = sub.poll()
        assert [(w.close_time, w.rows) for w in windows] == [(10.0, [(1,)])]

    def test_ingest_ack_carries_watermark(self):
        db = make_db()
        counts = db.ingest_batch("clicks", [("/a", 30.0)])
        assert counts["watermark"] == 25.0
        counts = db.ingest_batch("clicks", [("/b", 31.0)], watermark=40.0)
        assert counts["watermark"] == 40.0

    def test_subscription_windows_carry_watermark(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'>")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 16.0)])
        (window,) = sub.poll()
        assert window.watermark == 11.0

    def test_emit_on_change_emits_early(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'> EMIT ON CHANGE")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 4.0)])
        early = [w for w in sub.poll() if w.kind == "early"]
        assert [w.rows for w in early] == [[(1,)], [(2,)]]
        db.insert_stream("clicks", [("/c", 16.0)])
        kinds = [w.kind for w in sub.poll()]
        assert "window" in kinds  # the final still arrives on watermark

    def test_emit_every_periodic(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '100 seconds'> EMIT EVERY '10 seconds'")
        db.insert_stream("clicks",
                         [("/a", float(t)) for t in (1, 2, 3, 12, 13, 24)])
        early = [w for w in sub.poll() if w.kind == "early"]
        # one speculative emission per elapsed period, not per row
        assert len(early) == 3

    def test_explain_shows_emit_and_policy(self):
        db = make_db()
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE '10 seconds'> "
            "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT")
        text = sub.cq.explain()
        assert text.startswith("Emit: ON WATERMARK")
        assert "policy retract" in text
        assert "watermark bound 5.0" in text

    def test_explain_statement_round_trip(self):
        db = make_db()
        result = db.query(
            "EXPLAIN SELECT count(*) FROM clicks <VISIBLE '10 seconds'> "
            "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT")
        text = "\n".join(r[0] for r in result.rows)
        assert "Emit: ON WATERMARK" in text


class TestLatenessPolicies:
    def test_drop_policy_counts_and_discards(self):
        db = make_db()
        sub = db.subscribe("SELECT count(*) FROM clicks "
                           "<VISIBLE '10 seconds'> EMIT ON WATERMARK "
                           "ALLOW LATENESS '0 seconds' DROP")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 16.0)])
        db.insert_stream("clicks", [("/late", 5.0)])  # watermark is 11
        db.insert_stream("clicks", [("/c", 26.0)])
        windows = [w for w in sub.poll() if w.kind == "window"]
        # the late row never lands in any window
        assert windows[0].rows == [(1,)]
        tracker = db.runtime.get_stream("clicks").tracker
        assert tracker.late_rows == 1

    def test_dead_letter_policy_structured_reason(self):
        db = make_db(supervised=True)
        db.subscribe("SELECT count(*) FROM clicks "
                     "<VISIBLE '10 seconds'> EMIT ON WATERMARK "
                     "ALLOW LATENESS '0 seconds' DEAD LETTER")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 16.0)])
        db.insert_stream("clicks", [("/late", 5.0)])
        letters = [l for l in db.supervisor.dead_letter_log
                   if l.kind == "late-event"]
        assert len(letters) == 1
        letter = letters[0]
        assert letter.rows == [("/late", 5.0)]
        # structured key=value shape: kind, event ts, watermark at drop
        assert "late_event:" in letter.reason
        assert "event_time=5.0" in letter.reason
        assert "watermark=11.0" in letter.reason
        assert "lateness=6.0" in letter.reason

    def test_retract_expired_goes_to_dead_letters(self):
        db = make_db(supervised=True)
        db.subscribe("SELECT count(*) FROM clicks "
                     "<VISIBLE '10 seconds'> EMIT ON WATERMARK "
                     "ALLOW LATENESS '2 seconds' RETRACT")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 30.0)])
        db.insert_stream("clicks", [("/expired", 5.0)])  # 20 s late
        letters = [l for l in db.supervisor.dead_letter_log
                   if l.kind == "late-event"]
        assert len(letters) == 1
        assert "late_event_expired:" in letters[0].reason

    def test_retract_emits_pair_and_converges(self):
        db = make_db()
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE '10 seconds'> "
            "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT")
        db.insert_stream("clicks", [("/a", 3.0), ("/b", 16.0)])
        (final,) = sub.poll()
        assert (final.kind, final.close_time, final.rows) == \
            ("window", 10.0, [(1,)])
        db.insert_stream("clicks", [("/late", 5.0)])  # in bound: 6 s late
        pair = sub.poll()
        assert [(w.kind, w.close_time, w.rows) for w in pair] == [
            ("retract", 10.0, [(1,)]),
            ("correct", 10.0, [(2,)]),
        ]

    def test_late_reason_helper(self):
        assert late_reason(5.0, 11.0) == \
            "late_event: event_time=5.0 watermark=11.0 lateness=6.0"
        assert late_reason(5.0, 11.0, expired=True).startswith(
            "late_event_expired:")


class TestChannelConvergence:
    SETUP = [
        "CREATE STREAM clicks (url varchar(100), ts timestamp CQTIME USER) "
        "WATERMARK '5 seconds'",
        "CREATE STREAM counts AS SELECT url, count(*) c FROM clicks "
        "<VISIBLE '10 seconds'> GROUP BY url "
        "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT",
    ]

    def _run(self, mode: str, events):
        db = Database()
        for sql in self.SETUP:
            db.execute(sql)
        db.execute("CREATE TABLE sink_t (url varchar(100), c integer)")
        db.execute(f"CREATE CHANNEL ch FROM counts INTO sink_t {mode}")
        db.insert_stream("clicks", events)
        db.flush_streams()
        rows = sorted(db.query("SELECT url, c FROM sink_t").rows)
        return rows

    ORDERED = [("/a", 1.0), ("/b", 2.0), ("/a", 8.0), ("/b", 12.0),
               ("/a", 15.0), ("/b", 24.0), ("/a", 33.0)]

    def test_replace_converges_under_shuffle(self):
        shuffled = [("/a", 8.0), ("/a", 1.0), ("/b", 2.0), ("/b", 12.0),
                    ("/a", 15.0), ("/b", 24.0), ("/a", 33.0)]
        assert self._run("REPLACE", shuffled) == \
            self._run("REPLACE", self.ORDERED)

    def test_append_retraction_deletes_and_corrects(self):
        # /late lands after its window closed: the archive must end up
        # with the corrected count, not the stale one plus a duplicate
        late = self.ORDERED + [("/late-window-row", 5.0), ("/z", 40.0)]
        ordered = sorted(late, key=lambda e: e[1])
        assert self._run("APPEND", late) == self._run("APPEND", ordered)

    def test_replace_late_row_beyond_latest_window_is_stale(self):
        # a correction for an old slice must not clobber the newest
        # REPLACE contents
        events = self.ORDERED + [("/old", 5.0)]
        rows = self._run("REPLACE", events)
        assert all(url != "/old" for url, _ in rows)


class TestWatermarksView:
    def test_view_reports_event_and_arrival_streams(self):
        db = make_db()
        db.execute("CREATE STREAM plain (v integer, "
                   "ts timestamp CQTIME USER)")
        db.insert_stream("clicks", [("/a", 10.0), ("/b", 20.0)])
        db.insert_stream("clicks", [("/late", 10.0)])
        rows = {r[0]: r for r in db.query(
            "SELECT * FROM repro_watermarks").rows}
        clicks = rows["clicks"]
        assert clicks[1] == "event"
        assert clicks[2] == 5.0          # bound
        assert float(clicks[3]) == 15.0  # watermark
        assert float(clicks[4]) == 20.0  # max event time
        assert clicks[5] == 5.0          # lag
        assert clicks[6] == 1            # late rows
        plain = rows["plain"]
        assert plain[1] == "arrival"
        assert plain[2] is None

    def test_wal_replay_restores_watermark(self, tmp_path):
        from repro.replication import open_database
        wal = str(tmp_path / "wal.log")
        db = Database(wal_path=wal)
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER) "
                   "WATERMARK '5 seconds'")
        db.insert_stream("s", [(1, 10.0), (2, 30.0)])
        db.inject_watermark("s", 100.0)
        db.close()  # the WAL is all that survives
        db2 = open_database(wal_path=wal)
        stream = db2.runtime.get_stream("s")
        assert stream.watermark == 100.0
        assert stream.tracker.max_event_time == 30.0
        # and it stays monotone: replayed state accepts new data
        db2.insert_stream("s", [(3, 50.0)])
        assert stream.watermark == 100.0


class TestLiveServerConvergence:
    """The acceptance bar, end to end over the wire: a REPLACE active
    table fed shuffled-within-bound input converges to the ordered
    run's final contents under ``retract``, with the retraction pair
    visible to a live subscriber."""

    DDL = [
        "CREATE STREAM clicks (url varchar(100), ts timestamp "
        "CQTIME USER) WATERMARK '5 seconds'",
        "CREATE STREAM counts AS SELECT url, count(*) c FROM clicks "
        "<VISIBLE '10 seconds'> GROUP BY url "
        "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT",
        "CREATE TABLE board (url varchar(100), c integer)",
        "CREATE CHANNEL ch FROM counts INTO board REPLACE",
    ]

    ORDERED = [("/a", 1.0), ("/a", 5.0), ("/b", 8.0), ("/b", 12.0),
               ("/a", 16.0), ("/b", 24.0), ("/a", 33.0)]

    def _run(self, events, watch=False):
        from repro import client
        from repro.server import ServerThread
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            try:
                for sql in self.DDL:
                    conn.execute(sql)
                sub = conn.subscribe("counts") if watch else None
                frames = []
                for row in events:
                    conn.ingest("clicks", [row])
                    if sub is not None:
                        frames.extend(sub.poll(timeout=0.05))
                conn.flush()
                if sub is not None:
                    deadline_polls = 40
                    while deadline_polls > 0:
                        got = sub.poll(timeout=0.1)
                        frames.extend(got)
                        if not got:
                            deadline_polls -= 1
                        else:
                            deadline_polls = 40
                        if any(w.kind == "correct" for w in frames) \
                                and len(frames) >= 4:
                            break
                rows = sorted(conn.query("SELECT url, c FROM board").rows)
                return rows, frames
            finally:
                conn.close()

    def test_replace_table_converges_and_client_sees_retraction(self):
        # the same events, one delivered a full window late (but within
        # the lateness bound): window [0, 10) closes before /b@8 shows
        # up, so the server must retract and correct it live
        shuffled = [("/a", 1.0), ("/a", 5.0), ("/b", 12.0),
                    ("/a", 16.0), ("/b", 8.0), ("/b", 24.0),
                    ("/a", 33.0)]
        reference, _ = self._run(self.ORDERED)
        converged, frames = self._run(shuffled, watch=True)
        assert converged == reference

        kinds = [w.kind for w in frames]
        assert "retract" in kinds and "correct" in kinds
        retract = next(w for w in frames if w.kind == "retract")
        correct = next(w for w in frames if w.kind == "correct")
        # adjacency: the correction directly follows its retraction
        assert kinds.index("correct") == kinds.index("retract") + 1
        assert (retract.open_time, retract.close_time) == \
            (correct.open_time, correct.close_time)
        assert sorted(retract.rows) == [("/a", 2)]
        assert sorted(correct.rows) == [("/a", 2), ("/b", 1)]

    def test_subscription_frames_carry_watermark(self):
        _rows, frames = self._run(self.ORDERED, watch=True)
        finals = [w for w in frames if w.kind == "window"]
        assert finals and all(w.watermark is not None for w in finals)

    def test_remote_ingest_ack_watermark(self):
        from repro import client
        from repro.server import ServerThread
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            try:
                conn.execute(self.DDL[0])
                ack = conn.ingest("clicks", [("/a", 30.0)])
                assert ack.watermark == 25.0
                ack = conn.ingest("clicks", [("/b", 31.0)],
                                  watermark=60.0)
                assert ack.watermark == 60.0
                wm = conn.query("SELECT watermark FROM repro_watermarks "
                                "WHERE stream = 'clicks'").scalar()
                assert float(wm) == 60.0
            finally:
                conn.close()


SHUFFLE_EVENTS = st.lists(
    st.floats(min_value=0.0, max_value=120.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


class TestShuffleProperty:
    @given(times=SHUFFLE_EVENTS, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_shuffled_within_bound_matches_ordered(self, times, seed):
        """The tentpole invariant: any within-bound arrival order
        produces byte-identical final window contents to the ordered
        run (finals corrected by retractions included)."""
        ordered = sorted(times)
        shuffled = OutOfOrderEvents(5.0, seed=seed).arrival_order(ordered)
        assert self._final_windows(shuffled) == \
            self._final_windows(ordered)

    def _final_windows(self, events):
        db = make_db()
        sub = db.subscribe(
            "SELECT url, count(*) c FROM clicks <VISIBLE '10 seconds'> "
            "GROUP BY url EMIT ON WATERMARK "
            "ALLOW LATENESS '1 minute' RETRACT")
        db.insert_stream("clicks", [("/k%d" % (int(t) % 3), t)
                                    for t in events])
        db.flush_streams()
        final = {}
        for w in sub.poll():
            if w.kind == "window" or w.kind == "correct":
                final[w.close_time] = sorted(w.rows)
            elif w.kind == "retract":
                pass
        return repr(sorted(final.items()))
