"""Tests for the fault-injection subsystem: the crashpoint registry, the
seeded injector, and the storage-layer instrumentation (disk, buffer
pool, WAL record checksums and torn-write truncation)."""

import pytest

from repro import Database
from repro.errors import FaultInjected
from repro.faults import (
    CRASHPOINTS,
    FaultInjector,
    crashpoint_names,
    register_crashpoint,
)


class TestRegistry:
    def test_builtin_crashpoints_registered(self):
        for name in ("disk.read_page", "disk.write_page", "wal.torn_write",
                     "buffer.evict", "stream.deliver",
                     "stream.slow_consumer", "cq.window", "channel.write"):
            assert name in CRASHPOINTS

    def test_register_is_idempotent(self):
        before = CRASHPOINTS["cq.window"]
        register_crashpoint("cq.window", "something else")
        assert CRASHPOINTS["cq.window"] == before

    def test_arming_unknown_crashpoint_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("no.such.site")


class TestInjector:
    def test_armed_crashpoint_fires(self):
        injector = FaultInjector()
        injector.arm("cq.window")
        with pytest.raises(FaultInjected) as info:
            injector.check("cq.window", "cq_1")
        assert info.value.crashpoint == "cq.window"
        assert "cq_1" in str(info.value)

    def test_disarmed_crashpoint_is_silent(self):
        injector = FaultInjector()
        injector.check("cq.window")
        assert injector.poll("disk.read_page") is None

    def test_count_limits_fires(self):
        injector = FaultInjector()
        injector.arm("cq.window", count=2)
        fired = sum(1 for _ in range(10) if injector.should("cq.window"))
        assert fired == 2

    def test_after_skips_first_evaluations(self):
        injector = FaultInjector()
        injector.arm("cq.window", after=3)
        results = [injector.should("cq.window") for _ in range(5)]
        assert results == [False, False, False, True, True]

    def test_fixed_seed_is_deterministic(self):
        def schedule(seed):
            injector = FaultInjector(seed=seed)
            injector.arm("stream.deliver", probability=0.3)
            return [injector.should("stream.deliver") for _ in range(200)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_reset_replays_identical_schedule(self):
        injector = FaultInjector(seed=42)
        injector.arm("stream.deliver", probability=0.5)
        first = [injector.should("stream.deliver") for _ in range(100)]
        injector.reset()
        injector.arm("stream.deliver", probability=0.5)
        assert [injector.should("stream.deliver")
                for _ in range(100)] == first

    def test_custom_exception_factory(self):
        injector = FaultInjector()
        injector.arm("disk.read_page", exc_factory=lambda d: OSError(d))
        with pytest.raises(OSError):
            injector.check("disk.read_page", "file 3 page 9")

    def test_stats_rows_cover_all_crashpoints(self):
        injector = FaultInjector()
        injector.arm("cq.window", count=1)
        injector.should("cq.window")
        rows = injector.stats_rows()
        assert [r[0] for r in rows] == crashpoint_names()
        by_name = {r[0]: r for r in rows}
        # exhausted plans report armed=False but keep their counters
        assert by_name["cq.window"][1] is False
        assert by_name["cq.window"][4] == 1
        assert by_name["disk.read_page"][1] is False


class TestStorageInstrumentation:
    def test_disk_read_fault_surfaces_in_query(self):
        injector = FaultInjector()
        db = Database(buffer_pages=4, fault_injector=injector)
        db.execute("CREATE TABLE t (a integer)")
        db.insert_table("t", [(i,) for i in range(500)])
        db.drop_caches()
        injector.arm("disk.read_page", count=1)
        with pytest.raises(FaultInjected):
            db.query("SELECT count(*) FROM t")
        injector.disarm()
        assert db.query("SELECT count(*) FROM t").scalar() == 500

    def test_buffer_eviction_failure_does_not_lose_the_page(self):
        injector = FaultInjector()
        db = Database(buffer_pages=4, fault_injector=injector)
        db.execute("CREATE TABLE t (a integer)")
        db.insert_table("t", [(i,) for i in range(2000)])
        injector.arm("buffer.evict", count=1)
        # enough churn to force dirty-page evictions through the pool
        db.execute("CREATE TABLE u (a integer)")
        try:
            db.insert_table("u", [(i,) for i in range(2000)])
        except FaultInjected:
            pass
        injector.disarm()
        assert db.storage.pool.eviction_failures == 1
        # after the failed eviction both tables remain fully readable
        assert db.query("SELECT count(*) FROM t").scalar() == 2000

    def test_crashpoints_system_view(self):
        injector = FaultInjector()
        db = Database(fault_injector=injector)
        injector.arm("wal.torn_write", probability=0.5)
        rows = db.query("SELECT crashpoint, armed FROM repro_crashpoints "
                        "WHERE armed").rows
        assert rows == [("wal.torn_write", True)]

    def test_crashpoints_view_without_injector(self):
        db = Database()
        rows = db.query("SELECT count(*) FROM repro_crashpoints").scalar()
        assert rows == len(CRASHPOINTS)


class TestWalChecksums:
    def test_every_record_carries_matching_crc(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        for record in db.storage.wal.records:
            assert record.crc == record.content_crc()
            assert record.is_valid()

    def test_bit_flip_detected(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        record = db.storage.wal.records[-2]
        record.after = (999,)  # corrupt the payload, keep the stored crc
        assert not record.is_valid()

    def test_torn_write_truncates_replay_at_first_bad_record(self):
        injector = FaultInjector()
        db = Database(fault_injector=injector)
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        injector.arm("wal.torn_write", count=1)
        db.execute("INSERT INTO t VALUES (2)")  # commit record tears
        injector.disarm()
        db.execute("INSERT INTO t VALUES (3)")  # after the torn record
        wal = db.storage.wal
        assert wal.torn_records == 1
        assert wal.first_corrupt_lsn() is not None
        recovered = Database.recover_from_wal(wal)
        # the first insert is durable; the torn commit and everything
        # after it is discarded — a strict prefix, never a gap
        assert recovered.table_rows("t") == [(1,)]

    def test_clean_log_has_no_corrupt_lsn(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.storage.wal.first_corrupt_lsn() is None

    def test_commit_whose_flush_failed_is_not_replayed(self):
        injector = FaultInjector()
        db = Database(fault_injector=injector)
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        injector.arm("disk.write_page", count=1)
        with pytest.raises(FaultInjected):
            db.execute("INSERT INTO t VALUES (2)")
        injector.disarm()
        recovered = Database.recover_from_wal(db.storage.wal)
        assert recovered.table_rows("t") == [(1,)]
