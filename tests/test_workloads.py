"""Tests for the synthetic workload generators."""

import pytest

from repro.workloads import (
    ArrivalProcess,
    ClickstreamGenerator,
    SecurityEventGenerator,
    ZipfGenerator,
    growth_series,
)


class TestZipf:
    def test_range(self):
        gen = ZipfGenerator(100, seed=1)
        draws = gen.draws(1000)
        assert all(0 <= d < 100 for d in draws)

    def test_skew(self):
        gen = ZipfGenerator(1000, s=1.2, seed=1)
        draws = gen.draws(5000)
        top = sum(1 for d in draws if d == 0)
        mid = sum(1 for d in draws if d == 500)
        assert top > mid * 5

    def test_deterministic(self):
        assert ZipfGenerator(50, seed=9).draws(100) == \
            ZipfGenerator(50, seed=9).draws(100)

    def test_different_seeds_differ(self):
        assert ZipfGenerator(50, seed=1).draws(100) != \
            ZipfGenerator(50, seed=2).draws(100)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)


class TestArrivals:
    def test_uniform_rate(self):
        proc = ArrivalProcess(10.0)
        times = list(proc.times(100))
        assert times[-1] == pytest.approx(10.0)

    def test_monotone_nondecreasing(self):
        for kind in ("uniform", "poisson", "bursty"):
            proc = ArrivalProcess(50.0, kind=kind, seed=3)
            times = list(proc.times(500))
            assert all(b >= a for a, b in zip(times, times[1:])), kind

    def test_poisson_mean_rate(self):
        proc = ArrivalProcess(100.0, kind="poisson", seed=5)
        times = list(proc.times(5000))
        assert times[-1] == pytest.approx(50.0, rel=0.15)

    def test_start_time(self):
        proc = ArrivalProcess(1.0, start_time=1000.0)
        assert next(proc.times(1)) > 1000.0

    def test_unknown_kind(self):
        proc = ArrivalProcess(1.0, kind="fractal")
        with pytest.raises(ValueError):
            proc.next_time()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ArrivalProcess(0.0)


class TestGrowthSeries:
    def test_ten_x_per_year(self):
        assert growth_series(10_000, 10, 3) == [10_000, 100_000, 1_000_000]

    def test_fractional_factor(self):
        assert growth_series(100, 2.73, 2) == [100, 273]


class TestClickstream:
    def test_schema_shape(self):
        gen = ClickstreamGenerator(seed=1)
        url, atime, ip = gen.batch(1)[0]
        assert url.startswith("/page/")
        assert isinstance(atime, float)
        assert ip.startswith("10.0.")

    def test_time_ordered(self):
        gen = ClickstreamGenerator(rate_per_second=1000, seed=2)
        times = [e[1] for e in gen.batch(500)]
        assert times == sorted(times)

    def test_deterministic(self):
        assert ClickstreamGenerator(seed=5).batch(50) == \
            ClickstreamGenerator(seed=5).batch(50)

    def test_feeds_url_stream(self):
        from repro import Database
        from repro.workloads.clickstream import URL_STREAM_DDL
        db = Database()
        db.execute(URL_STREAM_DDL)
        gen = ClickstreamGenerator(seed=1)
        assert db.insert_stream("url_stream", gen.batch(100)) == 100


class TestSecurityEvents:
    def test_schema_shape(self):
        gen = SecurityEventGenerator(seed=1)
        etime, src, dst, port, action, severity, nbytes = gen.batch(1)[0]
        assert isinstance(etime, float)
        assert src.startswith("192.168.")
        assert action in ("allow", "block", "alert")
        assert 1 <= severity <= 5
        assert nbytes >= 0

    def test_hot_ports_dominate(self):
        gen = SecurityEventGenerator(seed=2)
        events = gen.batch(2000)
        hot = sum(1 for e in events if e[3] in
                  (22, 23, 80, 443, 445, 3389, 8080, 3306))
        assert hot > 1400

    def test_feeds_security_stream(self):
        from repro import Database
        from repro.workloads.security import SECURITY_STREAM_DDL
        db = Database()
        db.execute(SECURITY_STREAM_DDL)
        gen = SecurityEventGenerator(seed=3)
        assert db.insert_stream("security_events", gen.batch(200)) == 200

    def test_deterministic(self):
        assert SecurityEventGenerator(seed=7).batch(20) == \
            SecurityEventGenerator(seed=7).batch(20)
