"""API-hygiene checks: exports resolve, public items carry docstrings,
and the README quickstart actually runs."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sql",
    "repro.exec",
    "repro.storage",
    "repro.streaming",
    "repro.txn",
    "repro.types",
    "repro.catalog",
    "repro.baselines",
    "repro.workloads",
    "repro.bench",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} has no docstring"

    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"


class TestPublicDocstrings:
    def test_database_public_methods_documented(self):
        from repro import Database
        for name, member in inspect.getmembers(Database):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert member.__doc__, f"Database.{name} undocumented"

    def test_subscription_methods_documented(self):
        from repro.core.results import Subscription
        for name, member in inspect.getmembers(Subscription):
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            assert member.__doc__, f"Subscription.{name} undocumented"

    def test_operator_classes_documented(self):
        from repro.exec import operators
        for name, member in inspect.getmembers(operators, inspect.isclass):
            if member.__module__ == operators.__name__:
                assert member.__doc__, f"operators.{name} undocumented"

    def test_errors_documented(self):
        from repro import errors
        for name, member in inspect.getmembers(errors, inspect.isclass):
            if member.__module__ == errors.__name__:
                assert member.__doc__, f"errors.{name} undocumented"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import Database

        db = Database()
        db.execute("""
            CREATE STREAM url_stream (
                url varchar(1024),
                atime timestamp CQTIME USER,
                client_ip varchar(50)
            )
        """)
        top10 = db.execute("""
            SELECT url, count(*) url_count
            FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
            GROUP BY url ORDER BY url_count DESC LIMIT 10
        """)
        db.insert_stream("url_stream", [("/home", 5.0, "10.0.0.1")])
        db.advance_streams(60.0)
        windows = top10.poll()
        assert windows[0].rows == [("/home", 1)]
