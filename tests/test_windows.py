"""Tests for window operators — including a property test against a naive
reference implementation of RSTREAM window semantics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WindowError
from repro.sql import ast, parse_statement
from repro.streaming.windows import (
    RowWindowOperator,
    TimeWindowOperator,
    WindowCountOperator,
    WindowSpec,
)


def collect(visible, advance, emit_empty=True):
    out = []
    op = TimeWindowOperator(
        visible, advance,
        lambda rows, o, c: out.append((o, c, [r[0] for r in rows])),
        emit_empty)
    return op, out


class TestTimeWindows:
    def test_tumbling_basic(self):
        op, out = collect(60, 60)
        for t in (10, 20, 70):
            op.on_tuple((t,), t)
        op.on_heartbeat(120)
        assert out == [(0, 60, [10, 20]), (60, 120, [70])]

    def test_boundary_tuple_belongs_to_next_window(self):
        op, out = collect(60, 60)
        op.on_tuple((10,), 10)
        op.on_tuple((60,), 60)  # exactly at the boundary
        op.on_heartbeat(120)
        assert out == [(0, 60, [10]), (60, 120, [60])]

    def test_sliding_window_rows_repeat(self):
        op, out = collect(120, 60)
        op.on_tuple((30,), 30)
        op.on_tuple((90,), 90)
        op.on_heartbeat(180)
        # close at 60: [−60,60) -> [30]; at 120: [0,120) -> [30, 90];
        # at 180: [60,180) -> [90]
        assert out == [(-60, 60, [30]), (0, 120, [30, 90]),
                       (60, 180, [90])]

    def test_empty_windows_emitted(self):
        op, out = collect(60, 60)
        op.on_tuple((10,), 10)
        op.on_heartbeat(240)
        closes = [c for _o, c, _r in out]
        assert closes == [60, 120, 180, 240]
        assert out[1][2] == []

    def test_empty_windows_suppressed(self):
        op, out = collect(60, 60, emit_empty=False)
        op.on_tuple((10,), 10)
        op.on_heartbeat(240)
        assert [c for _o, c, _r in out] == [60]

    def test_alignment_to_epoch_multiples(self):
        op, out = collect(60, 60)
        op.on_tuple((95,), 95)  # first event mid-minute
        op.on_heartbeat(125)
        assert out[0][1] == 120  # closes at the minute, not at 95+60

    def test_flush_emits_pending(self):
        op, out = collect(60, 60)
        op.on_tuple((10,), 10)
        op.on_flush()
        assert out == [(0, 60, [10])]

    def test_flush_sliding_drains_all_windows(self):
        op, out = collect(120, 60)
        op.on_tuple((30,), 30)
        op.on_flush()
        # the row is visible in windows closing at 60 and 120
        assert [c for _o, c, _r in out] == [60, 120]
        assert all(rows == [30] for _o, _c, rows in out)

    def test_flush_idempotent(self):
        op, out = collect(60, 60)
        op.on_tuple((10,), 10)
        op.on_flush()
        op.on_flush()
        assert len(out) == 1

    def test_eviction_bounds_buffer(self):
        op, _out = collect(60, 60)
        for t in range(0, 1000, 10):
            op.on_tuple((t,), t)
        assert op.buffered <= 7  # at most one window's worth + in-flight

    def test_heartbeat_before_any_tuple_is_noop(self):
        op, out = collect(60, 60)
        op.on_heartbeat(500)
        assert out == []

    def test_invalid_extents(self):
        with pytest.raises(WindowError):
            TimeWindowOperator(0, 60, lambda *a: None)
        with pytest.raises(WindowError):
            TimeWindowOperator(60, -1, lambda *a: None)

    def test_stats(self):
        op, _out = collect(60, 60)
        op.on_tuple((10,), 10)
        op.on_tuple((20,), 20)
        op.on_heartbeat(60)
        assert op.tuples_in == 2
        assert op.windows_closed == 1
        assert op.rows_emitted == 2


def reference_windows(events, visible, advance, end_time):
    """Naive reference: every boundary T in (first_event, end]; window is
    [T - visible, T)."""
    if not events:
        return []
    first = events[0][0]
    base = math.floor(first / advance) * advance
    out = []
    k = 1
    while base + k * advance <= end_time:
        close = base + k * advance
        rows = [v for t, v in events if close - visible <= t < close]
        out.append((close, rows))
        k += 1
    return out


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1,
             max_size=60).map(sorted),
    st.sampled_from([(60, 60), (120, 60), (300, 60), (100, 50), (30, 30)]),
)
def test_time_window_matches_reference(times, extents):
    visible, advance = extents
    events = [(float(t), t) for t in times]
    end_time = float(times[-1] + visible + advance)

    op, out = collect(visible, advance)
    for t, v in events:
        op.on_tuple((v,), t)
    op.on_heartbeat(end_time)

    expected = reference_windows(events, visible, advance, end_time)
    actual = [(c, rows) for _o, c, rows in out]
    assert actual == expected


class TestRowWindows:
    def test_tumbling_rows(self):
        out = []
        op = RowWindowOperator(3, 3, lambda rows, o, c: out.append(
            [r[0] for r in rows]))
        for i in range(7):
            op.on_tuple((i,), float(i))
        assert out == [[0, 1, 2], [3, 4, 5]]

    def test_sliding_rows(self):
        out = []
        op = RowWindowOperator(3, 1, lambda rows, o, c: out.append(
            [r[0] for r in rows]))
        for i in range(4):
            op.on_tuple((i,), float(i))
        assert out == [[0], [0, 1], [0, 1, 2], [1, 2, 3]]

    def test_close_time_is_latest_event(self):
        closes = []
        op = RowWindowOperator(2, 2, lambda rows, o, c: closes.append(c))
        op.on_tuple((1,), 5.0)
        op.on_tuple((2,), 9.0)
        assert closes == [9.0]

    def test_flush_emits_partial(self):
        out = []
        op = RowWindowOperator(3, 3, lambda rows, o, c: out.append(len(rows)))
        op.on_tuple((1,), 1.0)
        op.on_flush()
        assert out == [1]

    def test_flush_nothing_pending(self):
        out = []
        op = RowWindowOperator(2, 2, lambda rows, o, c: out.append(1))
        op.on_tuple((1,), 1.0)
        op.on_tuple((2,), 2.0)
        op.on_flush()
        assert out == [1]  # the flush added nothing


class TestWindowCount:
    def test_slices_1_forwards_each_batch(self):
        out = []
        op = WindowCountOperator(1, lambda rows, o, c: out.append(
            (list(rows), c)))
        op.on_batch([(1,)], 0.0, 60.0)
        op.on_batch([(2,), (3,)], 60.0, 120.0)
        assert out == [([(1,)], 60.0), ([(2,), (3,)], 120.0)]

    def test_slices_2_concatenates(self):
        out = []
        op = WindowCountOperator(2, lambda rows, o, c: out.append(list(rows)))
        op.on_batch([(1,)], 0.0, 60.0)
        op.on_batch([(2,)], 60.0, 120.0)
        op.on_batch([(3,)], 120.0, 180.0)
        assert out == [[(1,)], [(1,), (2,)], [(2,), (3,)]]

    def test_tuples_become_single_row_batches(self):
        out = []
        op = WindowCountOperator(2, lambda rows, o, c: out.append(list(rows)))
        op.on_tuple((1,), 5.0)
        op.on_tuple((2,), 6.0)
        assert out == [[(1,)], [(1,), (2,)]]


class TestWindowSpec:
    def window_of(self, sql):
        select = parse_statement(sql)
        return WindowSpec.from_clause(select.from_clause.window)

    def test_time_spec(self):
        spec = self.window_of(
            "SELECT * FROM s <VISIBLE '5 minutes' ADVANCE '1 minute'>")
        assert spec.kind == "time"
        assert spec.visible == 300.0

    def test_rows_spec(self):
        spec = self.window_of("SELECT * FROM s <VISIBLE 10 ROWS ADVANCE 5 ROWS>")
        assert spec.kind == "rows"

    def test_windows_spec(self):
        spec = self.window_of("SELECT * FROM s <slices 2 windows>")
        assert spec.kind == "windows"
        assert spec.count == 2

    def test_make_operator_kinds(self):
        sink = lambda rows, o, c: None
        assert isinstance(
            self.window_of("SELECT * FROM s <VISIBLE 60>").make_operator(sink),
            TimeWindowOperator)
        assert isinstance(
            self.window_of("SELECT * FROM s <VISIBLE 5 ROWS>").make_operator(sink),
            RowWindowOperator)
        assert isinstance(
            self.window_of("SELECT * FROM s <slices 1 windows>").make_operator(sink),
            WindowCountOperator)

    def test_zero_extent_rejected(self):
        clause = ast.WindowClause(visible=0.0, advance=0.0)
        with pytest.raises(WindowError):
            WindowSpec.from_clause(clause)
