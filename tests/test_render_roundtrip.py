"""Property test: for generated ASTs, parse(render(ast)) == ast.

This pins down the parser and the renderer against each other across
the whole expression grammar, far beyond what hand-written cases cover.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import ast, parse_statement
from repro.sql.render import render_expr, render_statement

# -- strategies --------------------------------------------------------------

names = st.sampled_from(["a", "b", "c", "val", "ts"])
qualifiers = st.sampled_from([None, "t", "u"])

literals = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    st.text(alphabet="abc xyz'%_", max_size=8),
).map(ast.Literal)

column_refs = st.builds(ast.ColumnRef, names, qualifiers)

leaf = st.one_of(literals, column_refs)

_ARITH = ["+", "-", "*", "/", "%", "||"]
_COMPARE = ["=", "<>", "<", "<=", ">", ">="]
_LOGIC = ["AND", "OR"]


def expressions(depth=3):
    if depth == 0:
        return leaf
    sub = expressions(depth - 1)
    return st.one_of(
        leaf,
        st.builds(ast.BinaryOp,
                  st.sampled_from(_ARITH + _COMPARE + _LOGIC), sub, sub),
        st.builds(ast.UnaryOp, st.just("NOT"), sub),
        st.builds(ast.UnaryOp, st.just("-"), sub),
        st.builds(ast.IsNull, sub, st.booleans()),
        st.builds(ast.Like, sub, sub, st.booleans(), st.booleans()),
        st.builds(ast.InList, sub, st.lists(sub, min_size=1, max_size=3),
                  st.booleans()),
        st.builds(ast.Between, sub, sub, sub, st.booleans()),
        st.builds(ast.Cast, sub,
                  st.sampled_from(["integer", "bigint", "text",
                                   "double precision", "timestamp",
                                   "interval"]),
                  st.none()),
        st.builds(ast.FunctionCall, st.sampled_from(["lower", "coalesce",
                                                     "length", "abs"]),
                  st.lists(sub, min_size=1, max_size=3), st.just(False)),
        st.builds(
            ast.CaseExpr,
            st.one_of(st.none(), sub),
            st.lists(st.tuples(sub, sub), min_size=1, max_size=2),
            st.one_of(st.none(), sub),
        ),
    )


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_expression_roundtrip(expr):
    text = f"SELECT {render_expr(expr)}"
    parsed = parse_statement(text)
    assert parsed.items[0].expr == expr


aggregate_calls = st.one_of(
    st.builds(ast.FunctionCall, st.just("count"),
              st.just([ast.Star()]), st.just(False)),
    st.builds(ast.FunctionCall, st.sampled_from(["sum", "min", "max", "avg"]),
              st.lists(column_refs, min_size=1, max_size=1), st.just(False)),
)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(expressions(2),
                       st.one_of(st.none(), st.sampled_from(["x", "y"]))),
             min_size=1, max_size=3),
    st.one_of(st.none(), expressions(2)),
    st.booleans(),
)
def test_select_roundtrip(item_specs, where, distinct):
    select = ast.Select(
        items=[ast.SelectItem(expr, alias) for expr, alias in item_specs],
        from_clause=ast.TableRef("t"),
        where=where,
        distinct=distinct,
    )
    parsed = parse_statement(render_statement(select))
    assert parsed == select


class TestRenderUnits:
    def roundtrip(self, sql):
        first = parse_statement(sql)
        again = parse_statement(render_statement(first))
        assert first == again

    def test_window_clause(self):
        self.roundtrip("SELECT count(*) FROM s "
                       "<VISIBLE '5 minutes' ADVANCE '1 minute'>")

    def test_row_window(self):
        self.roundtrip("SELECT count(*) FROM s <VISIBLE 10 ROWS ADVANCE 2 ROWS>")

    def test_slices_window(self):
        self.roundtrip("SELECT * FROM d <slices 2 windows>")

    def test_joins(self):
        self.roundtrip("SELECT * FROM a JOIN b ON a.x = b.x "
                       "LEFT JOIN c ON b.y = c.y")

    def test_cross_join(self):
        self.roundtrip("SELECT * FROM a, b WHERE a.x = b.x")

    def test_subquery(self):
        self.roundtrip("SELECT s.c FROM (SELECT count(*) c FROM t) s")

    def test_group_having_order_limit(self):
        self.roundtrip("SELECT a, count(*) FROM t GROUP BY a "
                       "HAVING count(*) > 2 ORDER BY a DESC LIMIT 5 OFFSET 1")

    def test_set_ops(self):
        self.roundtrip("SELECT a FROM t UNION ALL SELECT b FROM u "
                       "ORDER BY 1 LIMIT 3")
        self.roundtrip("SELECT a FROM t EXCEPT SELECT b FROM u")
        self.roundtrip("SELECT a FROM t INTERSECT ALL SELECT b FROM u")

    def test_subquery_predicates(self):
        self.roundtrip("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        self.roundtrip("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        self.roundtrip("SELECT (SELECT max(b) FROM u)")

    def test_count_distinct(self):
        self.roundtrip("SELECT count(DISTINCT a) FROM t")

    def test_string_escaping(self):
        self.roundtrip("SELECT 'it''s', 'a''''b' FROM t")

    def test_case(self):
        self.roundtrip("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t")
        self.roundtrip("SELECT CASE a WHEN 1 THEN 'x' END FROM t")

    def test_parameters(self):
        self.roundtrip("SELECT a FROM t WHERE a = ? AND b < ?")

    def test_unbounded_window(self):
        self.roundtrip(
            "SELECT count(*) FROM s <VISIBLE UNBOUNDED ADVANCE '1 minute'>")
