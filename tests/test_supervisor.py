"""Tests for the supervised CQ runtime: dead-letter quarantine,
channel-write retry with backoff, automatic restart through the recovery
paths, backpressure policies, and the SET/SHOW + system-view surface."""

import io

import pytest

from repro import Database
from repro.cli import Shell
from repro.errors import BackpressureError, ExecutionError, FaultInjected
from repro.faults import FaultInjector
from repro.streaming.supervisor import SupervisorPolicy

STREAM_DDL = ("CREATE STREAM s (k varchar(10), v integer, "
              "ts timestamp CQTIME USER)")


@pytest.fixture
def db():
    database = Database(supervised=True, stream_retention=3600.0)
    database.execute(STREAM_DDL)
    return database


class Bomb:
    def __init__(self):
        self.seen = 0

    def on_tuple(self, row, t):
        self.seen += 1
        raise RuntimeError("boom")

    def on_heartbeat(self, t):
        pass

    def on_flush(self):
        pass


class TestPoisonIsolation:
    def test_poison_tuple_does_not_reach_inserter(self, db):
        sub = db.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        # v=0 is a poison tuple: unsupervised this raises at insert
        assert db.insert_stream("s", [("a", 0, 5.0)]) == 1
        assert db.insert_stream("s", [("a", 2, 6.0)]) == 1
        assert sub.rows() == [(5.0,)]
        letters = db.supervisor.dead_letter_rows()
        assert any(kind == "poison-tuple" for _s, _n, kind, *_ in
                   [(l[0], l[1], l[2]) for l in letters])

    def test_poison_window_quarantined_next_window_flows(self, db):
        sub = db.subscribe("SELECT sum(10 / v) FROM s <VISIBLE '1 minute'>")
        db.insert_stream("s", [("a", 0, 5.0)])
        db.advance_streams(60.0)   # window fails: quarantined, not raised
        db.insert_stream("s", [("a", 5, 65.0)])
        db.advance_streams(120.0)
        assert sub.rows() == [(2.0,)]
        kinds = [row[2] for row in db.supervisor.dead_letter_rows()]
        assert "poison-window" in kinds

    def test_raising_subscriber_does_not_reach_inserter(self, db):
        good = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        bomb = Bomb()
        db.get_stream("s").subscribe(bomb)
        assert db.insert_stream("s", [("a", 1, 5.0)]) == 1
        assert db.insert_stream("s", [("a", 1, 6.0)]) == 1
        db.get_stream("s").unsubscribe(bomb)
        db.advance_streams(60.0)
        assert bomb.seen == 2
        assert good.rows() == [(2,)]   # full fan-out despite the bomb
        kinds = [row[2] for row in db.supervisor.dead_letter_rows()]
        assert kinds.count("subscriber-error") == 2

    def test_unsupervised_database_still_propagates(self):
        plain = Database()
        plain.execute(STREAM_DDL)
        plain.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        with pytest.raises(ExecutionError):
            plain.insert_stream("s", [("a", 0, 5.0)])


class TestDeadLetterStream:
    def test_dead_letters_republished_on_queryable_stream(self, db):
        watcher = db.subscribe(
            "SELECT source, kind FROM repro_dead_letter_stream")
        db.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        db.insert_stream("s", [("a", 0, 5.0)])
        rows = watcher.rows()
        assert len(rows) == 1
        assert rows[0][1] == "poison-tuple"

    def test_stream_exists_before_any_failure(self, db):
        assert db.catalog.has_relation("repro_dead_letter_stream")

    def test_dead_letters_system_view(self, db):
        db.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        db.insert_stream("s", [("a", 0, 5.0)])
        rows = db.query("SELECT source, kind, rowcount "
                        "FROM repro_dead_letters").rows
        assert len(rows) == 1
        assert rows[0][1] == "poison-tuple"
        assert rows[0][2] == 1


class TestChannelRetry:
    def pipeline(self, db):
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE arch (k varchar(10), c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)

    def test_transient_fault_retried_with_backoff(self, db):
        injector = FaultInjector()
        db.set_fault_injector(injector)
        self.pipeline(db)
        injector.arm("channel.write", count=2)
        db.insert_stream("s", [("a", 1, 5.0)])
        db.advance_streams(60.0)
        # two failed attempts, third lands: the window is archived
        assert db.table_rows("arch") == [("a", 1, 60.0)]
        entry = db.supervisor.entry_for(db.catalog.get_channel("ch"))
        assert entry.retries == 2
        # exponential: base + base*factor
        policy = db.supervisor.policy
        expected = policy.backoff_base * (1 + policy.backoff_factor)
        assert entry.backoff_seconds == pytest.approx(expected)

    def test_permanent_fault_quarantines_batch(self, db):
        injector = FaultInjector()
        db.set_fault_injector(injector)
        self.pipeline(db)
        injector.arm("channel.write")
        db.insert_stream("s", [("a", 1, 5.0)])
        db.advance_streams(60.0)
        assert db.table_rows("arch") == []
        letters = [row for row in db.supervisor.dead_letter_rows()
                   if row[2] == "channel-write"]
        assert len(letters) == 1
        assert letters[0][4] == 1  # the lost batch had one row
        # the pipeline keeps running once the fault clears
        injector.disarm()
        db.insert_stream("s", [("b", 1, 65.0)])
        db.advance_streams(120.0)
        assert db.table_rows("arch") == [("b", 1, 120.0)]


class TestRestart:
    def failing_pipeline(self, db):
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, sum(10 / v) x, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE arch (k varchar(10), x double precision,
                               ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)

    def test_repeated_failures_restart_the_cq(self, db):
        self.failing_pipeline(db)
        # two consecutive poison windows hit restart_limit (default 2)
        db.insert_stream("s", [("a", 0, 5.0)])
        db.advance_streams(60.0)
        db.insert_stream("s", [("a", 0, 65.0)])
        db.advance_streams(120.0)
        cq = db.runtime.cqs()["derived:agg"]
        entry = db.supervisor.entry_for(cq)
        assert entry.restarts == 1
        assert entry.state == "running"
        # the restarted CQ is rebound everywhere and keeps archiving
        db.insert_stream("s", [("b", 5, 125.0)])
        db.advance_streams(180.0)
        assert ("b", 2.0, 180.0) in db.table_rows("arch")

    def test_restart_recovers_from_active_table(self, db):
        self.failing_pipeline(db)
        # a healthy window first, so the active table has a high-water mark
        db.insert_stream("s", [("a", 5, 5.0)])
        db.advance_streams(60.0)
        assert db.table_rows("arch") == [("a", 2.0, 60.0)]
        for close in (120.0, 180.0):
            db.insert_stream("s", [("a", 0, close - 5.0)])
            db.advance_streams(close)
        entry = db.supervisor.entry_for(db.runtime.cqs()["derived:agg"])
        assert entry.restarts >= 1
        assert entry.active_table is db.catalog.get_relation("arch")
        db.insert_stream("s", [("b", 10, 185.0)])
        db.advance_streams(240.0)
        assert ("b", 1.0, 240.0) in db.table_rows("arch")
        # no window double-archived by the recovery replay
        closes = [row[2] for row in db.table_rows("arch")]
        assert len(closes) == len(set(closes))

    def test_flapping_cq_is_quarantined(self, db):
        policy = db.supervisor.policy
        policy.restart_limit = 1
        policy.max_restarts = 2
        self.failing_pipeline(db)
        close = 60.0
        for _ in range(6):
            db.insert_stream("s", [("a", 0, close - 5.0)])
            db.advance_streams(close)
            close += 60.0
        status = {row[0]: row for row in db.supervisor.status_rows()}
        assert status["derived:agg"][2] == "quarantined"
        # a quarantined CQ is detached: inserts no longer fail or archive
        db.insert_stream("s", [("b", 5, close - 5.0)])
        db.advance_streams(close)
        assert db.table_rows("arch") == []


class TestBackpressure:
    def stream(self, policy):
        database = Database(stream_slack=10.0, backpressure_policy=policy,
                            high_water_mark=3, supervised=True)
        database.execute(STREAM_DDL)
        return database

    def test_raise_policy(self):
        db = self.stream("raise")
        for t in (0.0, 1.0, 2.0):
            db.insert_stream("s", [("a", 1, t)])
        with pytest.raises(BackpressureError):
            db.insert_stream("s", [("a", 1, 3.0)])

    def test_shed_oldest_policy_dead_letters_the_shed_tuple(self):
        db = self.stream("shed-oldest")
        sub = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            db.insert_stream("s", [("a", 1, t)])
        stream = db.get_stream("s")
        assert stream.tuples_shed == 2
        assert len(stream._pending) == 3
        db.flush_streams()
        assert sub.rows() == [(3,)]
        shed = [row for row in db.supervisor.dead_letter_rows()
                if row[2] == "load-shed"]
        assert len(shed) == 2

    def test_block_policy_force_releases_oldest(self):
        db = self.stream("block")
        sub = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            db.insert_stream("s", [("a", 1, t)])
        stream = db.get_stream("s")
        assert stream.forced_releases == 2
        assert stream.tuples_shed == 0
        db.flush_streams()
        assert sub.rows() == [(5,)]  # nothing lost, delivered early instead

    def test_default_is_raise(self):
        database = Database(stream_slack=10.0, high_water_mark=2)
        database.execute(STREAM_DDL)
        database.insert_stream("s", [("a", 1, 0.0)])
        database.insert_stream("s", [("a", 1, 1.0)])
        with pytest.raises(BackpressureError):
            database.insert_stream("s", [("a", 1, 2.0)])


class TestSessionOptions:
    def test_set_supervision_on(self):
        db = Database()
        assert db.supervisor is None
        db.execute("SET supervision = on")
        assert db.supervisor is not None
        db.execute("SET supervision = on")  # idempotent
        assert db.query("SHOW supervision").scalar() == "on"

    def test_supervision_adopts_existing_objects(self):
        db = Database()
        db.execute(STREAM_DDL)
        sub = db.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        db.execute("SET supervision = on")
        assert db.insert_stream("s", [("a", 0, 5.0)]) == 1  # isolated now
        assert sub.rows() == []
        names = [row[0] for row in db.supervisor.status_rows()]
        assert "s" in names

    def test_set_backpressure_policy_applies_to_existing_streams(self):
        db = Database(stream_slack=10.0, high_water_mark=2)
        db.execute(STREAM_DDL)
        db.execute("SET backpressure_policy = 'shed-oldest'")
        assert db.get_stream("s").backpressure_policy == "shed-oldest"
        db.execute("SET high_water_mark = 5")
        assert db.get_stream("s").high_water_mark == 5
        assert db.query("SHOW backpressure_policy").scalar() == "shed-oldest"

    def test_set_policy_knob_requires_supervision(self):
        db = Database()
        with pytest.raises(ExecutionError):
            db.execute("SET restart_limit = 5")
        db.execute("SET supervision = on")
        db.execute("SET restart_limit = 5")
        assert db.supervisor.policy.restart_limit == 5

    def test_set_fault_seed_installs_injector(self):
        db = Database()
        db.execute("SET fault_seed = 1234")
        assert db.faults is not None
        assert db.faults.seed == 1234
        assert db.storage.disk.faults is db.faults

    def test_unknown_option_rejected(self):
        db = Database()
        with pytest.raises(ExecutionError):
            db.execute("SET no_such_option = 1")
        with pytest.raises(ExecutionError):
            db.query("SHOW no_such_option")

    def test_show_all(self):
        db = Database(supervised=True)
        result = db.query("SHOW ALL")
        names = [row[0] for row in result.rows]
        assert "supervision" in names
        assert "restart_limit" in names


class TestSupervisorStatusView:
    def test_view_lists_every_supervised_entity(self, db):
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE arch (k varchar(10), c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)
        rows = db.query("SELECT name, kind, state "
                        "FROM repro_supervisor_status").rows
        entries = {(name, kind) for name, kind, _state in rows}
        assert ("s", "stream") in entries
        assert ("derived:agg", "cq") in entries
        assert ("ch", "channel") in entries
        assert all(state == "running" for _n, _k, state in rows)

    def test_view_empty_without_supervision(self):
        db = Database()
        assert db.query(
            "SELECT count(*) FROM repro_supervisor_status").scalar() == 0


class TestShellCommands:
    def shell(self, db):
        out = io.StringIO()
        return Shell(db=db, out=out), out

    def test_supervisor_command(self, db):
        shell, out = self.shell(db)
        shell.handle_line("\\supervisor")
        assert "s" in out.getvalue()

    def test_supervisor_command_when_off(self):
        shell, out = self.shell(Database())
        shell.handle_line("\\supervisor")
        assert "supervision is off" in out.getvalue()

    def test_deadletters_command(self, db):
        db.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        db.insert_stream("s", [("a", 0, 5.0)])
        shell, out = self.shell(db)
        shell.handle_line("\\deadletters")
        assert "poison-tuple" in out.getvalue()

    def test_deadletters_empty(self, db):
        shell, out = self.shell(db)
        shell.handle_line("\\deadletters")
        assert "no dead letters" in out.getvalue()


class TestPolicyDefaults:
    def test_policy_dataclass_defaults(self):
        policy = SupervisorPolicy()
        assert policy.channel_retry_limit == 3
        assert policy.restart_limit == 2
        assert policy.max_restarts == 3

    def test_custom_policy_via_enable(self):
        db = Database()
        db.enable_supervision(policy=SupervisorPolicy(restart_limit=7))
        assert db.supervisor.policy.restart_limit == 7
