"""Tests for ANALYZE statistics and the hash-join build-side choice."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE small (k integer, label varchar(10))")
    database.execute("CREATE TABLE big (k integer, payload varchar(10))")
    database.insert_table("small", [(i, f"s{i}") for i in range(5)])
    database.insert_table("big", [(i % 5, None if i % 10 == 0 else "p")
                                  for i in range(500)])
    return database


class TestAnalyze:
    def test_analyze_one_table(self, db):
        result = db.execute("ANALYZE big")
        assert result.columns == ["table_name", "row_count", "pages"]
        assert result.rows[0][0] == "big"
        assert result.rows[0][1] == 500

    def test_analyze_all(self, db):
        result = db.execute("ANALYZE")
        assert {row[0] for row in result.rows} == {"small", "big"}

    def test_column_statistics(self, db):
        db.execute("ANALYZE big")
        stats = db.get_table("big").stats
        n_distinct, null_frac = stats.columns["k"]
        assert n_distinct == 5
        assert null_frac == 0.0
        _nd, payload_nulls = stats.columns["payload"]
        assert payload_nulls == pytest.approx(0.1)

    def test_stats_visible_in_system_view(self, db):
        db.execute("ANALYZE big")
        rows = db.query("SELECT column_name, n_distinct FROM repro_stats "
                        "WHERE table_name = 'big' ORDER BY column_name").rows
        assert ("k", 5) in rows

    def test_stats_reflect_snapshot(self, db):
        db.execute("DELETE FROM big WHERE k = 0")
        db.execute("ANALYZE big")
        assert db.get_table("big").stats.row_count == 400


class TestBuildSideChoice:
    def test_smaller_left_becomes_build(self, db):
        plan = db.explain(
            "SELECT count(*) FROM small s, big b WHERE s.k = b.k")
        assert "build=left" in plan

    def test_smaller_right_stays_default(self, db):
        plan = db.explain(
            "SELECT count(*) FROM big b, small s WHERE s.k = b.k")
        assert "build=right" in plan

    def test_results_identical_either_orientation(self, db):
        a = db.query(
            "SELECT count(*) FROM small s, big b WHERE s.k = b.k").scalar()
        b = db.query(
            "SELECT count(*) FROM big b, small s WHERE s.k = b.k").scalar()
        assert a == b == 500

    def test_left_join_with_left_build(self, db):
        db.insert_table("small", [(99, "unmatched")])
        result = db.query(
            "SELECT s.k, count(b.k) FROM small s LEFT JOIN big b "
            "ON s.k = b.k GROUP BY s.k ORDER BY s.k")
        assert ("build=left" in db.explain(
            "SELECT s.k FROM small s LEFT JOIN big b ON s.k = b.k"))
        assert result.rows[-1] == (99, 0)

    def test_left_join_null_key_rows_survive_left_build(self, db):
        db.insert_table("small", [(None, "nullkey")])
        result = db.query(
            "SELECT s.label FROM small s LEFT JOIN big b ON s.k = b.k "
            "WHERE s.label = 'nullkey'")
        assert result.rows == [("nullkey",)]

    def test_stream_window_is_assumed_small(self, db):
        db.execute("CREATE STREAM s (k integer, ts timestamp CQTIME USER)")
        plan = db.explain(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> w, big b "
            "WHERE w.k = b.k")
        # the window relation (est. ~1000) is smaller than big?  big has
        # 500 rows, so big stays the build side here
        assert "build=right" in plan
        db.insert_table("big", [(1, "x")] * 1000)
        plan = db.explain(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> w, big b "
            "WHERE w.k = b.k")
        assert "build=left" in plan  # now the window is the smaller side

    def test_stream_table_join_results_with_left_build(self, db):
        db.execute("CREATE STREAM s (k integer, ts timestamp CQTIME USER)")
        db.insert_table("big", [(1, "x")] * 1000)  # force build=left
        sub = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> w, small t "
            "WHERE w.k = t.k")
        db.insert_stream("s", [(1, 5.0), (4, 6.0), (77, 7.0)])
        db.advance_streams(60.0)
        assert sub.rows() == [(2,)]
