"""The observability subsystem: metrics registry, pipeline tracing,
EXPLAIN / EXPLAIN ANALYZE, stats views, the remote ``metrics`` op, and
the slow-window log.

The paper's CQs are "always on" (Section 1.2), so their health surfaces
must be always on too: everything here runs against default-constructed
databases with no special profiling mode.
"""

import math
import time

import pytest

import repro.client as client
from repro import Database
from repro.errors import ExecutionError
from repro.exec.columnar import HAS_NUMPY
from repro.obs import (MetricsRegistry, NULL_COUNTER, NULL_HISTOGRAM,
                       Tracer)
from repro.server import ServerThread

URL_STREAM = """
CREATE STREAM url_stream (
    url varchar(1024),
    atime timestamp CQTIME USER,
    client_ip varchar(50)
)
"""

EXAMPLE_2 = """
SELECT url, count(*) url_count
FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
GROUP by url
ORDER by url_count desc
LIMIT 10
"""

EXAMPLE_3 = """
CREATE STREAM urls_now as
SELECT url, count(*) as scnt, cq_close(*)
FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
GROUP by url
"""

EXAMPLE_4A = """
CREATE TABLE urls_archive (url varchar(1024), scnt integer,
                           stime timestamp)
"""

EXAMPLE_4B = """
CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND
"""

EXAMPLE_5 = """
select c.scnt, h.scnt, c.stime
from (select sum(scnt) as scnt, cq_close(*) as stime
      from urls_now <slices 1 windows>) c,
     urls_archive h
where c.stime - '1 week'::interval = h.stime
"""


def make_pipeline(db, n=50):
    """Example 1+3+4 end to end, with n clicks through one window."""
    db.execute(URL_STREAM)
    db.execute(EXAMPLE_3)
    db.execute(EXAMPLE_4A)
    db.execute(EXAMPLE_4B)
    rows = [(f"site{i % 5}.com", 10.0 + i * 0.01, "10.0.0.1")
            for i in range(n)]
    db.insert_stream("url_stream", rows)
    db.advance_streams(400.0)
    return rows


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates_and_is_shared_by_name(self):
        reg = MetricsRegistry()
        c = reg.counter("x.in")
        c.inc()
        c.inc(4)
        assert reg.counter("x.in") is c
        assert c.value == 5

    def test_callback_gauge_reads_at_snapshot_time(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("x.depth", fn=lambda: box["v"])
        box["v"] = 7
        rows = {r[0]: r for r in reg.snapshot_rows()}
        assert rows["x.depth"][1] == "gauge"
        assert rows["x.depth"][2] == 7.0

    def test_failing_gauge_degrades_to_nan(self):
        reg = MetricsRegistry()
        reg.gauge("x.bad", fn=lambda: 1 / 0)
        (row,) = reg.snapshot_rows()
        assert math.isnan(row[2])

    def test_disabled_registry_hands_out_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a")
        h = reg.histogram("b")
        assert c is NULL_COUNTER and h is NULL_HISTOGRAM
        c.inc()
        h.observe(1.0)
        assert c.value == 0 and h.count == 0
        reg.gauge("c", fn=lambda: 3)
        assert reg.snapshot_rows() == []

    def test_snapshot_rows_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.histogram("a.lat").observe(0.5)
        rows = reg.snapshot_rows()
        assert [r[0] for r in rows] == ["a.lat", "b.count"]
        name, kind, value, count, total, p50, p95, p99, mx = rows[0]
        assert kind == "histogram" and count == 1 and total == 0.5


class TestHistogram:
    def test_single_value_quantiles_are_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(0.125)
        for q in (0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.125)
        assert h.min == h.max == 0.125

    def test_quantiles_track_distribution(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for i in range(1, 1001):
            h.observe(i / 1000.0)  # uniform on (0, 1]
        # log-bucketed: ~19% bucket-edge error is the documented bound
        assert h.quantile(0.5) == pytest.approx(0.5, rel=0.25)
        assert h.quantile(0.95) == pytest.approx(0.95, rel=0.25)
        assert h.quantile(0.99) == pytest.approx(0.99, rel=0.25)
        assert h.quantile(1.0) == pytest.approx(1.0)
        assert h.mean == pytest.approx(0.5005)
        assert h.count == 1000

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_out_of_range_observations_clamp(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(0.0)        # below the first bucket bound
        h.observe(5e6)        # beyond the last bound (overflow bucket)
        assert h.count == 2
        assert h.quantile(1.0) == 5e6


class TestTracer:
    def test_rate_to_interval(self):
        t = Tracer(sample_rate=0.01)
        assert t.sample_rate == pytest.approx(0.01)
        t.set_rate(0.0)
        assert t.sample_rate == 0.0
        t.set_rate(1.0)
        assert t.sample_rate == 1.0

    def test_finished_traces_are_bounded(self):
        t = Tracer(sample_rate=1.0, keep=4)
        for _ in range(10):
            tr = t.start()
            tr.add_span("s", None, 0.0, 0.0)
            t.finish(tr)
        assert len(t.finished) == 4
        assert len(t.rows()) == 4


# ---------------------------------------------------------------------------
# pipeline tracing over a live CQ
# ---------------------------------------------------------------------------


class TestTracing:
    def test_span_trees_are_well_formed(self):
        db = Database(trace_sample_rate=1.0)
        make_pipeline(db, n=20)
        rows = db.query("SELECT trace_id, span_id, parent_id, name, "
                        "duration_ms FROM repro_traces").rows
        assert rows, "rate-1.0 sampling over a live CQ produced no traces"
        traces = {}
        for trace_id, span_id, parent_id, name, duration in rows:
            traces.setdefault(trace_id, {})[span_id] = (parent_id, name)
            assert duration is None or duration >= 0.0
        for spans in traces.values():
            roots = [sid for sid, (parent, _n) in spans.items()
                     if parent is None]
            assert len(roots) == 1
            (parent, name) = spans[roots[0]]
            assert name.startswith("source:url_stream")
            # every non-root span's parent exists within the same trace
            for sid, (parent, name) in spans.items():
                if parent is not None:
                    assert parent in spans
            names = [n for _p, n in spans.values()]
            assert any(n.startswith("window:") for n in names)
            assert any(n.startswith("emit:") for n in names)

    def test_e2e_latency_histogram_fills(self):
        db = Database(trace_sample_rate=1.0)
        make_pipeline(db, n=10)
        (count,) = db.query("SELECT count FROM repro_metrics "
                            "WHERE name = 'cq.e2e_seconds'").rows[0]
        assert count == 10

    def test_sampling_rate_thins_traces(self):
        db = Database(trace_sample_rate=0.1)
        make_pipeline(db, n=100)
        n_traces = db.query("SELECT count(distinct trace_id) "
                            "FROM repro_traces").scalar()
        assert n_traces == 10

    def test_set_trace_sample_rate_rearms_live_streams(self):
        db = Database(trace_sample_rate=0.0)
        make_pipeline(db, n=10)
        assert db.query("SELECT count(*) FROM repro_traces").scalar() == 0
        db.execute("SET trace_sample_rate = 1.0")
        db.insert_stream(
            "url_stream", [("late.com", 500.0, "10.0.0.1")])
        db.advance_streams(700.0)
        assert db.query("SELECT count(*) FROM repro_traces").scalar() > 0
        with pytest.raises(ExecutionError):
            db.execute("SET trace_sample_rate = 2.0")


# ---------------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestExplain:
    def test_example_2_streaming_select(self):
        db = Database()
        db.execute(URL_STREAM)
        if HAS_NUMPY:
            expected = (
                "Limit(10, offset=0) [mode=iterator]\n"
                "  Sort [mode=iterator]\n"
                "    Project [mode=iterator]\n"
                "      BatchAggregate(1 keys, 1 aggs) [mode=batch]\n"
                "        BatchSource(url_stream) [mode=batch]")
        else:
            expected = (
                "Limit(10, offset=0)\n"
                "  Sort\n"
                "    Project\n"
                "      HashAggregate(1 keys, 1 aggs)\n"
                "        RowSource(url_stream)")
        assert db.explain("EXPLAIN " + EXAMPLE_2.strip()) == expected

    def test_example_3_derived_stream_by_name(self):
        db = Database()
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        if HAS_NUMPY:
            expected = (
                "Project [mode=iterator]\n"
                "  BatchAggregate(1 keys, 1 aggs) [mode=batch]\n"
                "    BatchSource(url_stream) [mode=batch]")
        else:
            expected = (
                "Project\n"
                "  HashAggregate(1 keys, 1 aggs)\n"
                "    RowSource(url_stream)")
        assert db.explain("EXPLAIN urls_now") == expected

    def test_example_4_channel_resolves_to_source_cq(self):
        db = Database()
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        db.execute(EXAMPLE_4A)
        db.execute(EXAMPLE_4B)
        assert db.explain("EXPLAIN urls_channel") == \
            db.explain("EXPLAIN urls_now")

    def test_example_5_window_join(self):
        db = Database()
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        db.execute(EXAMPLE_4A)
        if HAS_NUMPY:
            expected = (
                "Project [mode=iterator]\n"
                "  HashJoin(INNER, 1 keys, build=right) [mode=iterator]\n"
                "    Project [mode=iterator]\n"
                "      BatchAggregate(0 keys, 1 aggs) [mode=batch]\n"
                "        BatchSource(urls_now) [mode=batch]\n"
                "    SeqScan(urls_archive, ~0 rows) [mode=iterator]")
        else:
            expected = (
                "Project\n"
                "  HashJoin(INNER, 1 keys, build=right)\n"
                "    Project\n"
                "      HashAggregate(0 keys, 1 aggs)\n"
                "        RowSource(urls_now)\n"
                "    SeqScan(urls_archive, ~0 rows)")
        assert db.explain("EXPLAIN " + EXAMPLE_5.strip()) == expected

    def test_unknown_target_errors(self):
        db = Database()
        with pytest.raises(ExecutionError):
            db.explain("EXPLAIN nothing_here")

    def test_analyze_running_derived_stream_has_live_stats(self):
        db = Database()
        make_pipeline(db)
        text = db.explain("EXPLAIN ANALYZE urls_now")
        source = "BatchSource" if HAS_NUMPY else "RowSource"
        assert f"{source}(url_stream) (actual rows=50 loops=" in text
        assert "never executed" not in text
        # nonzero wall time on at least the aggregate
        assert " time=" in text

    def test_analyze_matches_operator_stats_view(self):
        db = Database()
        make_pipeline(db)
        text = db.explain("EXPLAIN ANALYZE urls_now")
        rows = db.query(
            "SELECT operator, tuples_out, calls FROM repro_operator_stats "
            "WHERE cq = 'derived:urls_now' ORDER BY op_id").rows
        assert rows, "operator stats view is empty for a live CQ"
        for operator, tuples_out, calls in rows:
            assert f"{operator} (actual rows={tuples_out} " \
                   f"loops={calls}" in text

    def test_analyze_snapshot_query_executes_once(self):
        db = Database()
        make_pipeline(db)
        text = db.explain("EXPLAIN ANALYZE SELECT count(*) "
                          "FROM urls_archive")
        assert "loops=1" in text
        assert "never executed" not in text

    def test_analyze_via_query_returns_plan_rows(self):
        db = Database()
        db.execute(URL_STREAM)
        result = db.query("EXPLAIN SELECT * FROM url_stream "
                          "<VISIBLE '1 minute'>")
        assert result.columns == ["QUERY PLAN"]
        assert len(result.rows) >= 1

    def test_disabled_observability_analyze_reports_uninstrumented(self):
        db = Database(observability=False)
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        text = db.explain("EXPLAIN ANALYZE urls_now")
        assert "never executed" in text


# ---------------------------------------------------------------------------
# stats surfaces over a live pipeline
# ---------------------------------------------------------------------------


class TestStatsViews:
    def test_cq_stats_counts_windows_and_latency(self):
        db = Database()
        make_pipeline(db)
        (row,) = db.query(
            "SELECT windows, rows_scanned, rows_out, avg_window_ms, "
            "max_window_ms, slow_windows FROM repro_cq_stats "
            "WHERE name = 'derived:urls_now'").rows
        windows, scanned, out, avg_ms, max_ms, slow = row
        assert windows > 0 and scanned >= 50 and out > 0
        assert 0 < avg_ms <= max_ms
        assert slow == 0

    def test_metrics_view_reflects_engine_counters(self):
        db = Database()
        make_pipeline(db)
        rows = {r[0]: r for r in db.query(
            "SELECT name, kind, value, count FROM repro_metrics").rows}
        assert rows["stream.tuples_in"][2] == 50.0
        assert rows["cq.window_seconds"][3] > 0      # histogram count
        assert rows["channel.flush_seconds"][3] > 0  # archive channel ran
        assert rows["buffer.hits"][1] == "gauge"
        assert rows["wal.appends"][2] > 0

    def test_operator_timing_is_sampled_per_window(self):
        from repro.streaming.cq import ContinuousQuery
        db = Database()
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        every = ContinuousQuery.TIMING_SAMPLE_EVERY
        rows = [(f"s{i}.com", 10.0 + i * 60.0, "ip")
                for i in range(2 * every)]
        db.insert_stream("url_stream", rows)
        db.advance_streams(rows[-1][1] + 600.0)
        windows = db.query("SELECT windows FROM repro_cq_stats").scalar()
        assert windows > every
        (calls,) = db.query(
            "SELECT calls FROM repro_operator_stats "
            "WHERE cq = 'derived:urls_now' AND op_id = 0").rows[0]
        # instrumented on every Nth evaluation only
        assert 0 < calls < windows
        assert calls == (windows + every - 1) // every

    def test_disabled_observability_surfaces_are_empty(self):
        db = Database(observability=False)
        make_pipeline(db)
        assert db.query("SELECT * FROM repro_metrics").rows == []
        assert db.query("SELECT * FROM repro_traces").rows == []
        (tuples_out,) = db.query(
            "SELECT tuples_out FROM repro_operator_stats "
            "WHERE op_id = 0").rows[0]
        assert tuples_out is None

    def test_mode_and_batch_rows_columns(self):
        db = Database()
        make_pipeline(db)
        rows = db.query(
            "SELECT operator, mode, batch_rows FROM repro_operator_stats "
            "WHERE cq = 'derived:urls_now' ORDER BY op_id").rows
        modes = {operator: mode for operator, mode, _ in rows}
        counts = {operator: n for operator, _, n in rows}
        assert modes["Project"] == "iterator"
        assert counts["Project"] == 0
        if HAS_NUMPY:
            assert modes["BatchSource(url_stream)"] == "batch"
            # every ingested row flowed through the vectorized path
            assert counts["BatchSource(url_stream)"] == 50
            assert counts["BatchAggregate(1 keys, 1 aggs)"] == 50
        else:
            assert set(modes.values()) == {"iterator"}
            assert set(counts.values()) == {0}


class TestSlowWindowLog:
    def test_slow_window_log_fires(self, caplog):
        db = Database()
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        db.execute("SET slow_window_ms = 0")
        with caplog.at_level("WARNING", logger="repro.obs"):
            db.insert_stream(
                "url_stream", [("a.com", 10.0, "ip")])
            db.advance_streams(400.0)
        assert any("slow window" in r.message for r in caplog.records)
        slow = db.query("SELECT slow_windows FROM repro_cq_stats").scalar()
        assert slow > 0

    def test_threshold_filters(self):
        db = Database()
        db.execute(URL_STREAM)
        db.execute(EXAMPLE_3)
        db.execute("SET slow_window_ms = 60000")  # nothing is that slow
        db.insert_stream("url_stream", [("a.com", 10.0, "ip")])
        db.advance_streams(400.0)
        assert db.query(
            "SELECT slow_windows FROM repro_cq_stats").scalar() == 0
        db.execute("SET slow_window_ms = OFF")
        assert db.query("SHOW slow_window_ms").scalar() == "off"
        with pytest.raises(ExecutionError):
            db.execute("SET slow_window_ms = 'fast'")


# ---------------------------------------------------------------------------
# remote surfaces
# ---------------------------------------------------------------------------


class TestRemoteMetrics:
    def test_metrics_op_round_trips_all_surfaces(self):
        inner = Database(trace_sample_rate=1.0)
        with ServerThread(db=inner) as st:
            conn = client.connect(st.host, st.port)
            conn.execute(URL_STREAM)
            conn.execute(EXAMPLE_3)
            conn.ingest("url_stream",
                        [[f"site{i}.com", 10.0 + i, "10.0.0.1"]
                         for i in range(20)])
            conn.advance(400.0)
            scraped = conn.metrics()
            assert set(scraped) == {"repro_metrics", "repro_cq_stats",
                                    "repro_operator_stats", "repro_traces"}
            metrics = {r[0]: r for r in scraped["repro_metrics"].rows}
            assert metrics["stream.tuples_in"][2] == 20.0
            # the remote scrape and the local view agree
            local = inner.query(
                "SELECT operator, tuples_out FROM repro_operator_stats "
                "ORDER BY op_id").rows
            idx = scraped["repro_operator_stats"].columns.index
            remote = [(r[idx("operator")], r[idx("tuples_out")])
                      for r in scraped["repro_operator_stats"].rows]
            assert remote == [(op, n) for op, n in local]
            assert scraped["repro_traces"].rows
            conn.close()

    def test_frame_counters_visible_in_scrape(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            conn.ping()
            scraped = conn.metrics()
            metrics = {r[0]: r for r in scraped["repro_metrics"].rows}
            assert metrics["server.frames_in"][2] >= 2
            assert metrics["server.sessions"][2] == 1
            conn.close()

    def test_remote_explain_analyze_matches_local(self):
        inner = Database()
        with ServerThread(db=inner) as st:
            conn = client.connect(st.host, st.port)
            conn.execute(URL_STREAM)
            conn.execute(EXAMPLE_3)
            conn.ingest("url_stream",
                        [["a.com", 10.0, "ip"], ["b.com", 11.0, "ip"]])
            conn.advance(400.0)
            remote = conn.query("EXPLAIN ANALYZE urls_now")
            local = inner.explain("EXPLAIN ANALYZE urls_now")
            assert [r[0] for r in remote.rows] == local.splitlines()
            assert "actual rows=2" in local
            conn.close()


# ---------------------------------------------------------------------------
# connection view: monotonic idleness, wall-clock display
# ---------------------------------------------------------------------------


class TestConnectionClocks:
    def test_last_seen_is_wall_clock_and_idle_monotonic(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            (idle, last_seen, connected) = conn.query(
                "SELECT idle_seconds, last_seen, connected_seconds "
                "FROM repro_connections").rows[0]
            assert idle < 2.0
            assert connected >= 0.0
            assert abs(last_seen - time.time()) < 5.0
            conn.close()
