"""Failure-injection tests: the engine must stay consistent when sinks,
channels, or user expressions blow up mid-stream."""

import pytest

from repro import Database
from repro.errors import ConstraintError, ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE STREAM s (k varchar(10), v integer, "
                     "ts timestamp CQTIME USER)")
    return database


class TestChannelFailures:
    def test_constraint_violation_aborts_whole_window(self, db):
        # the archive's varchar(3) is narrower than some stream values
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE arch (k varchar(3), c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)
        db.insert_stream("s", [("ok", 1, 5.0), ("toolong", 1, 6.0)])
        with pytest.raises(ConstraintError):
            db.advance_streams(60.0)
        # atomicity: the short key must not be half-archived
        assert db.table_rows("arch") == []
        channel = db.catalog.get_channel("ch")
        assert channel.stats.rows_written == 0

    def test_pipeline_recovers_after_failed_window(self, db):
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE arch (k varchar(3), c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)
        db.insert_stream("s", [("toolong", 1, 5.0)])
        with pytest.raises(ConstraintError):
            db.advance_streams(60.0)
        # subsequent well-formed windows still archive
        db.insert_stream("s", [("ok", 1, 65.0)])
        db.advance_streams(120.0)
        assert ("ok", 1, 120.0) in db.table_rows("arch")


class TestExpressionFailures:
    def test_division_by_zero_in_cq(self, db):
        sub = db.subscribe(
            "SELECT sum(v) / count(*) FROM s <VISIBLE '1 minute'>")
        db.insert_stream("s", [("a", 10, 5.0)])
        db.advance_streams(60.0)
        assert sub.rows() == [(10.0,)]

    def test_division_by_zero_in_snapshot(self, db):
        db.execute("CREATE TABLE t (a integer)")
        db.insert_table("t", [(0,)])
        with pytest.raises(ExecutionError):
            db.query("SELECT 1 / a FROM t")

    def test_failed_statement_does_not_poison_session(self, db):
        db.execute("CREATE TABLE t (a integer)")
        db.insert_table("t", [(0,)])
        with pytest.raises(ExecutionError):
            db.query("SELECT 1 / a FROM t")
        assert db.query("SELECT count(*) FROM t").scalar() == 1

    def test_runtime_error_in_transform_propagates_to_inserter(self, db):
        db.subscribe("SELECT 10 / v FROM s WHERE v < 10")
        with pytest.raises(ExecutionError):
            db.insert_stream("s", [("a", 0, 5.0)])
        # stream state remains usable
        assert db.insert_stream("s", [("a", 2, 6.0)]) == 1


class TestSubscriptionLifecycle:
    def test_closed_subscription_detaches_cleanly(self, db):
        sub = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        sub.close()
        sub.close()  # idempotent
        db.insert_stream("s", [("a", 1, 5.0)])
        db.advance_streams(60.0)
        assert sub.poll() == []

    def test_context_manager_closes(self, db):
        with db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>") as sub:
            pass
        assert sub.closed

    def test_one_failing_subscriber_does_not_corrupt_stream_counts(self, db):
        good = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        stream = db.get_stream("s")

        class Bomb:
            def on_tuple(self, row, t):
                raise RuntimeError("boom")

            def on_heartbeat(self, t):
                pass

            def on_flush(self):
                pass
        stream.subscribe(Bomb())
        with pytest.raises(RuntimeError):
            db.insert_stream("s", [("a", 1, 5.0)])
        stream.unsubscribe(stream.consumers[-1])
        db.insert_stream("s", [("a", 1, 6.0)])
        db.advance_streams(60.0)
        # the good CQ saw both tuples (first delivery preceded the bomb)
        assert good.rows() == [(2,)]
        assert stream.delivery_errors == 1

    def test_fan_out_completes_before_error_is_reported(self, db):
        """A raising subscriber must not starve subscribers after it:
        delivery reaches everyone first, the error is reported last."""
        stream = db.get_stream("s")

        class Bomb:
            def on_tuple(self, row, t):
                raise RuntimeError("boom")

            def on_heartbeat(self, t):
                pass

            def on_flush(self):
                pass

        bomb = Bomb()
        stream.subscribe(bomb)  # BEFORE the good CQ in fan-out order
        late = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        with pytest.raises(RuntimeError):
            db.insert_stream("s", [("a", 1, 5.0)])
        stream.unsubscribe(bomb)
        db.advance_streams(60.0)
        # the CQ subscribed *after* the bomb still received the tuple
        assert late.rows() == [(1,)]

    def test_all_subscriber_errors_collected_first_raised(self, db):
        stream = db.get_stream("s")

        class Bomb:
            def __init__(self, tag):
                self.tag = tag

            def on_tuple(self, row, t):
                raise RuntimeError(self.tag)

            def on_heartbeat(self, t):
                pass

            def on_flush(self):
                pass

        stream.subscribe(Bomb("first"))
        stream.subscribe(Bomb("second"))
        with pytest.raises(RuntimeError, match="first"):
            db.insert_stream("s", [("a", 1, 5.0)])
        assert stream.delivery_errors == 2


class TestDeepPipelines:
    def test_three_stage_derived_chain(self, db):
        """derived stream of a derived stream of a derived stream."""
        db.execute("CREATE STREAM stage1 AS SELECT k, count(*) c, "
                   "cq_close(*) ts FROM s <VISIBLE '1 minute'> GROUP BY k")
        db.execute("CREATE STREAM stage2 AS SELECT sum(c) total, "
                   "cq_close(*) ts FROM stage1 <slices 1 windows>")
        db.execute("CREATE STREAM stage3 AS SELECT total * 2, cq_close(*) "
                   "FROM stage2 <slices 1 windows>")
        sub = db.subscribe("SELECT * FROM stage3 <slices 1 windows>")
        db.insert_stream("s", [("a", 1, 5.0), ("b", 1, 6.0), ("a", 1, 7.0)])
        db.advance_streams(60.0)
        rows = sub.rows()
        assert rows == [(6, 60.0)]

    def test_two_channels_one_derived_stream(self, db):
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE history (k varchar(10), c bigint, ts timestamp);
            CREATE TABLE latest (k varchar(10), c bigint, ts timestamp);
            CREATE CHANNEL h_ch FROM agg INTO history APPEND;
            CREATE CHANNEL l_ch FROM agg INTO latest REPLACE;
        """)
        db.insert_stream("s", [("a", 1, 5.0)])
        db.advance_streams(60.0)
        db.insert_stream("s", [("b", 1, 65.0)])
        db.advance_streams(120.0)
        assert len(db.table_rows("history")) == 2
        assert db.table_rows("latest") == [("b", 1, 120.0)]

    def test_many_subscriptions_fan_out(self, db):
        subs = [db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
                for _ in range(20)]
        db.insert_stream("s", [("a", 1, 5.0)])
        db.advance_streams(60.0)
        for sub in subs:
            assert sub.rows() == [(1,)]
