"""End-to-end continuous queries through the Database facade."""

import pytest

from repro import Database
from repro.errors import PlanningError, WindowError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE STREAM clicks (url varchar(100), "
        "ts timestamp CQTIME USER, ip varchar(20))")
    return database


def feed(db, events):
    db.insert_stream("clicks", events)


class TestBasicCQ:
    def test_select_on_stream_returns_subscription(self, db):
        from repro.core.results import Subscription
        sub = db.execute("SELECT url, count(*) FROM clicks "
                         "<VISIBLE '1 minute'> GROUP BY url")
        assert isinstance(sub, Subscription)

    def test_subscribe_rejects_snapshot(self, db):
        db.execute("CREATE TABLE t (a integer)")
        with pytest.raises(PlanningError):
            db.subscribe("SELECT * FROM t")

    def test_query_rejects_cq(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT * FROM clicks <VISIBLE '1 minute'>")

    def test_tumbling_count(self, db):
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE '1 minute'>")
        feed(db, [("/a", 10.0, "x"), ("/b", 20.0, "x")])
        db.advance_streams(60.0)
        feed(db, [("/c", 70.0, "x")])
        db.advance_streams(120.0)
        windows = sub.poll()
        assert [(w.close_time, w.rows) for w in windows] == [
            (60.0, [(2,)]), (120.0, [(1,)])]

    def test_group_by_top_k(self, db):
        sub = db.subscribe(
            "SELECT url, count(*) c FROM clicks <VISIBLE '1 minute'> "
            "GROUP BY url ORDER BY c DESC LIMIT 2")
        feed(db, [("/a", 1.0, "x")] * 3 + [("/b", 2.0, "x")] * 2
             + [("/c", 3.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [("/a", 3), ("/b", 2)]

    def test_sliding_window_overlap(self, db):
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE '2 minutes' "
            "ADVANCE '1 minute'>")
        feed(db, [("/a", 30.0, "x")])
        db.advance_streams(180.0)
        counts = [w.rows[0][0] for w in sub.poll()]
        # the row is visible in the windows closing at 60 and 120
        assert counts == [1, 1, 0]

    def test_where_filter(self, db):
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE '1 minute'> "
            "WHERE url LIKE '/a%'")
        feed(db, [("/a1", 1.0, "x"), ("/b", 2.0, "x"), ("/a2", 3.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [(2,)]

    def test_cq_close_column(self, db):
        sub = db.subscribe(
            "SELECT count(*), cq_close(*) FROM clicks <VISIBLE '1 minute'>")
        feed(db, [("/a", 5.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [(1, 60.0)]

    def test_row_window_cq(self, db):
        sub = db.subscribe(
            "SELECT count(*) FROM clicks <VISIBLE 3 ROWS ADVANCE 3 ROWS>")
        feed(db, [("/a", float(i), "x") for i in range(6)])
        assert sub.rows() == [(3,), (3,)]

    def test_close_stops_updates(self, db):
        sub = db.subscribe("SELECT count(*) FROM clicks <VISIBLE '1 minute'>")
        feed(db, [("/a", 5.0, "x")])
        db.advance_streams(60.0)
        sub.close()
        feed(db, [("/b", 70.0, "x")])
        db.advance_streams(120.0)
        assert [w.close_time for w in sub.poll()] == [60.0]

    def test_latest(self, db):
        sub = db.subscribe("SELECT count(*) FROM clicks <VISIBLE '1 minute'>")
        feed(db, [("/a", 5.0, "x")])
        db.advance_streams(180.0)
        latest = sub.latest()
        assert latest.close_time == 180.0
        assert sub.poll() == []  # drained

    def test_flush_streams_forces_final_window(self, db):
        sub = db.subscribe("SELECT count(*) FROM clicks <VISIBLE '1 minute'>")
        feed(db, [("/a", 5.0, "x")])
        db.flush_streams()
        assert sub.rows() == [(1,)]

    def test_avg_and_expressions(self, db):
        db.execute("CREATE STREAM nums (v double, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT avg(v) * 2, max(v) - min(v) FROM nums <VISIBLE '1 minute'>")
        db.insert_stream("nums", [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        db.advance_streams(60.0)
        assert sub.rows() == [(4.0, 2.0)]


class TestTransformMode:
    def test_windowless_filter(self, db):
        sub = db.subscribe("SELECT url, ts FROM clicks WHERE url = '/hot'")
        feed(db, [("/cold", 1.0, "x"), ("/hot", 2.0, "x"),
                  ("/hot", 3.0, "x")])
        rows = sub.rows()
        assert rows == [("/hot", 2.0), ("/hot", 3.0)]

    def test_windowless_projection(self, db):
        sub = db.subscribe("SELECT upper(url) FROM clicks")
        feed(db, [("/a", 1.0, "x")])
        assert sub.rows() == [("/A",)]

    def test_windowless_aggregate_rejected(self, db):
        with pytest.raises((WindowError, PlanningError)):
            db.subscribe("SELECT count(*) FROM clicks")

    def test_windowless_order_rejected(self, db):
        with pytest.raises(WindowError):
            db.subscribe("SELECT url FROM clicks ORDER BY url")


class TestStreamTableJoin:
    def test_enrichment_join(self, db):
        db.execute("CREATE TABLE pages (url varchar(100), owner varchar(20))")
        db.insert_table("pages", [("/a", "ann"), ("/b", "bob")])
        sub = db.subscribe(
            "SELECT p.owner, count(*) FROM clicks <VISIBLE '1 minute'> c, "
            "pages p WHERE c.url = p.url GROUP BY p.owner ORDER BY p.owner")
        feed(db, [("/a", 1.0, "x"), ("/a", 2.0, "x"), ("/b", 3.0, "x"),
                  ("/unknown", 4.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [("ann", 2), ("bob", 1)]

    def test_join_sees_window_consistent_snapshot(self, db):
        db.execute("CREATE TABLE dims (url varchar(100), w integer)")
        db.insert_table("dims", [("/a", 1)])
        sub = db.subscribe(
            "SELECT d.w, count(*) FROM clicks <VISIBLE '1 minute'> c, dims d "
            "WHERE c.url = d.url GROUP BY d.w")
        feed(db, [("/a", 10.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [(1, 1)]
        # update the dimension mid-window...
        db.execute("UPDATE dims SET w = 99 WHERE url = '/a'")
        feed(db, [("/a", 70.0, "x")])
        db.advance_streams(120.0)
        # ...the *next* window boundary refreshes and sees it
        assert sub.rows() == [(99, 1)]

    def test_three_streams_rejected(self, db):
        db.execute("CREATE STREAM o1 (v integer, ts timestamp CQTIME USER)")
        db.execute("CREATE STREAM o2 (v integer, ts timestamp CQTIME USER)")
        with pytest.raises(PlanningError):
            db.subscribe(
                "SELECT count(*) FROM clicks <VISIBLE '1 minute'> a, "
                "o1 <VISIBLE '1 minute'> b, o2 <VISIBLE '1 minute'> c "
                "WHERE a.ts = b.ts AND b.ts = c.ts")


class TestDerivedStreamsAndViews:
    def test_derived_stream_always_on(self, db):
        db.execute("CREATE STREAM per_minute AS SELECT url, count(*) c, "
                   "cq_close(*) FROM clicks <VISIBLE '1 minute'> GROUP BY url")
        # events flow before anyone subscribes downstream: it still runs
        feed(db, [("/a", 1.0, "x")])
        db.advance_streams(60.0)
        derived = db.catalog.get_relation("per_minute")
        assert derived.batches_out == 1

    def test_cq_over_derived_stream(self, db):
        db.execute("CREATE STREAM per_minute AS SELECT url, count(*) c, "
                   "cq_close(*) ts FROM clicks <VISIBLE '1 minute'> GROUP BY url")
        sub = db.subscribe(
            "SELECT sum(c) FROM per_minute <slices 1 windows>")
        feed(db, [("/a", 1.0, "x"), ("/b", 2.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [(2,)]

    def test_insert_into_derived_rejected(self, db):
        from repro.errors import StreamingError
        db.execute("CREATE STREAM d AS SELECT count(*), cq_close(*) "
                   "FROM clicks <VISIBLE '1 minute'>")
        with pytest.raises(StreamingError):
            db.insert_stream("d", [(1, 1.0)])

    def test_streaming_view_lazy(self, db):
        db.execute("CREATE VIEW hot AS SELECT url, ts, ip FROM clicks "
                   "WHERE url LIKE '/hot%'")
        # the view alone runs nothing; a CQ over it instantiates it
        sub = db.subscribe(
            "SELECT url, count(*) FROM hot <VISIBLE '1 minute'> GROUP BY url")
        feed(db, [("/hot1", 1.0, "x"), ("/cold", 2.0, "x")])
        db.advance_streams(60.0)
        assert sub.rows() == [("/hot1", 1)]

    def test_drop_derived_stream_stops_cq(self, db):
        db.execute("CREATE STREAM d AS SELECT count(*), cq_close(*) "
                   "FROM clicks <VISIBLE '1 minute'>")
        derived = db.catalog.get_relation("d")
        db.execute("DROP STREAM d")
        feed(db, [("/a", 1.0, "x")])
        db.advance_streams(60.0)
        assert derived.batches_out == 0


class TestChannelsAndActiveTables:
    def setup_pipeline(self, db, mode="APPEND"):
        db.execute("CREATE STREAM agg AS SELECT url, count(*) scnt, "
                   "cq_close(*) FROM clicks <VISIBLE '1 minute'> GROUP BY url")
        db.execute("CREATE TABLE archive (url varchar(100), scnt integer, "
                   "stime timestamp)")
        db.execute(f"CREATE CHANNEL ch FROM agg INTO archive {mode}")

    def test_append_channel(self, db):
        self.setup_pipeline(db)
        feed(db, [("/a", 1.0, "x"), ("/a", 2.0, "x")])
        db.advance_streams(60.0)
        feed(db, [("/a", 70.0, "x")])
        db.advance_streams(120.0)
        assert db.table_rows("archive") == [
            ("/a", 2, 60.0), ("/a", 1, 120.0)]

    def test_replace_channel(self, db):
        self.setup_pipeline(db, mode="REPLACE")
        feed(db, [("/a", 1.0, "x"), ("/a", 2.0, "x")])
        db.advance_streams(60.0)
        feed(db, [("/b", 70.0, "x")])
        db.advance_streams(120.0)
        assert db.table_rows("archive") == [("/b", 1, 120.0)]

    def test_active_table_is_queryable_sql_table(self, db):
        self.setup_pipeline(db)
        feed(db, [("/a", 1.0, "x"), ("/b", 2.0, "x")])
        db.advance_streams(60.0)
        result = db.query(
            "SELECT url, sum(scnt) FROM archive GROUP BY url ORDER BY url")
        assert result.rows == [("/a", 1), ("/b", 1)]

    def test_active_table_can_be_indexed(self, db):
        self.setup_pipeline(db)
        db.execute("CREATE INDEX arch_url ON archive (url)")
        feed(db, [("/a", 1.0, "x")])
        db.advance_streams(60.0)
        plan = db.explain("SELECT scnt FROM archive WHERE url = '/a'")
        assert "IndexScan" in plan
        assert db.query("SELECT scnt FROM archive WHERE url = '/a'").rows \
            == [(1,)]

    def test_channel_arity_mismatch_rejected(self, db):
        from repro.errors import ConstraintError
        db.execute("CREATE STREAM agg AS SELECT count(*), cq_close(*) "
                   "FROM clicks <VISIBLE '1 minute'>")
        db.execute("CREATE TABLE bad (a integer)")
        with pytest.raises(ConstraintError):
            db.execute("CREATE CHANNEL ch FROM agg INTO bad APPEND")

    def test_channel_stats(self, db):
        self.setup_pipeline(db)
        feed(db, [("/a", 1.0, "x")])
        db.advance_streams(120.0)
        channel = db.catalog.get_channel("ch")
        assert channel.stats.batches == 2   # one window had data, one empty
        assert channel.stats.rows_written == 1
