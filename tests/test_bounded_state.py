"""Soak/invariant tests: runtime state must stay bounded under load.

A continuous system that leaks window-buffer or slice state dies in
production; these tests drive moderate volumes and assert the in-memory
structures stay at their theoretical bounds.
"""

import pytest

from repro import Database


class TestWindowBufferBounds:
    def test_sliding_window_buffer_bounded(self):
        db = Database()
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '5 minutes' ADVANCE '1 minute'>")
        op = sub.cq._window_op
        rate = 20  # per minute
        for minute in range(60):
            db.insert_stream("s", [
                (i, minute * 60.0 + i * (60.0 / rate)) for i in range(rate)])
            # buffer may never exceed one VISIBLE of rows plus in-flight
            assert op.buffered <= 5 * rate + rate
        assert sub.stats.windows_evaluated >= 59

    def test_slack_buffer_drains(self):
        db = Database(stream_slack=30.0)
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        stream = db.get_stream("s")
        for i in range(5000):
            stream.insert((i, float(i)))
            assert len(stream._pending) <= 32  # ~slack x 1 event/second
        assert stream.watermark >= 4969.0

    def test_retention_tail_bounded(self):
        db = Database(stream_retention=60.0)
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        stream = db.get_stream("s")
        for i in range(5000):
            stream.insert((i, float(i)))
        assert len(stream._tail) <= 62


class TestSharedSliceBounds:
    def test_slice_store_bounded_by_max_window(self):
        db = Database(share_slices=True)
        db.execute("CREATE STREAM s (k varchar(5), ts timestamp CQTIME USER)")
        for minutes in (1, 5, 10):
            db.subscribe(
                f"SELECT k, count(*) FROM s <VISIBLE '{minutes} minutes' "
                "ADVANCE '1 minute'> GROUP BY k")
        aggregator = db.runtime.aggregators()[0]
        for minute in range(120):
            db.insert_stream(
                "s", [("a", minute * 60.0 + i) for i in range(10)])
            db.advance_streams((minute + 1) * 60.0)
            # at most max-visible-slices slices retained
            assert len(aggregator._slices) <= 10

    def test_consumer_detach_shrinks_retention(self):
        db = Database(share_slices=True)
        db.execute("CREATE STREAM s (k varchar(5), ts timestamp CQTIME USER)")
        wide = db.subscribe(
            "SELECT k, count(*) FROM s <VISIBLE '30 minutes' "
            "ADVANCE '1 minute'> GROUP BY k")
        db.subscribe(
            "SELECT k, count(*) FROM s <VISIBLE '2 minutes' "
            "ADVANCE '1 minute'> GROUP BY k")
        aggregator = db.runtime.aggregators()[0]
        assert aggregator._max_visible_slices() == 30
        wide.close()
        assert aggregator._max_visible_slices() == 2


class TestTwoStreamPendingBounds:
    def test_pending_pairs_drained(self):
        db = Database()
        db.execute("CREATE STREAM a (v integer, ts timestamp CQTIME USER)")
        db.execute("CREATE STREAM b (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT count(*) FROM a <VISIBLE '1 minute'> x, "
            "b <VISIBLE '1 minute'> y WHERE x.v = y.v")
        cq = sub.cq
        for minute in range(100):
            t = minute * 60.0 + 1.0
            db.insert_stream("a", [(minute, t)])
            db.insert_stream("b", [(minute, t + 0.5)])
            db.advance_streams((minute + 1) * 60.0)
            assert len(cq._pending[0]) <= 1
            assert len(cq._pending[1]) <= 1
        assert cq.stats.windows_evaluated == 100


class TestVersionChurnBounded:
    def test_vacuumed_replace_table_stays_small(self):
        db = Database()
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        db.execute_script("""
            CREATE STREAM latest AS SELECT count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'>;
            CREATE TABLE board (c bigint, ts timestamp);
            CREATE CHANNEL ch FROM latest INTO board REPLACE;
        """)
        table = db.get_table("board")
        for minute in range(200):
            db.insert_stream("s", [(1, minute * 60.0 + 1)])
            db.advance_streams((minute + 1) * 60.0)
            if minute % 10 == 9:
                db.vacuum("board")
                assert table.heap.row_count <= 11
        assert len(db.table_rows("board")) == 1
