"""Tests for the catalog registry and schema machinery."""

import pytest

from repro.catalog import Catalog, Column, Schema
from repro.catalog import catalog as cat
from repro.errors import (
    BindError,
    ConstraintError,
    DuplicateObjectError,
    UnknownObjectError,
)
from repro.types.datatypes import IntegerType, TimestampType, VarcharType


def schema():
    return Schema([
        Column("id", IntegerType(), not_null=True),
        Column("name", VarcharType(10)),
        Column("ts", TimestampType(), cqtime="user"),
    ])


class TestSchema:
    def test_names_and_lookup(self):
        s = schema()
        assert s.names() == ["id", "name", "ts"]
        assert s.index_of("NAME") == 1  # case-insensitive

    def test_unknown_column(self):
        with pytest.raises(BindError):
            schema().index_of("missing")

    def test_has_column(self):
        assert schema().has_column("ID")
        assert not schema().has_column("nope")

    def test_cqtime_index(self):
        assert schema().cqtime_index() == 2
        plain = Schema([Column("a", IntegerType())])
        assert plain.cqtime_index() is None

    def test_coerce_row(self):
        row = schema().coerce_row(("5", 123, "1970-01-01 00:01:00"))
        assert row == (5, "123", 60.0)

    def test_coerce_arity(self):
        with pytest.raises(ConstraintError):
            schema().coerce_row((1,))

    def test_coerce_not_null(self):
        with pytest.raises(ConstraintError):
            schema().coerce_row((None, "x", 0.0))

    def test_project(self):
        projected = schema().project(["ts", "id"])
        assert projected.names() == ["ts", "id"]

    def test_rename(self):
        renamed = schema().rename(["x", "y", "z"])
        assert renamed.names() == ["x", "y", "z"]
        assert renamed.column("z").cqtime == "user"

    def test_rename_arity(self):
        with pytest.raises(BindError):
            schema().rename(["only_one"])

    def test_duplicate_names_first_wins(self):
        s = Schema([Column("a", IntegerType()), Column("a", VarcharType(5))])
        assert s.index_of("a") == 0


class TestCatalog:
    def test_relation_lifecycle(self):
        c = Catalog()
        c.add_relation("t", cat.TABLE, "obj")
        assert c.has_relation("T")
        assert c.relation_kind("t") == cat.TABLE
        assert c.get_relation("t") == "obj"
        c.drop_relation("t")
        assert not c.has_relation("t")

    def test_duplicate_relation(self):
        c = Catalog()
        c.add_relation("t", cat.TABLE, "obj")
        with pytest.raises(DuplicateObjectError):
            c.add_relation("T", cat.STREAM, "other")

    def test_kind_mismatch(self):
        c = Catalog()
        c.add_relation("t", cat.TABLE, "obj")
        with pytest.raises(UnknownObjectError):
            c.get_relation("t", cat.STREAM)

    def test_unknown_relation(self):
        with pytest.raises(UnknownObjectError):
            Catalog().get_relation("nope")

    def test_relations_filtered_by_kind(self):
        c = Catalog()
        c.add_relation("t", cat.TABLE, 1)
        c.add_relation("s", cat.STREAM, 2)
        assert dict(c.relations(cat.TABLE)) == {"t": 1}
        assert len(dict(c.relations())) == 2

    def test_channel_registry(self):
        c = Catalog()
        c.add_channel("ch", "channel-obj")
        assert c.has_channel("CH")
        assert c.get_channel("ch") == "channel-obj"
        with pytest.raises(DuplicateObjectError):
            c.add_channel("ch", "again")
        c.drop_channel("ch")
        with pytest.raises(UnknownObjectError):
            c.get_channel("ch")

    def test_index_registry(self):
        class FakeIndex:
            table_name = "t"
        c = Catalog()
        c.add_index("i", FakeIndex())
        assert c.has_index("i")
        assert len(c.indexes_on("T")) == 1
        assert c.indexes_on("other") == []
        c.drop_index("i")
        assert not c.has_index("i")


class TestSubscriptionListen:
    def test_push_callback(self):
        from repro import Database
        db = Database()
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        received = []
        sub.listen(received.append)
        db.insert_stream("s", [(1, 5.0)])
        db.advance_streams(60.0)
        assert len(received) == 1
        assert received[0].rows == [(1,)]
        # polling still works independently
        assert sub.rows() == [(1,)]
