"""Tests for aggregate functions — especially the merge property that
slice sharing depends on: splitting the input anywhere and merging the
partial states must equal aggregating the whole input at once."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import BindError
from repro.exec.aggregates import is_aggregate_name, make_aggregate


def run(agg, values):
    state = agg.create()
    for value in values:
        state = agg.add(state, value)
    return agg.result(state)


def run_split(agg, values, split):
    left = agg.create()
    for value in values[:split]:
        left = agg.add(left, value)
    right = agg.create()
    for value in values[split:]:
        right = agg.add(right, value)
    return agg.result(agg.merge(left, right))


class TestBasics:
    def test_count_star(self):
        agg = make_aggregate("count", star=True)
        assert run(agg, [1, None, 3]) == 3

    def test_count_skips_nulls(self):
        agg = make_aggregate("count")
        assert run(agg, [1, None, 3]) == 2

    def test_count_distinct(self):
        agg = make_aggregate("count", distinct=True)
        assert run(agg, [1, 1, 2, None, 2]) == 2

    def test_sum(self):
        assert run(make_aggregate("sum"), [1, 2, 3]) == 6

    def test_sum_empty_is_null(self):
        assert run(make_aggregate("sum"), []) is None

    def test_sum_ignores_nulls(self):
        assert run(make_aggregate("sum"), [None, 5, None]) == 5

    def test_avg(self):
        assert run(make_aggregate("avg"), [2, 4, 6]) == 4.0

    def test_avg_empty_is_null(self):
        assert run(make_aggregate("avg"), []) is None

    def test_min_max(self):
        assert run(make_aggregate("min"), [3, 1, 2]) == 1
        assert run(make_aggregate("max"), [3, 1, 2]) == 3

    def test_min_strings(self):
        assert run(make_aggregate("min"), ["b", "a", "c"]) == "a"

    def test_stddev(self):
        result = run(make_aggregate("stddev"), [2, 4, 4, 4, 5, 5, 7, 9])
        assert result == pytest.approx(2.138089935299395)

    def test_stddev_pop(self):
        result = run(make_aggregate("stddev_pop"), [2, 4, 4, 4, 5, 5, 7, 9])
        assert result == pytest.approx(2.0)

    def test_variance_single_value_null(self):
        assert run(make_aggregate("variance"), [5]) is None

    def test_bool_and_or(self):
        assert run(make_aggregate("bool_and"), [True, True]) is True
        assert run(make_aggregate("bool_and"), [True, False]) is False
        assert run(make_aggregate("bool_or"), [False, True]) is True
        assert run(make_aggregate("bool_or"), [False, False]) is False

    def test_string_agg(self):
        assert run(make_aggregate("string_agg"), ["a", "b"]) == "a,b"
        assert run(make_aggregate("string_agg"), []) is None

    def test_unknown_aggregate(self):
        with pytest.raises(BindError):
            make_aggregate("mode")

    def test_median(self):
        assert run(make_aggregate("median"), [1, 9, 5]) == 5
        assert run(make_aggregate("median"), [1, 9, 5, 3]) == 4.0
        assert run(make_aggregate("median"), []) is None
        assert run(make_aggregate("median"), [None, 7]) == 7

    def test_distinct_only_for_count(self):
        with pytest.raises(BindError):
            make_aggregate("sum", distinct=True)

    def test_is_aggregate_name(self):
        assert is_aggregate_name("COUNT")
        assert is_aggregate_name("sum")
        assert not is_aggregate_name("lower")


NAMES = ["count", "sum", "avg", "min", "max", "stddev", "variance"]

values_strategy = st.lists(
    st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000)),
    max_size=40,
)


class TestMergeEquivalence:
    """merge(partial(a), partial(b)) == whole(a + b) — the slice-sharing
    correctness property (paper refs [4, 12])."""

    @given(values_strategy, st.integers(min_value=0, max_value=40))
    def test_numeric_aggregates(self, values, split):
        split = min(split, len(values))
        for name in NAMES:
            agg = make_aggregate(name)
            whole = run(agg, values)
            merged = run_split(agg, values, split)
            if whole is None or merged is None:
                assert whole == merged, name
            else:
                assert math.isclose(whole, merged, rel_tol=1e-9,
                                    abs_tol=1e-9), name

    @given(values_strategy, st.integers(min_value=0, max_value=40))
    def test_count_star(self, values, split):
        split = min(split, len(values))
        agg = make_aggregate("count", star=True)
        assert run(agg, values) == run_split(agg, values, split)

    @given(st.lists(st.one_of(st.none(),
                              st.integers(min_value=0, max_value=20)),
                    max_size=40),
           st.integers(min_value=0, max_value=40))
    def test_count_distinct(self, values, split):
        split = min(split, len(values))
        agg = make_aggregate("count", distinct=True)
        assert run(agg, values) == run_split(agg, values, split)

    @given(st.lists(st.booleans(), max_size=20),
           st.integers(min_value=0, max_value=20))
    def test_bools(self, values, split):
        split = min(split, len(values))
        for name in ("bool_and", "bool_or"):
            agg = make_aggregate(name)
            assert run(agg, values) == run_split(agg, values, split), name

    @given(values_strategy)
    def test_merge_with_empty_is_identity(self, values):
        for name in NAMES:
            agg = make_aggregate(name)
            state = agg.create()
            for value in values:
                state = agg.add(state, value)
            merged = agg.merge(state, agg.create())
            whole, with_empty = agg.result(state), agg.result(merged)
            if whole is None or with_empty is None:
                assert whole == with_empty, name
            else:
                assert math.isclose(whole, with_empty, rel_tol=1e-9,
                                    abs_tol=1e-9), name

    @given(values_strategy, st.integers(min_value=0, max_value=40))
    def test_merge_does_not_mutate_inputs(self, values, split):
        """Sharing merges the same slice states many times; merge must
        be pure."""
        split = min(split, len(values))
        for name in NAMES + ["string_agg"]:
            agg = make_aggregate(name)
            left = agg.create()
            for value in values[:split]:
                left = agg.add(left, value)
            right = agg.create()
            for value in values[split:]:
                right = agg.add(right, value)
            first = agg.result(agg.merge(left, right))
            second = agg.result(agg.merge(left, right))  # merge again
            assert first == second, name
