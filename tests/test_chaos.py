"""Chaos harness: the clickstream pipeline under randomized faults.

The paper's pitch is an *always-on* engine (Sections 1, 3.1): ingest,
window, archive — continuously, in production, where disks hiccup and
user expressions blow up.  This suite runs the Example-1 clickstream
pipeline twice — once fault-free (the reference), once with a seeded
:class:`~repro.faults.FaultInjector` arming five distinct fault types —
and checks that the supervised run

* never leaks a fault to ``insert_stream``/``advance_streams`` callers,
* is bit-for-bit deterministic under a fixed seed,
* archives *exactly* the reference rows for every window no dead letter
  touched (unaffected-window consistency),
* accounts for every missing or short window in ``repro_dead_letters``,
* leaves a WAL whose replay is a durable prefix of the archive even
  with torn records in the log.

The injector is disarmed once ingest finishes — the storm passes before
the verification queries run — but its statistics are snapshotted first.
"""

from collections import Counter

import pytest

from repro import Database
from repro.faults import FaultInjector
from repro.workloads.clickstream import ClickstreamGenerator, URL_STREAM_DDL

SEED = 2009          # fixed: the whole suite must replay identically
N_EVENTS = 1500
BATCH = 50

PIPELINE_DDL = """
CREATE STREAM url_counts AS
    SELECT url, count(*) hits, cq_close(*)
    FROM url_stream <VISIBLE '1 minute'> GROUP BY url;
CREATE TABLE url_archive (url varchar(1024), hits bigint, stime timestamp);
CREATE CHANNEL url_channel FROM url_counts INTO url_archive APPEND;
CREATE TABLE url_latest (url varchar(1024), hits bigint, stime timestamp);
CREATE CHANNEL latest_channel FROM url_counts INTO url_latest REPLACE;
"""

#: the five fault types the chaos run injects: disk I/O error, torn WAL
#: record, poison window (a CQ's plan raising), raising subscriber
#: during fan-out, and a failing channel archive write.  ``after=4`` on
#: the torn write spares the DDL records at the head of the log so the
#: replay test exercises data truncation, not schema loss.
CHAOS_FAULTS = [
    ("disk.read_page", 0.50, 3, 0),
    ("wal.torn_write", 0.30, 2, 4),
    ("cq.window", 0.35, 3, 0),
    ("stream.deliver", 0.003, 3, 0),
    ("channel.write", 0.30, 2, 0),
]


def make_injector():
    injector = FaultInjector(SEED)
    for name, probability, count, after in CHAOS_FAULTS:
        injector.arm(name, probability=probability, count=count, after=after)
    return injector


def workload():
    gen = ClickstreamGenerator(n_urls=200, n_clients=8,
                               rate_per_second=4.0, seed=7)
    return gen.batch(N_EVENTS)


def run(injector):
    """One end-to-end pipeline run; faults must never escape to us.

    ``buffer_pages=2`` keeps the pool smaller than the archive so the
    REPLACE channel's scans genuinely hit the (faulty) disk.
    """
    db = Database(supervised=True, fault_injector=injector,
                  stream_retention=3600.0, buffer_pages=2)
    db.execute(URL_STREAM_DDL)
    db.execute_script(PIPELINE_DDL)
    events = workload()
    for i in range(0, len(events), BATCH):
        db.insert_stream("url_stream", events[i:i + BATCH])
    db.advance_streams(events[-1][1] + 120.0)
    stats, view = None, None
    if injector is not None:
        stats = {name: fires for name, _armed, _p, _ev, fires
                 in injector.stats_rows()}
        view = db.query("SELECT crashpoint, fires FROM repro_crashpoints "
                        "WHERE fires > 0").rows
        injector.disarm()
    return db, stats, view


def by_close(rows):
    """archive rows -> {close_time: multiset of (url, hits)}"""
    out = {}
    for url, hits, stime in rows:
        out.setdefault(stime, Counter())[(url, hits)] += 1
    return out


@pytest.fixture(scope="module")
def chaos():
    return run(make_injector())   # an escaping fault fails the suite here


@pytest.fixture(scope="module")
def reference():
    db, _stats, _view = run(None)
    return db


class TestChaosRun:
    def test_all_five_fault_types_fired(self, chaos):
        _db, fired, _view = chaos
        for name, _probability, _count, _after in CHAOS_FAULTS:
            assert fired[name] >= 1, f"{name} never fired; retune the seed"
        assert len(CHAOS_FAULTS) >= 5

    def test_no_fault_reached_the_inserter(self, chaos):
        """run() completing is the real assertion; double-check that the
        supervisor, not the caller, absorbed every failure."""
        db, fired, _view = chaos
        assert sum(fired.values()) >= 5
        assert db.supervisor.dead_letter_log  # something was quarantined
        stream = db.get_stream("url_stream")
        assert stream.tuples_in == N_EVENTS

    def test_chaos_run_is_deterministic(self, chaos):
        db_a, _fired, _view = chaos
        db_b, _fired_b, _view_b = run(make_injector())
        assert sorted(db_a.table_rows("url_archive")) \
            == sorted(db_b.table_rows("url_archive"))
        letters = lambda db: [(l.source, l.kind, l.reason)  # noqa: E731
                              for l in db.supervisor.dead_letter_log]
        assert letters(db_a) == letters(db_b)

    def test_unaffected_windows_match_reference_exactly(self, chaos,
                                                        reference):
        """Every window no dead letter touched is byte-identical to the
        fault-free run."""
        db, _fired, _view = chaos
        ref = by_close(reference.table_rows("url_archive"))
        got = by_close(db.table_rows("url_archive"))
        affected = {l.close_time for l in db.supervisor.dead_letter_log
                    if l.close_time is not None}
        # a cold restart (no recoverable state) loses in-flight window
        # content; everything from the first quarantine onward is then
        # suspect, so widen the affected set past any restart-loss
        if any(l.kind == "restart-loss"
               for l in db.supervisor.dead_letter_log):
            horizon = min(affected) if affected else 0.0
            affected |= {c for c in got if c >= horizon}
        clean = [c for c in ref if c not in affected]
        assert clean, "chaos affected every window; lower the fault rates"
        for close in clean:
            assert got.get(close) == ref[close], f"window {close} diverged"
        # and nothing was fabricated: every clean chaos window exists in
        # the reference too
        for close in got:
            if close not in affected:
                assert close in ref

    def test_every_lost_window_is_accounted_in_dead_letters(self, chaos,
                                                            reference):
        db, _fired, _view = chaos
        ref = by_close(reference.table_rows("url_archive"))
        got = by_close(db.table_rows("url_archive"))
        accounted = {l.close_time for l in db.supervisor.dead_letter_log
                     if l.close_time is not None}
        lossy = any(l.kind == "restart-loss"
                    for l in db.supervisor.dead_letter_log)
        for close in ref:
            if got.get(close) != ref[close]:
                assert close in accounted or lossy, \
                    f"window {close} lost without a dead letter"

    def test_dead_letters_queryable_through_system_view(self, chaos):
        db, _fired, _view = chaos
        result = db.query("SELECT count(*) FROM repro_dead_letters")
        assert result.scalar() == len(db.supervisor.dead_letter_log)
        kinds = {row[0] for row in db.query(
            "SELECT kind FROM repro_dead_letters").rows}
        assert len(kinds) >= 2  # several distinct failure modes surfaced
        names = [row[0] for row in db.query(
            "SELECT name FROM repro_supervisor_status").rows]
        assert "url_channel" in names and "latest_channel" in names

    def test_crashpoint_stats_visible(self, chaos):
        """The ``repro_crashpoints`` view (snapshotted while the storm
        was still live) agrees with the injector's own counters."""
        _db, fired, view = chaos
        assert {name for name, _fires in view} \
            == {name for name, fires in fired.items() if fires > 0}

    def test_wal_replay_after_torn_writes_is_a_prefix(self, chaos):
        """Torn WAL records truncate replay at the first invalid record:
        the recovered archive is a (possibly shorter) prefix of what the
        live database archived — never divergent, never fabricated."""
        db, fired, _view = chaos
        wal = db.storage.wal
        assert fired["wal.torn_write"] >= 1 and wal.torn_records >= 1
        recovered = Database.recover_from_wal(wal)
        live = Counter(db.table_rows("url_archive"))
        replayed = Counter(recovered.table_rows("url_archive"))
        assert replayed <= live          # durable prefix, nothing invented
        assert sum(replayed.values()) < sum(live.values())
