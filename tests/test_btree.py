"""Tests for the B+tree index, including a model-based hypothesis check."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(order=4):
    return BPlusTree("idx", "t", ["k"], order=order)


class TestBasics:
    def test_insert_search(self):
        tree = make_tree()
        tree.insert(("a",), (0, 0))
        assert tree.search(("a",)) == [(0, 0)]

    def test_missing_key(self):
        assert make_tree().search(("zz",)) == []

    def test_duplicates_bucket(self):
        tree = make_tree()
        tree.insert((1,), (0, 0))
        tree.insert((1,), (0, 1))
        assert sorted(tree.search((1,))) == [(0, 0), (0, 1)]

    def test_len_counts_entries(self):
        tree = make_tree()
        for i in range(10):
            tree.insert((i,), (0, i))
        assert len(tree) == 10

    def test_delete(self):
        tree = make_tree()
        tree.insert((1,), (0, 0))
        tree.insert((1,), (0, 1))
        assert tree.delete((1,), (0, 0))
        assert tree.search((1,)) == [(0, 1)]
        assert len(tree) == 1

    def test_delete_missing_returns_false(self):
        tree = make_tree()
        tree.insert((1,), (0, 0))
        assert not tree.delete((2,), (0, 0))
        assert not tree.delete((1,), (9, 9))

    def test_splits_preserve_search(self):
        tree = make_tree(order=4)
        for i in range(200):
            tree.insert((i,), (0, i))
        for i in range(200):
            assert tree.search((i,)) == [(0, i)]

    def test_items_in_key_order(self):
        tree = make_tree(order=4)
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert((k,), (0, k))
        assert [rid[1] for rid in tree.items()] == list(range(100))

    def test_string_keys(self):
        tree = make_tree()
        for word in ["delta", "alpha", "charlie", "bravo"]:
            tree.insert((word,), (0, word))
        assert [r[1] for r in tree.items()] == [
            "alpha", "bravo", "charlie", "delta"]

    def test_composite_keys(self):
        tree = BPlusTree("idx", "t", ["a", "b"], order=4)
        tree.insert((1, "x"), (0, 0))
        tree.insert((1, "y"), (0, 1))
        assert tree.search((1, "x")) == [(0, 0)]

    def test_null_keys_sort_last(self):
        tree = make_tree()
        tree.insert((None,), (0, 0))
        tree.insert((1,), (0, 1))
        assert [r[1] for r in tree.items()] == [1, 0]


class TestRangeScan:
    def setup_method(self):
        self.tree = make_tree(order=4)
        for i in range(0, 100, 2):  # even numbers
            self.tree.insert((i,), (0, i))

    def scan(self, lo, hi, li=True, hi_inc=True):
        lo_t = (lo,) if lo is not None else None
        hi_t = (hi,) if hi is not None else None
        return [r[1] for r in self.tree.range_scan(lo_t, hi_t, li, hi_inc)]

    def test_inclusive_range(self):
        assert self.scan(10, 20) == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self):
        assert self.scan(10, 20, li=False, hi_inc=False) == [12, 14, 16, 18]

    def test_open_low(self):
        assert self.scan(None, 6) == [0, 2, 4, 6]

    def test_open_high(self):
        assert self.scan(94, None) == [94, 96, 98]

    def test_unbounded(self):
        assert len(self.scan(None, None)) == 50

    def test_bounds_not_present(self):
        assert self.scan(11, 15) == [12, 14]

    def test_empty_range(self):
        assert self.scan(21, 21) == []


class TestBufferPoolCharging:
    def test_lookups_charge_io(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=128)
        tree = BPlusTree("idx", "t", ["k"], pool=pool, file_id=7, order=8)
        for i in range(500):
            tree.insert((i,), (0, i))
        pool.clear()
        before = disk.snapshot()
        tree.search((250,))
        delta = disk.snapshot() - before
        # a cold point lookup reads root-to-leaf, far fewer than all nodes
        assert 1 <= delta.pages_read <= 6

    def test_warm_lookups_free(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=128)
        tree = BPlusTree("idx", "t", ["k"], pool=pool, file_id=7, order=8)
        for i in range(100):
            tree.insert((i,), (0, i))
        tree.search((50,))
        before = disk.snapshot()
        tree.search((50,))
        assert (disk.snapshot() - before).pages_read == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]),
              st.integers(min_value=0, max_value=30)),
    max_size=200,
))
def test_model_based_against_dict(operations):
    """The tree must agree with a dict-of-lists model under random ops."""
    tree = make_tree(order=4)
    model = {}
    counter = 0
    for op, key in operations:
        if op == "insert":
            rid = (0, counter)
            counter += 1
            tree.insert((key,), rid)
            model.setdefault(key, []).append(rid)
        else:
            rids = model.get(key)
            if rids:
                rid = rids.pop(0)
                assert tree.delete((key,), rid)
                if not rids:
                    del model[key]
            else:
                assert not tree.delete((key,), (9, 9))
    for key, rids in model.items():
        assert sorted(tree.search((key,))) == sorted(rids)
    expected = sorted(
        (key, rid) for key, rids in model.items() for rid in rids)
    actual = []
    for rid in tree.items():
        actual.append(rid)
    assert len(actual) == len(expected)
    assert len(tree) == len(expected)
