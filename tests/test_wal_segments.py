"""Tests for the WAL lifecycle: segmented log, checkpoint-anchored
compaction, archive-backed standby catch-up, online backup + PITR, and
integrity scrubbing.

Layered like the subsystem: :class:`SegmentedLog`/`WriteAheadLog`
mechanics run against bare objects; compaction/backup/scrub run against
embedded databases opened on a data dir; archive catch-up runs against a
real primary/standby server pair over loopback TCP.
"""

import json
import os
import time

import pytest

import repro.client as client
from repro.core.database import Database
from repro.errors import FaultInjected, ReplicationGapError, WALError
from repro.faults import FaultInjector
from repro.replication.bootstrap import open_database
from repro.server import ServerThread
from repro.storage.lifecycle import restore_backup
from repro.storage.segments import MANIFEST_NAME, segment_name
from repro.storage.wal import WriteAheadLog


def make_wal(tmp_path, segment_bytes=256, faults=None):
    return WriteAheadLog(
        faults=faults, path=str(tmp_path / "wal"),
        segment_bytes=segment_bytes,
        archive_dir=str(tmp_path / "wal_archive"))


def fill(wal, n, start_tx=1, flush=True):
    """Append n committed single-row transactions (2 records each),
    flushing per commit as real transactions do (rolls happen at flush
    boundaries)."""
    for i in range(n):
        txid = start_tx + i
        wal.append(txid, "insert", "t", rid=(0, txid),
                   after=(txid, "payload-" * 4))
        wal.append(txid, "commit")
        if flush:
            wal.flush()


def boot(tmp_path, name="node", segment_bytes=512, **options):
    return open_database(data_dir=str(tmp_path / name),
                         wal_segment_bytes=segment_bytes, **options)


def insert_rows(db, lo, hi):
    values = ", ".join(f"({i}, 'row-{i:04d}-padding')"
                       for i in range(lo, hi))
    db.execute(f"INSERT INTO t VALUES {values}")


def wait_until(check, timeout=10.0, interval=0.03):
    deadline = time.monotonic() + timeout
    error = None
    while time.monotonic() < deadline:
        try:
            value = check()
        except Exception as exc:       # retried until the deadline
            error = exc
            value = None
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"condition not reached (last error: {error})")


# ---------------------------------------------------------------------------
# segment rolling + reload
# ---------------------------------------------------------------------------


class TestSegmentRolling:
    def test_records_roll_into_multiple_segments(self, tmp_path):
        wal = make_wal(tmp_path)
        fill(wal, 20)
        names = sorted(os.listdir(tmp_path / "wal"))
        segments = [n for n in names if n.endswith(".log")]
        assert len(segments) >= 3
        assert segments[0] == segment_name(1)
        assert MANIFEST_NAME in names
        assert wal.segments.rolls >= 2
        wal.close()

    def test_reload_preserves_all_records(self, tmp_path):
        wal = make_wal(tmp_path)
        fill(wal, 20)
        head = wal.head_lsn
        replayed = wal.replay()
        wal.close()

        back = make_wal(tmp_path)
        assert back.head_lsn == head
        assert [r.lsn for r in back.records] == list(range(1, head + 1))
        assert back.replay() == replayed
        back.close()

    def test_torn_tail_in_active_segment_truncates(self, tmp_path):
        faults = FaultInjector(5)
        wal = make_wal(tmp_path, faults=faults)
        fill(wal, 8)
        head = wal.head_lsn
        wal.append(99, "insert", "t", rid=(0, 99), after=(99, "x"))
        faults.arm("wal.torn_write", probability=1.0, count=1)
        wal.flush()
        wal.close()

        back = make_wal(tmp_path)
        assert back.head_lsn == head     # torn record dropped
        # and physically dropped: the rewritten active file has no tail
        assert back.first_corrupt_lsn() is None
        back.close()

    def test_corrupt_sealed_segment_refuses_to_load(self, tmp_path):
        wal = make_wal(tmp_path)
        fill(wal, 20)
        wal.close()
        # corrupt the first (sealed) segment mid-file
        path = tmp_path / "wal" / segment_name(1)
        lines = path.read_text().splitlines(keepends=True)
        assert len(lines) > 1
        lines[0] = "{not json\n"
        path.write_text("".join(lines))
        with pytest.raises(WALError) as info:
            make_wal(tmp_path)
        assert "sealed" in str(info.value)

    def test_single_file_mode_unchanged(self, tmp_path):
        """No segment_bytes: the original wal.jsonl file layout."""
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path=path)
        fill(wal, 4)
        wal.close()
        assert os.path.isfile(path)
        back = WriteAheadLog(path=path)
        assert back.head_lsn == 8
        assert back.segments is None
        back.close()


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------


class TestCompaction:
    def test_compaction_bounds_live_wal_bytes(self, tmp_path):
        """The acceptance property: under steady ingest + periodic
        compaction, live WAL bytes stay bounded while the total logged
        history (live + archive) keeps growing."""
        db = boot(tmp_path, segment_bytes=2048)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        max_live = 0
        for round_no in range(30):
            insert_rows(db, round_no * 10, round_no * 10 + 10)
            db.compact_wal()
            max_live = max(max_live,
                           db.storage.wal.segments.live_bytes())
        segs = db.storage.wal.segments
        assert len(segs.archived_segments()) >= 5
        # bounded: active segment + at most a couple sealed-not-yet-
        # compacted ones, never the whole history
        assert max_live <= 4 * 2048
        assert segs.archive_bytes() > max_live
        # memory mirrors the live directory after trimming
        wal = db.storage.wal
        assert wal.compacted_below > 1
        if wal.records:
            assert wal.records[0].lsn == wal.compacted_below
        else:                 # everything archived: memory fully drained
            assert wal.compacted_below == wal.head_lsn + 1
        db.close()

    def test_boot_replays_archive_plus_live(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 40)
        db.compact_wal()
        assert db.storage.wal.compacted_below > 1
        rows = sorted(db.table_rows("t"))
        db.close()

        back = boot(tmp_path, segment_bytes=512)
        assert sorted(back.table_rows("t")) == rows
        # after recovery, archived records were released from memory
        assert back.storage.wal.compacted_below > 1
        back.close()

    def test_records_from_below_compaction_raises_typed_gap(
            self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 40)
        db.compact_wal()
        wal = db.storage.wal
        with pytest.raises(ReplicationGapError) as info:
            wal.records_from(1)
        gap = info.value
        assert gap.missing_from == 1
        assert gap.missing_to == wal.compacted_below - 1
        # the archive answers exactly the missing range...
        archived = wal.archived_wire_records(gap.missing_from,
                                             gap.missing_to)
        assert [w["lsn"] for w in archived] \
            == list(range(1, wal.compacted_below))
        # ...and memory continues contiguously from there
        insert_rows(db, 40, 45)
        tail = wal.records_from(gap.missing_to + 1)
        assert tail[0].lsn == wal.compacted_below
        db.close()

    def test_gap_beyond_archive_is_unrecoverable(self, tmp_path):
        wal = make_wal(tmp_path)
        fill(wal, 4)
        with pytest.raises(ReplicationGapError):
            wal.archived_wire_records(1, 2)   # archive is empty
        wal.close()

    def test_checkpoint_anchor_pins_compaction(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 5)
        wal = db.storage.wal
        wal.append(0, "cq_checkpoint", "derived:reporting",
                   payload={"state": 1})
        wal.flush()
        ckpt_lsn = wal._checkpoint_lsns["derived:reporting"]
        insert_rows(db, 5, 40)
        db.compact_wal()
        # nothing at or above the anchor was archived
        assert wal.compacted_below <= ckpt_lsn
        assert wal.latest_checkpoint("derived:reporting") == {"state": 1}
        db.close()

    def test_logged_drop_releases_checkpoint_anchor(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        wal = db.storage.wal
        wal.append(0, "cq_checkpoint", "derived:reporting",
                   payload={"state": 1})
        wal.append(0, "ddl_obj",
                   payload={"op": "drop", "name": "reporting"})
        wal.flush()
        insert_rows(db, 0, 40)
        db.compact_wal()
        # the dropped CQ no longer pins retention
        assert "derived:reporting" not in wal._checkpoint_lsns
        assert wal.compacted_below > 2
        db.close()


class TestCheckpointSegmentBoundaries:
    """latest_checkpoint at segment boundaries: the checkpoint as the
    last record of a sealed segment and as the first record of a new
    one, both in memory and after its segment was archived."""

    def checkpointed_wal(self, tmp_path, boundary):
        wal = make_wal(tmp_path, segment_bytes=10_000)
        fill(wal, 4)
        if boundary == "last-of-sealed":
            wal.append(0, "cq_checkpoint", "cq1", payload={"n": 1})
            wal.flush()
            wal.roll_segment(force=True)       # checkpoint seals its segment
        else:
            wal.roll_segment(force=True)
            wal.append(0, "cq_checkpoint", "cq1", payload={"n": 1})
            wal.flush()                        # checkpoint opens the next
        fill(wal, 4, start_tx=100)
        return wal

    @pytest.mark.parametrize("boundary",
                             ["last-of-sealed", "first-of-new"])
    def test_found_in_memory(self, tmp_path, boundary):
        wal = self.checkpointed_wal(tmp_path, boundary)
        assert wal.latest_checkpoint("cq1") == {"n": 1}
        wal.close()

    @pytest.mark.parametrize("boundary",
                             ["last-of-sealed", "first-of-new"])
    def test_survives_reload(self, tmp_path, boundary):
        wal = self.checkpointed_wal(tmp_path, boundary)
        wal.close()
        back = make_wal(tmp_path, segment_bytes=10_000)
        assert back.latest_checkpoint("cq1") == {"n": 1}
        back.close()

    def test_found_in_archive_after_its_segment_compacts(self, tmp_path):
        """A standby compacts without live CQs; at promotion the
        checkpoint may only exist in the archive — the tracked anchor
        LSN reads exactly that record back."""
        wal = self.checkpointed_wal(tmp_path, "last-of-sealed")
        ckpt_lsn = wal._checkpoint_lsns["cq1"]
        for seg in list(wal.segments.sealed_live_segments()):
            wal.segments.archive_segment(seg)
        wal.release_archived()
        assert wal.compacted_below > ckpt_lsn
        assert wal.latest_checkpoint("cq1") == {"n": 1}
        wal.close()


# ---------------------------------------------------------------------------
# archive-backed standby catch-up
# ---------------------------------------------------------------------------


class TestArchiveCatchup:
    def test_standby_attach_below_retention_served_from_archive(
            self, tmp_path):
        with ServerThread(data_dir=str(tmp_path / "prim"),
                          wal_segment_bytes=512,
                          stream_retention=600.0) as primary:
            pconn = client.connect(primary.host, primary.port)
            pconn.execute("CREATE TABLE t (a integer, b varchar(40))")
            for lo in range(0, 60, 10):
                pconn.execute(", ".join(
                    [f"INSERT INTO t VALUES ({lo}, 'seed-{lo}')"]
                    + [f"({i}, 'row-{i:04d}')"
                       for i in range(lo + 1, lo + 10)]))
            server = primary.server
            server.executor.submit(
                server.db.wal_lifecycle.compact).result(30.0)
            assert server.db.storage.wal.compacted_below > 1
            expected = sorted(pconn.query("SELECT a, b FROM t").rows)

            stby = ServerThread(
                data_dir=str(tmp_path / "stby"),
                standby_of=f"{primary.host}:{primary.port}",
                stream_retention=600.0, auto_promote=False,
                heartbeat_interval=0.15)
            stby.start()
            try:
                sconn = client.connect(stby.host, stby.port)
                wait_until(lambda: sorted(sconn.query(
                    "SELECT a, b FROM t").rows) == expected)
                # no duplicate apply across the archive/memory seam
                assert sconn.query(
                    "SELECT count(*) FROM t").scalar() == len(expected)
                assert server._replication.archive_serves >= 1
                sconn.close()
            finally:
                stby.stop()
            pconn.close()

    def test_gap_error_carries_range_over_the_wire(self, tmp_path):
        """When even the archive cannot help, the standby gets a typed
        ReplicationGapError naming the missing range."""
        with ServerThread(data_dir=str(tmp_path / "prim"),
                          wal_segment_bytes=512,
                          stream_retention=600.0) as primary:
            pconn = client.connect(primary.host, primary.port)
            pconn.execute("CREATE TABLE t (a integer, b varchar(40))")
            for lo in range(0, 40, 10):
                values = ", ".join(f"({i}, 'row-{i:04d}')"
                                   for i in range(lo, lo + 10))
                pconn.execute(f"INSERT INTO t VALUES {values}")
            server = primary.server
            server.executor.submit(
                server.db.wal_lifecycle.compact).result(30.0)
            wal = server.db.storage.wal
            assert wal.compacted_below > 1
            # destroy the archive out from under the primary
            server.executor.submit(
                lambda: [wal.segments.quarantine_segment(seg)
                         for seg in list(
                             wal.segments.archived_segments())]).result(30.0)
            with pytest.raises(ReplicationGapError) as info:
                pconn._request("replicate", from_lsn=1)
            assert info.value.missing_from == 1
            assert info.value.missing_to >= 1
            pconn.close()


# ---------------------------------------------------------------------------
# online backup + point-in-time restore
# ---------------------------------------------------------------------------


class TestBackupRestore:
    def test_backup_into_fresh_dir_restores_backup_state(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 20)
        info = db.backup(str(tmp_path / "bkp"))
        assert info["head_lsn"] == db.storage.wal.durable_lsn
        assert info["segments"] >= 1
        insert_rows(db, 20, 30)          # after the backup: not in it
        db.close()

        stats = restore_backup(str(tmp_path / "bkp"),
                               str(tmp_path / "node2"))
        assert stats["head_lsn"] == info["head_lsn"]
        back = boot(tmp_path, name="node2", segment_bytes=512)
        assert sorted(r[0] for r in back.table_rows("t")) \
            == list(range(20))
        back.close()

    def test_restore_in_place_merges_post_backup_tail(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 20)
        db.backup(str(tmp_path / "bkp"))
        insert_rows(db, 20, 30)
        db.storage.wal.flush()
        head = db.storage.wal.durable_lsn
        db.close()

        stats = restore_backup(str(tmp_path / "bkp"),
                               str(tmp_path / "node"))
        assert stats["head_lsn"] == head   # surviving tail was merged
        back = boot(tmp_path, segment_bytes=512)
        assert sorted(r[0] for r in back.table_rows("t")) \
            == list(range(30))
        back.close()

    def test_point_in_time_restore_discards_past_until_lsn(
            self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 10)
        db.backup(str(tmp_path / "bkp"))
        insert_rows(db, 10, 20)
        db.storage.wal.flush()
        mark = db.storage.wal.durable_lsn  # commit boundary
        insert_rows(db, 20, 30)            # to be discarded by PITR
        db.close()

        stats = restore_backup(str(tmp_path / "bkp"),
                               str(tmp_path / "node"), until_lsn=mark)
        assert stats["head_lsn"] == mark
        back = boot(tmp_path, segment_bytes=512)
        assert sorted(r[0] for r in back.table_rows("t")) \
            == list(range(20))
        assert back.storage.wal.head_lsn == mark
        back.close()

    def test_restore_refuses_incomplete_backup(self, tmp_path):
        incomplete = tmp_path / "halfbkp" / "wal"
        incomplete.mkdir(parents=True)
        (incomplete / segment_name(1)).write_text("")
        with pytest.raises(WALError) as info:
            restore_backup(str(tmp_path / "halfbkp"),
                           str(tmp_path / "node"))
        assert "not a complete backup" in str(info.value)

    def test_backup_requires_segmented_wal(self):
        db = Database()
        with pytest.raises(WALError) as info:
            db.backup("/tmp/nowhere")
        assert "segmented" in str(info.value)

    def test_restore_refuses_unbridgeable_gap(self, tmp_path):
        db = boot(tmp_path, segment_bytes=256)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        for lo in range(0, 30, 5):       # several flushes → several rolls
            insert_rows(db, lo, lo + 5)
        db.backup(str(tmp_path / "bkp"))
        db.close()
        # punch a hole: delete a middle segment from the backup
        wal_dir = tmp_path / "bkp" / "wal"
        segments = sorted(os.listdir(wal_dir))
        assert len(segments) >= 3
        os.remove(wal_dir / segments[1])
        with pytest.raises(WALError) as info:
            restore_backup(str(tmp_path / "bkp"),
                           str(tmp_path / "node2"))
        assert "missing lsns" in str(info.value)


# ---------------------------------------------------------------------------
# scrubbing
# ---------------------------------------------------------------------------


def corrupt_segment_file(path):
    """Flip a record's content without touching its stored CRC."""
    lines = path.read_text().splitlines()
    fields = json.loads(lines[0])
    fields["after"] = ["tampered", 666]
    lines[0] = json.dumps(fields)
    path.write_text("\n".join(lines) + "\n")


class TestScrub:
    def test_clean_scrub_counts_everything(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 20)
        db.compact_wal()
        stats = db.scrub_wal()
        assert stats["segments_corrupt"] == 0
        assert stats["segments_ok"] >= 1
        assert stats["records"] > 0
        assert stats["heap_rows"] == 20
        assert stats["heap_errors"] == 0
        row = db.query("SELECT mode, scrubs, scrub_errors, quarantined "
                       "FROM repro_storage").rows[0]
        assert row == ("segmented", 1, 0, 0)
        db.close()

    def test_corrupt_archived_segment_quarantined(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512, supervised=True)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 40)
        db.compact_wal()
        archive_dir = tmp_path / "node" / "wal_archive"
        victim = sorted(p for p in os.listdir(archive_dir)
                        if p.endswith(".log"))[0]
        corrupt_segment_file(archive_dir / victim)

        stats = db.scrub_wal()
        assert stats["quarantined"] == 1
        assert not os.path.exists(archive_dir / victim)
        assert os.path.exists(archive_dir / "quarantine" / victim)
        # loudly reported: a dead letter names the segment
        letters = db.supervisor.dead_letter_rows()
        assert any(kind == "scrub" and victim in reason
                   for _seq, _src, kind, reason, *_rest in letters)
        # the quarantined range is now a typed gap, not silent data
        with pytest.raises(ReplicationGapError):
            db.storage.wal.archived_wire_records(1)
        db.close()

    def test_corrupt_sealed_live_segment_reported_not_quarantined(
            self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 40)          # several sealed live segments
        wal_dir = tmp_path / "node" / "wal"
        sealed = sorted(p for p in os.listdir(wal_dir)
                        if p.endswith(".log"))[0]
        corrupt_segment_file(wal_dir / sealed)

        stats = db.scrub_wal()
        assert stats["segments_corrupt"] == 1
        assert stats["quarantined"] == 0
        # the replay prefix is never silently dropped
        assert os.path.exists(wal_dir / sealed)
        assert db.wal_lifecycle.scrub_errors == 1
        assert "restore from backup" in db.wal_lifecycle.last_error
        db.close()


# ---------------------------------------------------------------------------
# crashpoints: compaction / backup / roll / scrub die at the worst moment
# ---------------------------------------------------------------------------


class TestLifecycleCrashpoints:
    def test_crash_during_segment_roll_loses_nothing(self, tmp_path):
        faults = FaultInjector(3)
        wal = make_wal(tmp_path, segment_bytes=128, faults=faults)
        fill(wal, 4)
        head = wal.head_lsn
        faults.arm("wal.segment_roll", probability=1.0, count=1)
        wal.append(50, "insert", "t", rid=(0, 50), after=(50, "x" * 80))
        wal.append(50, "commit")
        with pytest.raises(FaultInjected):
            wal.flush()                  # records durable, roll dies
        head = wal.head_lsn

        back = make_wal(tmp_path, segment_bytes=128)
        assert back.head_lsn == head     # nothing lost
        assert [r.lsn for r in back.records] == list(range(1, head + 1))
        fill(back, 2, start_tx=60)       # the next flush re-rolls
        assert back.segments.rolls >= 1
        back.close()

    def test_crash_mid_compaction_preserves_every_record(self, tmp_path):
        faults = FaultInjector(3)
        db = boot(tmp_path, segment_bytes=256, fault_injector=faults)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 30)
        rows = sorted(db.table_rows("t"))
        head = db.storage.wal.durable_lsn
        faults.arm("wal.compact", probability=1.0, count=1)
        with pytest.raises(FaultInjected):
            db.compact_wal()
        # the victim segment now exists in BOTH directories
        live = set(os.listdir(tmp_path / "node" / "wal"))
        archived = set(os.listdir(tmp_path / "node" / "wal_archive"))
        dup = live & archived
        assert dup

        # crash: reopen without a clean close — load() reconciles
        back = boot(tmp_path, segment_bytes=256)
        assert sorted(back.table_rows("t")) == rows
        wal = back.storage.wal
        assert wal.head_lsn == head
        # the duplicate was resolved to the archive copy, exactly once
        live = set(os.listdir(tmp_path / "node" / "wal"))
        archived = set(os.listdir(tmp_path / "node" / "wal_archive"))
        assert not (live & archived)
        assert dup <= archived
        back.close()

    def test_crashed_compaction_resumes_and_standby_converges(
            self, tmp_path):
        """kill mid-compaction on a serving primary: the next pass
        resumes, and a standby attaching afterwards gets every record
        exactly once through the archive + memory seam."""
        faults = FaultInjector(9)
        with ServerThread(data_dir=str(tmp_path / "prim"),
                          wal_segment_bytes=512, stream_retention=600.0,
                          fault_injector=faults) as primary:
            pconn = client.connect(primary.host, primary.port)
            pconn.execute("CREATE TABLE t (a integer, b varchar(40))")
            for lo in range(0, 40, 10):
                values = ", ".join(f"({i}, 'row-{i:04d}')"
                                   for i in range(lo, lo + 10))
                pconn.execute(f"INSERT INTO t VALUES {values}")
            server = primary.server
            faults.arm("wal.compact", probability=1.0, count=1)
            with pytest.raises(FaultInjected):
                server.executor.submit(
                    server.db.wal_lifecycle.compact).result(30.0)
            # retry (armed count exhausted): compaction resumes
            result = server.executor.submit(
                server.db.wal_lifecycle.compact).result(30.0)
            assert result["archived"] >= 1
            expected = sorted(pconn.query("SELECT a, b FROM t").rows)

            stby = ServerThread(
                data_dir=str(tmp_path / "stby"),
                standby_of=f"{primary.host}:{primary.port}",
                stream_retention=600.0, auto_promote=False,
                heartbeat_interval=0.15)
            stby.start()
            try:
                sconn = client.connect(stby.host, stby.port)
                wait_until(lambda: sorted(sconn.query(
                    "SELECT a, b FROM t").rows) == expected)
                assert sconn.query("SELECT count(*) FROM t").scalar() \
                    == len(expected)     # no duplicate apply
                sconn.close()
            finally:
                stby.stop()
            pconn.close()

    def test_crash_mid_backup_yields_refusable_backup(self, tmp_path):
        faults = FaultInjector(3)
        db = boot(tmp_path, segment_bytes=256, fault_injector=faults)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 20)
        rows = sorted(db.table_rows("t"))
        faults.arm("backup.snapshot", probability=1.0, count=1)
        with pytest.raises(FaultInjected):
            db.backup(str(tmp_path / "bkp"))
        # no BACKUP.json: the half-written directory is not a backup
        assert not os.path.exists(tmp_path / "bkp" / "BACKUP.json")
        with pytest.raises(WALError):
            restore_backup(str(tmp_path / "bkp"),
                           str(tmp_path / "node2"))
        # the primary is unharmed and the retry succeeds
        insert_rows(db, 20, 25)
        info = db.backup(str(tmp_path / "bkp"))
        db.close()
        restore_backup(str(tmp_path / "bkp"), str(tmp_path / "node2"))
        back = boot(tmp_path, name="node2", segment_bytes=256)
        assert len(back.table_rows("t")) == 25
        assert sorted(back.table_rows("t"))[:20] == rows
        assert back.storage.wal.head_lsn == info["head_lsn"]
        back.close()

    def test_crash_mid_scrub_changes_nothing(self, tmp_path):
        faults = FaultInjector(3)
        db = boot(tmp_path, segment_bytes=512, fault_injector=faults)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 30)
        db.compact_wal()
        archived_before = sorted(
            os.listdir(tmp_path / "node" / "wal_archive"))
        faults.arm("scrub.verify", probability=1.0, count=1)
        with pytest.raises(FaultInjected):
            db.scrub_wal()
        assert db.wal_lifecycle.segments_quarantined == 0
        assert sorted(os.listdir(tmp_path / "node" / "wal_archive")) \
            == archived_before
        stats = db.scrub_wal()           # retry is clean
        assert stats["segments_corrupt"] == 0
        db.close()


# ---------------------------------------------------------------------------
# the repro_storage view + CLI + legacy migration
# ---------------------------------------------------------------------------


class TestStorageSurfaces:
    def test_memory_mode_row(self):
        db = Database()
        row = db.query("SELECT mode, live_segments, head_lsn "
                       "FROM repro_storage").rows[0]
        assert row == ("memory", None, 0)

    def test_segmented_row_tracks_lifecycle(self, tmp_path):
        db = boot(tmp_path, segment_bytes=512)
        db.execute("CREATE TABLE t (a integer, b varchar(40))")
        insert_rows(db, 0, 40)
        db.compact_wal()
        db.backup(str(tmp_path / "bkp"))
        db.scrub_wal()
        row = db.query(
            "SELECT mode, archive_segments, archived_total, backups, "
            "scrubs, head_lsn, low_water_lsn FROM repro_storage").rows[0]
        mode, archive_segments, archived_total, backups, scrubs, \
            head, low = row
        assert mode == "segmented"
        assert archive_segments >= 1 and archived_total >= 1
        assert backups == 1 and scrubs == 1
        assert 1 <= low <= head + 1
        db.close()

    def test_cli_storage_command(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(out=out)
        shell.handle_line("\\storage")
        assert "memory" in out.getvalue()

    def test_legacy_single_file_data_dir_migrates(self, tmp_path):
        """A pre-segmentation data dir (wal.jsonl) opens seamlessly:
        the file becomes segment 1 and history is preserved."""
        data_dir = tmp_path / "node"
        data_dir.mkdir()
        legacy = WriteAheadLog(path=str(data_dir / "wal.jsonl"))
        fill(legacy, 4)
        legacy.close()

        db = open_database(data_dir=str(data_dir))
        wal = db.storage.wal
        assert wal.segments is not None
        assert wal.head_lsn == 8
        assert not os.path.exists(data_dir / "wal.jsonl")
        assert os.path.exists(data_dir / "wal" / segment_name(1))
        db.close()
