"""Tests for the write-ahead log and MVCC visibility."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.errors import TransactionError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.manager import StorageManager
from repro.storage.page import RowVersion
from repro.storage.wal import WriteAheadLog
from repro.txn.mvcc import TransactionManager
from repro.txn.window_consistency import WindowConsistentView
from repro.types.datatypes import IntegerType, VarcharType


class TestWAL:
    def test_append_assigns_lsns(self):
        wal = WriteAheadLog()
        r1 = wal.append(1, "insert", "t", (0, 0), after=(1,))
        r2 = wal.append(1, "commit")
        assert r2.lsn == r1.lsn + 1

    def test_flush_charges_disk(self):
        disk = SimulatedDisk()
        wal = WriteAheadLog(disk)
        wal.append(1, "insert", "t", (0, 0), after=(1, "abc"))
        wal.flush()
        assert disk.stats.pages_written >= 1

    def test_flush_idempotent(self):
        disk = SimulatedDisk()
        wal = WriteAheadLog(disk)
        wal.append(1, "commit")
        wal.flush()
        written = disk.stats.pages_written
        wal.flush()
        assert disk.stats.pages_written == written

    def test_replay_only_committed(self):
        wal = WriteAheadLog()
        wal.append(1, "insert", "t", (0, 0), after=(1,))
        wal.append(1, "commit")
        wal.append(2, "insert", "t", (0, 1), after=(2,))  # never commits
        wal.flush()
        assert wal.replay() == {"t": [(1,)]}

    def test_replay_respects_deletes(self):
        wal = WriteAheadLog()
        wal.append(1, "insert", "t", (0, 0), after=(1,))
        wal.append(1, "delete", "t", (0, 0), before=(1,))
        wal.append(1, "commit")
        wal.flush()
        assert wal.replay() == {}

    def test_unflushed_records_not_replayed(self):
        wal = WriteAheadLog()
        wal.append(1, "insert", "t", (0, 0), after=(1,))
        wal.append(1, "commit")
        # crash before flush: nothing durable
        assert wal.replay() == {}

    def test_latest_checkpoint(self):
        wal = WriteAheadLog()
        wal.append(0, "cq_checkpoint", "cq1", payload={"v": 1})
        wal.append(0, "cq_checkpoint", "cq1", payload={"v": 2})
        wal.append(0, "cq_checkpoint", "other", payload={"v": 9})
        wal.flush()
        assert wal.latest_checkpoint("cq1") == {"v": 2}
        assert wal.latest_checkpoint("nope") is None


@pytest.fixture
def manager():
    return TransactionManager()


class TestMVCCVisibility:
    def test_own_writes_visible(self, manager):
        txn = manager.begin()
        version = RowVersion(txn.txid, (1,))
        assert manager.visible(version, txn.snapshot, txn.txid)

    def test_uncommitted_writes_invisible_to_others(self, manager):
        writer = manager.begin()
        version = RowVersion(writer.txid, (1,))
        reader = manager.begin()
        assert not manager.visible(version, reader.snapshot, reader.txid)

    def test_committed_before_snapshot_visible(self, manager):
        writer = manager.begin()
        version = RowVersion(writer.txid, (1,))
        writer.commit()
        reader = manager.begin()
        assert manager.visible(version, reader.snapshot, reader.txid)

    def test_committed_after_snapshot_invisible(self, manager):
        reader = manager.begin()
        writer = manager.begin()
        version = RowVersion(writer.txid, (1,))
        writer.commit()
        assert not manager.visible(version, reader.snapshot, reader.txid)

    def test_concurrent_commit_invisible(self, manager):
        writer = manager.begin()
        reader = manager.begin()   # writer in progress at snapshot
        version = RowVersion(writer.txid, (1,))
        writer.commit()
        assert not manager.visible(version, reader.snapshot, reader.txid)

    def test_aborted_invisible(self, manager):
        writer = manager.begin()
        version = RowVersion(writer.txid, (1,))
        writer.abort()
        reader = manager.begin()
        assert not manager.visible(version, reader.snapshot, reader.txid)

    def test_delete_by_self_hides_version(self, manager):
        txn = manager.begin()
        version = RowVersion(txn.txid, (1,))
        version.xmax = txn.txid
        assert not manager.visible(version, txn.snapshot, txn.txid)

    def test_committed_delete_hides(self, manager):
        writer = manager.begin()
        version = RowVersion(writer.txid, (1,))
        writer.commit()
        deleter = manager.begin()
        version.xmax = deleter.txid
        deleter.commit()
        reader = manager.begin()
        assert not manager.visible(version, reader.snapshot, reader.txid)

    def test_uncommitted_delete_still_visible(self, manager):
        writer = manager.begin()
        version = RowVersion(writer.txid, (1,))
        writer.commit()
        deleter = manager.begin()
        version.xmax = deleter.txid
        reader = manager.begin()
        assert manager.visible(version, reader.snapshot, reader.txid)

    def test_frozen_txid_always_visible(self, manager):
        version = RowVersion(TransactionManager.FROZEN_TXID, (1,))
        reader = manager.begin()
        assert manager.visible(version, reader.snapshot, reader.txid)

    def test_double_commit_rejected(self, manager):
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_commit_after_abort_rejected(self, manager):
        txn = manager.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.commit()


def make_table(manager=None):
    storage = StorageManager()
    txn_manager = manager if manager is not None \
        else TransactionManager(storage.wal)
    schema = Schema([
        Column("id", IntegerType(), not_null=True),
        Column("name", VarcharType(50)),
    ])
    return storage.create_table("t", schema), txn_manager, storage


class TestTable:
    def test_insert_scan(self):
        table, manager, _storage = make_table()
        txn = manager.begin()
        table.insert(txn, (1, "a"))
        table.insert(txn, (2, "b"))
        txn.commit()
        reader = manager.begin()
        rows = [v for _r, v in table.scan(reader.snapshot, manager)]
        assert rows == [(1, "a"), (2, "b")]

    def test_coercion_on_insert(self):
        table, manager, _storage = make_table()
        txn = manager.begin()
        table.insert(txn, ("7", 123))
        txn.commit()
        rows = [v for _r, v in table.scan(
            manager.take_snapshot(), manager)]
        assert rows == [(7, "123")]

    def test_not_null_enforced(self):
        from repro.errors import ConstraintError
        table, manager, _storage = make_table()
        txn = manager.begin()
        with pytest.raises(ConstraintError):
            table.insert(txn, (None, "a"))

    def test_update_creates_new_version(self):
        table, manager, _storage = make_table()
        txn = manager.begin()
        rid = table.insert(txn, (1, "a"))
        txn.commit()
        updater = manager.begin()
        version = table.visible_version(rid, updater.snapshot, manager)
        table.update_version(updater, rid, version, (1, "z"))
        updater.commit()
        rows = [v for _r, v in table.scan(manager.take_snapshot(), manager)]
        assert rows == [(1, "z")]

    def test_abort_undoes_insert(self):
        table, manager, _storage = make_table()
        txn = manager.begin()
        table.insert(txn, (1, "a"))
        txn.abort()
        assert list(table.scan(manager.take_snapshot(), manager)) == []
        assert table.heap.row_count == 0  # physically removed

    def test_abort_undoes_delete(self):
        table, manager, _storage = make_table()
        txn = manager.begin()
        rid = table.insert(txn, (1, "a"))
        txn.commit()
        deleter = manager.begin()
        version = table.visible_version(rid, deleter.snapshot, manager)
        table.delete_version(deleter, rid, version)
        deleter.abort()
        rows = [v for _r, v in table.scan(manager.take_snapshot(), manager)]
        assert rows == [(1, "a")]

    def test_snapshot_isolation_for_readers(self):
        table, manager, _storage = make_table()
        setup = manager.begin()
        table.insert(setup, (1, "a"))
        setup.commit()
        reader = manager.begin()
        writer = manager.begin()
        table.insert(writer, (2, "b"))
        writer.commit()
        rows = [v for _r, v in table.scan(reader.snapshot, manager,
                                          reader.txid)]
        assert rows == [(1, "a")]  # reader's snapshot predates writer

    def test_truncate_deletes_visible_rows(self):
        table, manager, _storage = make_table()
        setup = manager.begin()
        table.insert(setup, (1, "a"))
        setup.commit()
        truncator = manager.begin()
        table.truncate(truncator)
        truncator.commit()
        assert table.row_count(manager.take_snapshot(), manager) == 0

    def test_index_maintained_on_insert_and_abort(self):
        table, manager, storage = make_table()
        index = storage.create_index("idx", table, ["id"])
        txn = manager.begin()
        table.insert(txn, (5, "x"))
        txn.commit()
        assert len(index.search((5,))) == 1
        bad = manager.begin()
        table.insert(bad, (6, "y"))
        bad.abort()
        assert index.search((6,)) == []

    def test_index_backfill(self):
        table, manager, storage = make_table()
        txn = manager.begin()
        table.insert(txn, (1, "a"))
        table.insert(txn, (2, "b"))
        txn.commit()
        index = storage.create_index("idx", table, ["id"])
        assert len(index.search((2,))) == 1


class TestWindowConsistentView:
    def test_snapshot_fixed_until_refresh(self):
        table, manager, _storage = make_table()
        view = WindowConsistentView(manager)
        txn = manager.begin()
        table.insert(txn, (1, "a"))
        txn.commit()
        # committed mid-window: invisible through the view
        rows = [v for _r, v in table.scan(view.snapshot, manager)]
        assert rows == []
        view.refresh()
        rows = [v for _r, v in table.scan(view.snapshot, manager)]
        assert rows == [(1, "a")]

    def test_refresh_count(self):
        _table, manager, _storage = make_table()
        view = WindowConsistentView(manager)
        view.refresh()
        view.refresh()
        assert view.refresh_count == 2
