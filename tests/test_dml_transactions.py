"""Tests for INSERT/UPDATE/DELETE and explicit transactions via SQL."""

import pytest

from repro import Database
from repro.errors import (
    ConstraintError,
    DuplicateObjectError,
    ExecutionError,
    TransactionError,
    UnknownObjectError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b varchar(20))")
    return database


class TestInsert:
    def test_insert_values(self, db):
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert len(db.query("SELECT * FROM t")) == 2

    def test_insert_with_columns(self, db):
        db.execute("INSERT INTO t (b, a) VALUES ('z', 9)")
        assert db.query("SELECT a, b FROM t").rows == [(9, "z")]

    def test_insert_partial_columns_defaults_null(self, db):
        db.execute("INSERT INTO t (a) VALUES (5)")
        assert db.query("SELECT a, b FROM t").rows == [(5, None)]

    def test_insert_expression_values(self, db):
        db.execute("INSERT INTO t VALUES (2 + 3, lower('ABC'))")
        assert db.query("SELECT * FROM t").rows == [(5, "abc")]

    def test_insert_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        db.execute("CREATE TABLE u (a integer, b varchar(20))")
        db.execute("INSERT INTO u SELECT a * 10, b FROM t")
        assert sorted(db.query("SELECT a FROM u").rows) == [(10,), (20,)]

    def test_insert_coerces_types(self, db):
        db.execute("INSERT INTO t VALUES ('7', 42)")
        assert db.query("SELECT * FROM t").rows == [(7, "42")]

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_insert_varchar_overflow(self, db):
        with pytest.raises(ConstraintError):
            db.execute(f"INSERT INTO t VALUES (1, '{'x' * 50}')")

    def test_insert_unknown_table(self, db):
        with pytest.raises(UnknownObjectError):
            db.execute("INSERT INTO missing VALUES (1)")


class TestUpdateDelete:
    @pytest.fixture(autouse=True)
    def _fill(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")

    def test_update_with_where(self, db):
        result = db.execute("UPDATE t SET b = 'z' WHERE a = 2")
        assert result.rowcount == 1
        assert db.query("SELECT b FROM t WHERE a = 2").scalar() == "z"

    def test_update_expression_uses_old_values(self, db):
        db.execute("UPDATE t SET a = a + 10")
        assert sorted(db.query("SELECT a FROM t").rows) == [(11,), (12,), (13,)]

    def test_update_multiple_assignments(self, db):
        db.execute("UPDATE t SET a = a * 2, b = b || '!' WHERE a = 1")
        assert db.query("SELECT a, b FROM t WHERE a = 2 AND b = 'a!'").rows

    def test_delete_with_where(self, db):
        result = db.execute("DELETE FROM t WHERE a < 3")
        assert result.rowcount == 2
        assert db.query("SELECT a FROM t").rows == [(3,)]

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM t").rowcount == 3
        assert len(db.query("SELECT * FROM t")) == 0

    def test_update_maintains_index(self, db):
        db.execute("CREATE INDEX t_a ON t (a)")
        db.execute("UPDATE t SET a = 100 WHERE a = 1")
        assert db.query("SELECT b FROM t WHERE a = 100").rows == [("a",)]
        assert db.query("SELECT b FROM t WHERE a = 1").rows == []


class TestTransactions:
    def test_commit_makes_visible(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("COMMIT")
        assert len(db.query("SELECT * FROM t")) == 1

    def test_rollback_discards(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("ROLLBACK")
        assert len(db.query("SELECT * FROM t")) == 0

    def test_own_writes_visible_in_txn(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert len(db.query("SELECT * FROM t")) == 1
        db.execute("COMMIT")

    def test_rollback_of_update(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("BEGIN")
        db.execute("UPDATE t SET b = 'y' WHERE a = 1")
        db.execute("ROLLBACK")
        assert db.query("SELECT b FROM t").rows == [("x",)]

    def test_rollback_of_delete(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("BEGIN")
        db.execute("DELETE FROM t")
        db.execute("ROLLBACK")
        assert len(db.query("SELECT * FROM t")) == 1

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")
        db.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")

    def test_failed_autocommit_statement_rolls_back(self, db):
        db.execute("INSERT INTO t VALUES (1, 'ok')")
        with pytest.raises(ConstraintError):
            # second row violates the varchar(20) bound mid-statement
            db.execute(f"INSERT INTO t VALUES (2, 'fine'), (3, '{'x' * 99}')")
        # the failed statement must leave no partial rows
        assert sorted(db.query("SELECT a FROM t").rows) == [(1,)]


class TestDDLErrors:
    def test_duplicate_table(self, db):
        with pytest.raises(DuplicateObjectError):
            db.execute("CREATE TABLE t (x integer)")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS t (x integer)")  # no error

    def test_drop_table(self, db):
        from repro.errors import BindError
        db.execute("DROP TABLE t")
        with pytest.raises(BindError):
            db.query("SELECT * FROM t")

    def test_drop_missing_table(self, db):
        with pytest.raises(UnknownObjectError):
            db.execute("DROP TABLE nope")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS nope")  # no error

    def test_drop_index(self, db):
        db.execute("CREATE INDEX t_a ON t (a)")
        db.execute("DROP INDEX t_a")
        assert "SeqScan" in db.explain("SELECT * FROM t WHERE a = 1")

    def test_drop_table_with_channel_rejected(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        db.execute("CREATE STREAM d AS SELECT count(*), cq_close(*) "
                   "FROM s <VISIBLE '1 minute'>")
        db.execute("CREATE TABLE arch (c bigint, ts timestamp)")
        db.execute("CREATE CHANNEL ch FROM d INTO arch APPEND")
        with pytest.raises(ExecutionError):
            db.execute("DROP TABLE arch")
        db.execute("DROP CHANNEL ch")
        db.execute("DROP TABLE arch")
