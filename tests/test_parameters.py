"""Tests for positional ``?`` parameter binding."""

import pytest

from repro import Database
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a integer, b varchar(10))")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return database


class TestSnapshotParameters:
    def test_where(self, db):
        assert db.query("SELECT b FROM t WHERE a = ?", (2,)).rows == [("y",)]

    def test_multiple_in_order(self, db):
        rows = db.query("SELECT b FROM t WHERE a > ? AND a < ?",
                        (1, 3)).rows
        assert rows == [("y",)]

    def test_in_select_list(self, db):
        assert db.query("SELECT ? + 1", (41,)).scalar() == 42

    def test_in_expressions(self, db):
        rows = db.query("SELECT b FROM t WHERE b LIKE ?", ("x%",)).rows
        assert rows == [("x",)]

    def test_in_in_list(self, db):
        rows = db.query("SELECT count(*) FROM t WHERE a IN (?, ?)", (1, 3))
        assert rows.scalar() == 2

    def test_missing_params_raise(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a FROM t WHERE a = ?")

    def test_too_few_params_raise(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a FROM t WHERE a = ? AND b = ?", (1,))

    def test_null_parameter(self, db):
        assert db.query("SELECT count(*) FROM t WHERE a = ?",
                        (None,)).scalar() == 0

    def test_params_do_not_leak_between_statements(self, db):
        db.query("SELECT ?", (1,))
        with pytest.raises(ExecutionError):
            db.query("SELECT ?")


class TestDMLParameters:
    def test_insert(self, db):
        db.execute("INSERT INTO t VALUES (?, ?)", (9, "nine"))
        assert db.query("SELECT b FROM t WHERE a = 9").scalar() == "nine"

    def test_update(self, db):
        count = db.execute("UPDATE t SET b = ? WHERE a = ?", ("new", 1))
        assert count.rowcount == 1
        assert db.query("SELECT b FROM t WHERE a = 1").scalar() == "new"

    def test_delete(self, db):
        db.execute("DELETE FROM t WHERE a >= ?", (2,))
        assert db.query("SELECT count(*) FROM t").scalar() == 1

    def test_insert_select_with_param(self, db):
        db.execute("CREATE TABLE u (a integer, b varchar(10))")
        db.execute("INSERT INTO u SELECT a, b FROM t WHERE a > ?", (1,))
        assert len(db.table_rows("u")) == 2


class TestCQParameters:
    def test_params_bound_for_cq_lifetime(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> WHERE v >= ?",
            (10,))
        db.insert_stream("s", [(5, 1.0), (10, 2.0), (50, 3.0)])
        db.advance_streams(60.0)
        db.insert_stream("s", [(11, 61.0)])
        db.advance_streams(120.0)
        assert [w.rows for w in sub.poll()] == [[(2,)], [(1,)]]

    def test_two_cqs_different_params(self, db):
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        low = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> WHERE v >= ?", (1,))
        high = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> WHERE v >= ?", (100,))
        db.insert_stream("s", [(5, 1.0), (200, 2.0)])
        db.advance_streams(60.0)
        assert low.rows() == [(2,)]
        assert high.rows() == [(1,)]

    def test_parameterized_cq_skips_sharing(self):
        db = Database(share_slices=True)
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = db.subscribe(
            "SELECT count(*) FROM s <VISIBLE '1 minute'> WHERE v > ?", (1,))
        assert not getattr(sub.cq, "shared", False)
