"""Regression coverage for the runnable examples: each must execute
cleanly and produce its key output markers."""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name: str) -> str:
    out = io.StringIO()
    path = os.path.join(EXAMPLES, name)
    argv = sys.argv
    sys.argv = [path]
    try:
        with redirect_stdout(out):
            runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = argv
    return out.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "top-10 windows" in output
        assert "/home" in output
        assert "active table is an ordinary SQL table" in output

    def test_security_monitoring(self):
        output = run_example("security_monitoring.py")
        assert "blocked traffic by severity" in output
        assert "top talkers" in output
        assert "real-time alerts" in output
        # the punchline: the report touches far fewer pages
        assert "active-table read: 1 pages read" in output

    def test_clickstream_dashboard(self):
        output = run_example("clickstream_dashboard.py")
        assert "vs the same minute last week" in output
        assert "%" in output
        assert "top pages this week" in output

    def test_fault_tolerant_pipeline(self):
        output = run_example("fault_tolerant_pipeline.py")
        assert "CRASH" in output
        assert "archives identical: True" in output
