"""Tests for pages, heap files, the buffer pool and the disk cost model."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.page import PAGE_SIZE, Page, RowVersion, row_bytes, value_bytes


class TestSizing:
    def test_value_bytes(self):
        assert value_bytes(None) == 1
        assert value_bytes(True) == 1
        assert value_bytes(42) == 8
        assert value_bytes(3.14) == 8
        assert value_bytes("abcd") == 8  # 4 + len

    def test_row_bytes_includes_header(self):
        assert row_bytes((1, 2)) == 24 + 16

    def test_page_capacity_is_respected(self):
        page = Page(0)
        row = tuple(range(10))  # 24 + 80 = 104 bytes + 4 slot
        count = 0
        while page.has_room(row_bytes(row)):
            page.insert(RowVersion(1, row))
            count += 1
        assert count > 0
        assert page.bytes_used <= PAGE_SIZE


class TestPage:
    def test_insert_and_get(self):
        page = Page(0)
        slot = page.insert(RowVersion(1, (1, "a")))
        assert page.get(slot).values == (1, "a")

    def test_remove_leaves_tombstone(self):
        page = Page(0)
        s0 = page.insert(RowVersion(1, (1,)))
        s1 = page.insert(RowVersion(1, (2,)))
        page.remove(s0)
        assert page.get(s0) is None
        assert page.get(s1).values == (2,)  # rid stability

    def test_live_versions_skips_tombstones(self):
        page = Page(0)
        page.insert(RowVersion(1, (1,)))
        s1 = page.insert(RowVersion(1, (2,)))
        page.remove(s1)
        assert [v.values for _s, v in page.live_versions()] == [(1,)]


@pytest.fixture
def pool():
    return BufferPool(SimulatedDisk(), capacity_pages=4)


class TestHeapFile:
    def test_insert_read(self, pool):
        heap = HeapFile(1)
        rid = heap.insert(pool, RowVersion(1, ("x", 1)))
        assert heap.read(pool, rid).values == ("x", 1)

    def test_row_count(self, pool):
        heap = HeapFile(1)
        for i in range(10):
            heap.insert(pool, RowVersion(1, (i,)))
        assert heap.row_count == 10

    def test_spills_to_multiple_pages(self, pool):
        heap = HeapFile(1)
        big = "x" * 1000
        for i in range(20):
            heap.insert(pool, RowVersion(1, (big, i)))
        assert heap.page_count > 1

    def test_scan_order(self, pool):
        heap = HeapFile(1)
        for i in range(5):
            heap.insert(pool, RowVersion(1, (i,)))
        values = [v.values[0] for _rid, v in heap.scan(pool)]
        assert values == [0, 1, 2, 3, 4]

    def test_remove(self, pool):
        heap = HeapFile(1)
        rid = heap.insert(pool, RowVersion(1, (1,)))
        heap.remove(pool, rid)
        assert heap.row_count == 0
        assert heap.read(pool, rid) is None

    def test_truncate(self, pool):
        heap = HeapFile(1)
        for i in range(5):
            heap.insert(pool, RowVersion(1, (i,)))
        heap.truncate(pool)
        assert heap.page_count == 0
        assert list(heap.scan(pool)) == []


class TestBufferPool:
    def test_hit_vs_miss(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=4)
        heap = HeapFile(1)
        heap.insert(pool, RowVersion(1, (1,)))
        pool.clear()  # cold
        list(heap.scan(pool))
        assert pool.misses >= 1
        misses_before = pool.misses
        list(heap.scan(pool))  # warm
        assert pool.misses == misses_before
        assert pool.hits >= 1

    def test_cold_scan_charges_disk(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=64)
        heap = HeapFile(1)
        big = "x" * 2000
        for i in range(40):
            heap.insert(pool, RowVersion(1, (big, i)))
        pool.clear()
        before = disk.snapshot()
        list(heap.scan(pool))
        delta = disk.snapshot() - before
        assert delta.pages_read == heap.page_count

    def test_eviction_writes_dirty_pages(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=2)
        heap = HeapFile(1)
        big = "x" * 3000
        for i in range(10):  # forces many new pages through a 2-frame pool
            heap.insert(pool, RowVersion(1, (big, i)))
        assert pool.evictions > 0
        assert disk.stats.pages_written > 0

    def test_flush_writes_all_dirty(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=64)
        heap = HeapFile(1)
        for i in range(5):
            heap.insert(pool, RowVersion(1, (i,)))
        written = pool.flush()
        assert written >= 1
        assert pool.flush() == 0  # idempotent

    def test_drop_file_discards_frames(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=64)
        heap = HeapFile(1)
        heap.insert(pool, RowVersion(1, (1,)))
        pool.drop_file(1)
        assert pool.flush() == 0  # nothing dirty remains


class TestSimulatedDisk:
    def test_sequential_detection(self):
        disk = SimulatedDisk()
        disk.read_page(1, 0)
        disk.read_page(1, 1)
        disk.read_page(1, 2)
        assert disk.stats.seeks == 1
        assert disk.stats.sequential_reads == 2

    def test_random_access_seeks(self):
        disk = SimulatedDisk()
        disk.read_page(1, 0)
        disk.read_page(2, 5)
        disk.read_page(1, 9)
        assert disk.stats.seeks == 3

    def test_elapsed_seconds_model(self):
        disk = SimulatedDisk(page_size=8192, seek_time=0.01,
                             transfer_rate=8192 * 100)  # 100 pages/s
        disk.read_page(1, 0)   # seek + transfer
        disk.read_page(1, 1)   # transfer only
        assert disk.elapsed_seconds() == pytest.approx(0.01 + 2 * 0.01)

    def test_interval_accounting(self):
        disk = SimulatedDisk()
        disk.read_page(1, 0)
        snap = disk.snapshot()
        disk.read_page(1, 1)
        delta = disk.snapshot() - snap
        assert delta.pages_read == 1

    def test_reset(self):
        disk = SimulatedDisk()
        disk.read_page(1, 0)
        disk.reset()
        assert disk.stats == DiskStats()
