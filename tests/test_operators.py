"""Direct unit tests for the physical operators (no SQL front end)."""

import pytest

from repro.exec import operators as ops
from repro.exec.aggregates import make_aggregate


def rows_of(op, ctx=None):
    return list(op.rows(ctx if ctx is not None else {}))


def col(i):
    return lambda row, ctx: row[i]


class TestRowSourceFilterProject:
    def test_row_source_list(self):
        src = ops.RowSource([(1,), (2,)])
        assert rows_of(src) == [(1,), (2,)]

    def test_row_source_callable_reevaluated(self):
        data = [[(1,)]]
        src = ops.RowSource(lambda: data[0])
        assert rows_of(src) == [(1,)]
        data[0] = [(2,)]
        assert rows_of(src) == [(2,)]

    def test_filter_requires_strict_true(self):
        src = ops.RowSource([(1,), (None,), (0,)])
        # predicate returns value itself: None (unknown) must not pass
        out = rows_of(ops.Filter(src, lambda row, ctx: row[0] == 1 or None))
        assert out == [(1,)]

    def test_project(self):
        src = ops.RowSource([(1, 2)])
        out = rows_of(ops.Project(src, [col(1), col(0)]))
        assert out == [(2, 1)]


class TestJoins:
    LEFT = [(1, "a"), (2, "b"), (None, "n")]
    RIGHT = [(1, "x"), (1, "y"), (3, "z")]

    def hash_join(self, kind, build_left):
        return ops.HashJoin(
            ops.RowSource(self.LEFT), ops.RowSource(self.RIGHT),
            [col(0)], [col(0)], kind, right_width=2,
            build_left=build_left)

    @pytest.mark.parametrize("build_left", [False, True])
    def test_inner_join(self, build_left):
        out = sorted(rows_of(self.hash_join("INNER", build_left)))
        assert out == [(1, "a", 1, "x"), (1, "a", 1, "y")]

    @pytest.mark.parametrize("build_left", [False, True])
    def test_left_join_null_extension(self, build_left):
        out = sorted(rows_of(self.hash_join("LEFT", build_left)),
                     key=repr)
        assert (2, "b", None, None) in out
        assert (None, "n", None, None) in out
        assert len(out) == 4

    @pytest.mark.parametrize("build_left", [False, True])
    def test_null_keys_never_match(self, build_left):
        join = ops.HashJoin(
            ops.RowSource([(None,)]), ops.RowSource([(None,)]),
            [col(0)], [col(0)], "INNER", 1, build_left=build_left)
        assert rows_of(join) == []

    @pytest.mark.parametrize("build_left", [False, True])
    def test_residual_predicate(self, build_left):
        join = ops.HashJoin(
            ops.RowSource(self.LEFT), ops.RowSource(self.RIGHT),
            [col(0)], [col(0)], "INNER", 2,
            residual=lambda row, ctx: row[3] == "y",
            build_left=build_left)
        assert rows_of(join) == [(1, "a", 1, "y")]

    def test_left_join_residual_failure_null_extends(self):
        join = ops.HashJoin(
            ops.RowSource([(1, "a")]), ops.RowSource([(1, "x")]),
            [col(0)], [col(0)], "LEFT", 2,
            residual=lambda row, ctx: False)
        assert rows_of(join) == [(1, "a", None, None)]

    def test_nested_loop_cross(self):
        join = ops.NestedLoopJoin(
            ops.RowSource([(1,), (2,)]), ops.RowSource([("a",), ("b",)]),
            None, "INNER", 1)
        assert len(rows_of(join)) == 4

    def test_nested_loop_left(self):
        join = ops.NestedLoopJoin(
            ops.RowSource([(1,), (9,)]), ops.RowSource([(1,)]),
            lambda row, ctx: row[0] == row[1], "LEFT", 1)
        assert rows_of(join) == [(1, 1), (9, None)]


class TestHashAggregate:
    def agg(self, rows, group, specs):
        return rows_of(ops.HashAggregate(ops.RowSource(rows), group, specs))

    def test_group_count(self):
        out = self.agg([("a",), ("a",), ("b",)], [col(0)],
                       [(make_aggregate("count", star=True), None)])
        assert sorted(out) == [("a", 2), ("b", 1)]

    def test_scalar_over_empty_input(self):
        out = self.agg([], [], [(make_aggregate("count", star=True), None),
                                (make_aggregate("sum"), col(0))])
        assert out == [(0, None)]

    def test_grouped_over_empty_input(self):
        out = self.agg([], [col(0)],
                       [(make_aggregate("count", star=True), None)])
        assert out == []

    def test_multiple_aggregates(self):
        out = self.agg([(1,), (3,)], [],
                       [(make_aggregate("min"), col(0)),
                        (make_aggregate("max"), col(0)),
                        (make_aggregate("avg"), col(0))])
        assert out == [(1, 3, 2.0)]


class TestSortLimitDistinct:
    def test_sort_multi_key_stability(self):
        rows = [(1, "b"), (2, "a"), (1, "a")]
        out = rows_of(ops.Sort(ops.RowSource(rows),
                               [col(0), col(1)], [False, False]))
        assert out == [(1, "a"), (1, "b"), (2, "a")]

    def test_sort_desc(self):
        out = rows_of(ops.Sort(ops.RowSource([(1,), (3,), (2,)]),
                               [col(0)], [True]))
        assert out == [(3,), (2,), (1,)]

    def test_limit_zero(self):
        out = rows_of(ops.Limit(ops.RowSource([(1,), (2,)]), 0, None))
        assert out == []

    def test_limit_offset_past_end(self):
        out = rows_of(ops.Limit(ops.RowSource([(1,)]), 5, 10))
        assert out == []

    def test_limit_short_circuits(self):
        produced = []

        def generator():
            for i in range(1000):
                produced.append(i)
                yield (i,)
        out = rows_of(ops.Limit(ops.RowSource(generator), 3, None))
        assert out == [(0,), (1,), (2,)]
        assert len(produced) == 3

    def test_distinct(self):
        out = rows_of(ops.Distinct(ops.RowSource([(1,), (1,), (2,)])))
        assert out == [(1,), (2,)]


class TestSetOperators:
    A = [(1,), (2,), (2,)]
    B = [(2,), (3,)]

    def test_concat(self):
        out = rows_of(ops.Concat(ops.RowSource(self.A), ops.RowSource(self.B)))
        assert out == [(1,), (2,), (2,), (2,), (3,)]

    def test_except_set(self):
        out = rows_of(ops.Except(ops.RowSource(self.A),
                                 ops.RowSource(self.B), all_rows=False))
        assert out == [(1,)]

    def test_except_all(self):
        out = rows_of(ops.Except(ops.RowSource(self.A),
                                 ops.RowSource(self.B), all_rows=True))
        assert out == [(1,), (2,)]

    def test_intersect_set(self):
        out = rows_of(ops.Intersect(ops.RowSource(self.A),
                                    ops.RowSource(self.B), all_rows=False))
        assert out == [(2,)]

    def test_intersect_all_bag(self):
        out = rows_of(ops.Intersect(
            ops.RowSource([(2,), (2,), (2,)]),
            ops.RowSource([(2,), (2,)]), all_rows=True))
        assert out == [(2,), (2,)]

    def test_explain_tree_renders(self):
        join = ops.HashJoin(ops.RowSource([], "l"), ops.RowSource([], "r"),
                            [col(0)], [col(0)], "INNER", 1)
        text = join.explain()
        assert "HashJoin" in text
        assert "RowSource(l)" in text
