"""Crash-consistent restart: a kill -9'd server comes back whole.

``ServerThread.kill`` aborts every socket and the event loop without
drain, goodbye or a final WAL flush — the durable state is whatever the
log file already held, exactly the kill -9 contract.  A new server on
the same data directory must re-register every object and resume each
CQ at the correct window boundary without manual DDL replay.
"""

import time

import pytest

import repro.client as client
from repro.errors import RemoteError
from repro.faults import FaultInjector
from repro.server import ServerThread

PIPELINE = [
    "CREATE STREAM s (v integer, ts timestamp CQTIME USER)",
    ("CREATE STREAM totals AS SELECT count(*) c, cq_close(*) "
     "FROM s <VISIBLE '10 seconds' ADVANCE '10 seconds'>"),
    "CREATE TABLE archive (c bigint, ts timestamp)",
    "CREATE CHANNEL arch FROM totals INTO archive APPEND",
    "CREATE VIEW recent AS SELECT c FROM archive WHERE ts > 0",
    "CREATE INDEX arch_ts ON archive (ts)",
]


def wait_until(probe, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    error = None
    while time.monotonic() < deadline:
        try:
            value = probe()
        except RemoteError as exc:
            error = exc
            value = None
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"condition not reached (last error: {error})")


class TestKillRestart:
    def boot(self, tmp_path, **kwargs):
        st = ServerThread(data_dir=str(tmp_path / "node"),
                          stream_retention=600.0, **kwargs)
        st.start()
        return st

    def test_restart_resumes_at_window_boundary(self, tmp_path):
        first = self.boot(tmp_path)
        conn = client.connect(first.host, first.port)
        for ddl in PIPELINE:
            conn.execute(ddl)
        conn.ingest("s", [(i, float(i)) for i in range(1, 10)])
        conn.ingest("s", [(i, 10.0 + i) for i in range(1, 6)])
        conn.ingest("s", [(0, 21.0)])    # closes (10,20]; 21.0 in flight
        wait_until(lambda: len(conn.query(
            "SELECT c FROM archive").rows) == 2)
        first.kill()                     # no drain, no goodbye, no flush

        second = self.boot(tmp_path)
        try:
            conn2 = client.connect(second.host, second.port)
            # every object is back without manual DDL replay
            assert sorted(r[0] for r in conn2.query(
                "SELECT name FROM repro_streams").rows) == ["s", "totals"]
            assert conn2.query(
                "SELECT name, source, target, mode "
                "FROM repro_channels").rows \
                == [("arch", "totals", "archive", "append")]
            assert conn2.query(
                "SELECT name FROM repro_indexes").rows == [("arch_ts",)]
            assert conn2.query("SELECT count(*) FROM recent").scalar() == 2
            # archived windows survived
            assert conn2.query(
                "SELECT c, ts FROM archive ORDER BY ts").rows \
                == [(9, 10.0), (5, 20.0)]
            # the CQ resumed on the same grid: the next close is 30.0,
            # counting the durable in-flight tuple at 21.0
            conn2.ingest("s", [(8, 24.0)])
            conn2.ingest("s", [(0, 31.0)])
            wait_until(lambda: len(conn2.query(
                "SELECT c FROM archive").rows) == 3)
            rows = conn2.query("SELECT c, ts FROM archive ORDER BY ts").rows
            assert rows[2] == (2, 30.0)   # 0@21 (recovered) + 8@24 (new)
            conn2.close()
        finally:
            second.stop()

    def test_restart_is_idempotent_across_repeated_kills(self, tmp_path):
        node = self.boot(tmp_path)
        conn = client.connect(node.host, node.port)
        for ddl in PIPELINE:
            conn.execute(ddl)
        conn.ingest("s", [(1, 5.0), (2, 11.0)])
        wait_until(lambda: len(conn.query("SELECT c FROM archive").rows))
        for _round in range(2):
            node.kill()
            node = self.boot(tmp_path)
            conn = client.connect(node.host, node.port)
            assert conn.query(
                "SELECT c, ts FROM archive").rows == [(1, 10.0)]
            assert sorted(r[0] for r in conn.query(
                "SELECT name FROM repro_streams").rows) == ["s", "totals"]
        node.stop()

    def test_boot_recovery_crashpoint_quarantines_cq(self, tmp_path):
        node = self.boot(tmp_path)
        conn = client.connect(node.host, node.port)
        for ddl in PIPELINE[:4]:
            conn.execute(ddl)
        conn.ingest("s", [(1, 5.0), (2, 11.0)])
        wait_until(lambda: len(conn.query("SELECT c FROM archive").rows))
        node.kill()

        faults = FaultInjector(3)
        faults.arm("server.boot_recovery", probability=1.0, count=1)
        second = ServerThread(data_dir=str(tmp_path / "node"),
                              stream_retention=600.0, supervised=True,
                              fault_injector=faults)
        second.start()
        try:
            conn2 = client.connect(second.host, second.port)
            # the server came up despite the failed rebuild; the CQ is
            # reported as a cold fallback and quarantined as dead letter
            stats = second.db.recovery_stats
            assert any(name == "derived:totals"
                       and strategy.startswith("cold:")
                       for name, strategy in stats["cqs"])
            letters = conn2.query(
                "SELECT source, kind FROM repro_dead_letters").rows
            assert ("derived:totals", "recovery") in letters
            # and it still archives future windows (cold start)
            conn2.ingest("s", [(3, 25.0), (0, 31.0)])
            wait_until(lambda: len(conn2.query(
                "SELECT c FROM archive").rows) >= 2)
            conn2.close()
        finally:
            second.stop()


class TestIdleReaper:
    def test_idle_connection_is_reaped(self):
        with ServerThread(idle_timeout=0.4) as st:
            busy = client.connect(st.host, st.port)
            lazy = client.connect(st.host, st.port)
            # the idle session is told goodbye and its socket closed;
            # once its handler exits it deregisters from the view
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                time.sleep(0.1)
                busy.ping()              # keeps *this* session alive
                rows = busy.query(
                    "SELECT session_id, state FROM repro_connections").rows
                if len(rows) == 1:
                    break
            assert len(rows) == 1, f"idle session not reaped: {rows}"
            # the reaped client sees the goodbye (or the closed socket)
            # on its next interaction
            with pytest.raises((ConnectionError, OSError)):
                for _ in range(20):
                    lazy.ping()
                    time.sleep(0.05)
            assert lazy.server_goodbye is not None or lazy.closed
            busy.close()

    def test_active_sessions_survive(self):
        with ServerThread(idle_timeout=0.5) as st:
            conn = client.connect(st.host, st.port)
            for _ in range(6):
                time.sleep(0.2)
                assert conn.ping()
            states = conn.query(
                "SELECT state FROM repro_connections").rows
            assert states == [("active",)]
            conn.close()

    def test_last_seen_tracks_activity(self):
        with ServerThread() as st:
            conn = client.connect(st.host, st.port)
            time.sleep(0.3)
            idle, last_seen = conn.query(
                "SELECT idle_seconds, last_seen FROM repro_connections").rows[0]
            # the query itself just touched the session
            assert idle is not None and idle < 0.25
            # last_seen is wall-clock for display; idleness is computed
            # from the monotonic clock internally
            assert abs(last_seen - time.time()) < 5.0
            conn.close()
