"""Tests for base/derived streams: ordering, retention, heartbeats."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.errors import OutOfOrderError, StreamingError
from repro.streaming.streams import BaseStream, DerivedStream, StreamConsumer
from repro.types.datatypes import IntegerType, TimestampType, VarcharType


def click_schema(mode="user"):
    return Schema([
        Column("url", VarcharType(100)),
        Column("ts", TimestampType(), cqtime=mode),
    ])


class Recorder(StreamConsumer):
    def __init__(self):
        self.tuples = []
        self.heartbeats = []
        self.flushed = False

    def on_tuple(self, row, event_time):
        self.tuples.append((event_time, row))

    def on_heartbeat(self, event_time):
        self.heartbeats.append(event_time)

    def on_flush(self):
        self.flushed = True


class TestBaseStream:
    def test_requires_cqtime(self):
        schema = Schema([Column("v", IntegerType())])
        with pytest.raises(StreamingError):
            BaseStream("s", schema)

    def test_insert_delivers_to_consumers(self):
        stream = BaseStream("s", click_schema())
        sink = Recorder()
        stream.subscribe(sink)
        stream.insert(("/a", 10.0))
        assert sink.tuples == [(10.0, ("/a", 10.0))]

    def test_coercion_applied(self):
        stream = BaseStream("s", click_schema())
        sink = Recorder()
        stream.subscribe(sink)
        stream.insert(("/a", "1970-01-01 00:01:00"))
        assert sink.tuples[0][0] == 60.0

    def test_watermark_advances(self):
        stream = BaseStream("s", click_schema())
        stream.insert(("/a", 5.0))
        stream.insert(("/b", 9.0))
        assert stream.watermark == 9.0

    def test_out_of_order_raises(self):
        stream = BaseStream("s", click_schema())
        stream.insert(("/a", 10.0))
        with pytest.raises(OutOfOrderError):
            stream.insert(("/b", 5.0))

    def test_out_of_order_drop_policy(self):
        stream = BaseStream("s", click_schema(), disorder_policy="drop")
        stream.insert(("/a", 10.0))
        assert stream.insert(("/b", 5.0)) is False
        assert stream.tuples_dropped == 1
        assert stream.tuples_in == 1

    def test_equal_timestamps_allowed(self):
        stream = BaseStream("s", click_schema())
        stream.insert(("/a", 10.0))
        stream.insert(("/b", 10.0))
        assert stream.tuples_in == 2

    def test_null_cqtime_rejected(self):
        stream = BaseStream("s", click_schema())
        with pytest.raises(StreamingError):
            stream.insert(("/a", None))

    def test_system_time_stamped(self):
        stream = BaseStream("s", click_schema(mode="system"))
        sink = Recorder()
        stream.subscribe(sink)
        stream.insert(("/a", None), at=42.0)
        assert sink.tuples[0][1] == ("/a", 42.0)

    def test_heartbeat_broadcast(self):
        stream = BaseStream("s", click_schema())
        sink = Recorder()
        stream.subscribe(sink)
        stream.advance_to(99.0)
        assert sink.heartbeats == [99.0]
        assert stream.watermark == 99.0

    def test_stale_heartbeat_ignored(self):
        stream = BaseStream("s", click_schema())
        stream.insert(("/a", 50.0))
        sink = Recorder()
        stream.subscribe(sink)
        stream.advance_to(10.0)
        assert sink.heartbeats == []

    def test_flush_broadcast(self):
        stream = BaseStream("s", click_schema())
        sink = Recorder()
        stream.subscribe(sink)
        stream.flush()
        assert sink.flushed

    def test_unsubscribe(self):
        stream = BaseStream("s", click_schema())
        sink = Recorder()
        stream.subscribe(sink)
        stream.unsubscribe(sink)
        stream.insert(("/a", 1.0))
        assert sink.tuples == []

    def test_insert_many_counts(self):
        stream = BaseStream("s", click_schema(), disorder_policy="drop")
        accepted = stream.insert_many(
            [("/a", 1.0), ("/b", 5.0), ("/late", 2.0)])
        assert accepted == 2

    def test_insert_many_net_of_shed_incoming(self):
        # shed-oldest with a deep reorder buffer: incoming tuples past
        # the mark are shed and must not count as accepted
        stream = BaseStream("s", click_schema(), slack=1000.0,
                            backpressure_policy="shed-oldest",
                            high_water_mark=3)
        accepted = stream.insert_many(
            [(f"/p{i}", float(i)) for i in range(8)])
        assert accepted == 3
        assert stream.tuples_shed == 5

    def test_insert_many_net_of_displaced_buffered(self):
        # rows accepted by an earlier batch get displaced by a later
        # one; the later batch's count must subtract them, not only
        # its own rejections
        stream = BaseStream("s", click_schema(), slack=1000.0,
                            backpressure_policy="shed-oldest",
                            high_water_mark=4)
        first = stream.insert_many([(f"/a{i}", float(i)) for i in range(4)])
        assert first == 4
        second = stream.insert_many(
            [(f"/b{i}", float(10 + i)) for i in range(4)])
        # four new rows in, four old rows shed out: net zero gain but
        # the batch itself landed all four of its rows minus the four
        # buffered casualties
        assert second == 0
        assert stream.tuples_shed == 4

    def test_insert_many_counts_late_drops_once(self):
        # a dropped-late row must not be double-counted against the
        # shed ledger
        stream = BaseStream("s", click_schema(), disorder_policy="drop",
                            backpressure_policy="shed-oldest",
                            high_water_mark=100)
        stream.insert(("/head", 50.0))
        accepted = stream.insert_many([("/late", 1.0), ("/ok", 60.0)])
        assert accepted == 1
        assert stream.tuples_dropped == 1
        assert stream.tuples_shed == 0


class TestRetention:
    def test_replay_since(self):
        stream = BaseStream("s", click_schema(), retention=100.0)
        for t in (1.0, 2.0, 3.0):
            stream.insert((f"/p{t}", t))
        replayed = list(stream.replay_since(2.0))
        assert [when for when, _row in replayed] == [2.0, 3.0]

    def test_tail_trimmed_past_retention(self):
        stream = BaseStream("s", click_schema(), retention=10.0)
        stream.insert(("/a", 0.0))
        stream.insert(("/b", 100.0))
        assert stream.replay_horizon() >= 90.0

    def test_no_retention_raises_on_replay(self):
        stream = BaseStream("s", click_schema())
        stream.insert(("/a", 1.0))
        with pytest.raises(StreamingError):
            list(stream.replay_since(0.0))

    def test_replay_horizon_empty(self):
        stream = BaseStream("s", click_schema(), retention=10.0)
        assert stream.replay_horizon() == float("inf")

    def test_mid_stream_subscriber_catches_up(self):
        """A consumer arriving mid-stream replays the retained tail,
        then sees live tuples exactly once — no gap, no overlap."""
        stream = BaseStream("s", click_schema(), retention=100.0)
        for t in (1.0, 2.0, 3.0):
            stream.insert((f"/p{t}", t))
        sink = Recorder()
        # the late-subscriber protocol: replay, then attach
        replayed = [(when, row)
                    for when, row in stream.replay_since(2.0)]
        stream.subscribe(sink)
        stream.insert(("/live", 4.0))
        assert [when for when, _ in replayed] == [2.0, 3.0]
        assert sink.tuples == [(4.0, ("/live", 4.0))]
        seen = [when for when, _ in replayed] + \
            [when for when, _ in sink.tuples]
        assert seen == sorted(set(seen))   # once each, in order

    def test_replay_horizon_tracks_trim(self):
        stream = BaseStream("s", click_schema(), retention=10.0)
        stream.insert(("/a", 0.0))
        assert stream.replay_horizon() <= 0.0
        stream.insert(("/b", 50.0))
        horizon = stream.replay_horizon()
        assert horizon >= 40.0
        # asking for earlier than the horizon yields only what is kept
        assert [when for when, _ in stream.replay_since(0.0)] == [50.0]

    def test_replay_since_boundary_inclusive(self):
        stream = BaseStream("s", click_schema(), retention=100.0)
        stream.insert(("/a", 5.0))
        stream.insert(("/b", 6.0))
        assert [when for when, _ in stream.replay_since(5.0)] == [5.0, 6.0]
        assert [when for when, _ in stream.replay_since(5.5)] == [6.0]


class BatchRecorder:
    def __init__(self):
        self.batches = []

    def on_batch(self, rows, open_time, close_time):
        self.batches.append((list(rows), open_time, close_time))

    def on_flush(self):
        pass


class TestDerivedStream:
    def make(self):
        schema = Schema([Column("c", IntegerType()),
                         Column("ts", TimestampType())])
        return DerivedStream("d", schema)

    def test_batch_consumers_get_batches(self):
        derived = self.make()
        sink = BatchRecorder()
        derived.subscribe(sink)
        derived.publish([(1, 60.0)], 0.0, 60.0)
        assert sink.batches == [([(1, 60.0)], 0.0, 60.0)]

    def test_tuple_consumers_get_flattened(self):
        derived = self.make()
        sink = Recorder()
        derived.subscribe(sink)
        derived.publish([(1, 60.0), (2, 60.0)], 0.0, 60.0)
        assert [row for _t, row in sink.tuples] == [(1, 60.0), (2, 60.0)]
        # event time is the window close
        assert all(t == 60.0 for t, _row in sink.tuples)

    def test_empty_batch_still_heartbeats_tuple_consumers(self):
        derived = self.make()
        sink = Recorder()
        derived.subscribe(sink)
        derived.publish([], 0.0, 60.0)
        assert sink.tuples == []
        assert sink.heartbeats == [60.0]

    def test_stats(self):
        derived = self.make()
        derived.publish([(1, 1.0)], 0.0, 60.0)
        derived.publish([(2, 2.0), (3, 3.0)], 60.0, 120.0)
        assert derived.batches_out == 2
        assert derived.tuples_out == 3
