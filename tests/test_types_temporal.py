"""Tests for timestamp and interval literal parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeError_
from repro.types.temporal import format_timestamp, parse_interval, parse_timestamp


class TestParseInterval:
    def test_minutes(self):
        assert parse_interval("5 minutes") == 300.0

    def test_single_minute(self):
        assert parse_interval("1 minute") == 60.0

    def test_week(self):
        assert parse_interval("1 week") == 7 * 86400.0

    def test_combined_units(self):
        assert parse_interval("1 hour 30 minutes") == 5400.0

    def test_fractional_quantity(self):
        assert parse_interval("1.5 hours") == 5400.0

    def test_abbreviations(self):
        assert parse_interval("30s") == 30.0
        assert parse_interval("5 min") == 300.0
        assert parse_interval("2h") == 7200.0

    def test_milliseconds(self):
        assert parse_interval("250 milliseconds") == 0.25

    def test_clock_syntax(self):
        assert parse_interval("01:30:00") == 5400.0

    def test_clock_syntax_with_seconds_fraction(self):
        assert parse_interval("00:00:01.5") == 1.5

    def test_negative_clock(self):
        assert parse_interval("-00:01:00") == -60.0

    def test_bare_number_is_seconds(self):
        assert parse_interval("90") == 90.0

    def test_numeric_passthrough(self):
        assert parse_interval(120) == 120.0
        assert parse_interval(1.5) == 1.5

    def test_negative_quantity(self):
        assert parse_interval("-5 minutes") == -300.0

    def test_case_insensitive(self):
        assert parse_interval("5 MINUTES") == 300.0

    def test_day(self):
        assert parse_interval("2 days") == 2 * 86400.0

    def test_empty_raises(self):
        with pytest.raises(TypeError_):
            parse_interval("")

    def test_garbage_raises(self):
        with pytest.raises(TypeError_):
            parse_interval("five minutes")

    def test_unknown_unit_raises(self):
        with pytest.raises(TypeError_):
            parse_interval("5 fortnights")

    def test_non_string_raises(self):
        with pytest.raises(TypeError_):
            parse_interval(["5 minutes"])

    @given(st.integers(min_value=0, max_value=10**6))
    def test_seconds_roundtrip(self, n):
        assert parse_interval(f"{n} seconds") == float(n)

    @given(st.integers(min_value=0, max_value=10**4))
    def test_minutes_are_60x_seconds(self, n):
        assert parse_interval(f"{n} minutes") == 60 * parse_interval(f"{n} seconds")


class TestParseTimestamp:
    def test_epoch_string(self):
        assert parse_timestamp("1970-01-01 00:01:00") == 60.0

    def test_date_only(self):
        assert parse_timestamp("1970-01-02") == 86400.0

    def test_iso_t_separator(self):
        assert parse_timestamp("1970-01-01T00:00:30") == 30.0

    def test_microseconds(self):
        assert parse_timestamp("1970-01-01 00:00:00.500000") == 0.5

    def test_numeric_passthrough(self):
        assert parse_timestamp(1234.5) == 1234.5

    def test_numeric_string(self):
        assert parse_timestamp("1234.5") == 1234.5

    def test_garbage_raises(self):
        with pytest.raises(TypeError_):
            parse_timestamp("next tuesday")

    def test_bool_is_not_a_timestamp(self):
        with pytest.raises(TypeError_):
            parse_timestamp(True)

    def test_format_roundtrip(self):
        text = "2009-01-04 09:30:00"
        assert format_timestamp(parse_timestamp(text)) == text

    @given(st.integers(min_value=0, max_value=2**31))
    def test_roundtrip_whole_seconds(self, epoch):
        assert parse_timestamp(format_timestamp(float(epoch))) == float(epoch)
