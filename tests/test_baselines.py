"""Tests for the three baseline architectures."""

import pytest

from repro import Database
from repro.baselines import (
    BatchRefreshMV,
    BatchWarehouse,
    MiniMapReduce,
    rollup_job,
)
from repro.baselines.mapreduce import MapReduceJob


class TestBatchWarehouse:
    def make(self, rows=200):
        wh = BatchWarehouse(buffer_pages=16)
        wh.create_raw_table(
            "CREATE TABLE raw (k varchar(20), v integer, ts timestamp)")
        wh.ingest("raw", [(f"k{i % 5}", i, float(i)) for i in range(rows)])
        return wh

    def test_ingest_counts_and_charges_writes(self):
        wh = self.make()
        assert wh.rows_loaded == 200
        assert wh.load_cost.io.pages_written > 0
        assert wh.load_cost.sim_seconds > 0

    def test_report_correctness(self):
        wh = self.make()
        result, _cost = wh.report(
            "SELECT k, count(*) FROM raw GROUP BY k ORDER BY k")
        assert result.rows[0] == ("k0", 40)

    def test_cold_report_charges_reads(self):
        wh = self.make()
        _result, cost = wh.report("SELECT count(*) FROM raw", cold_cache=True)
        assert cost.io.pages_read > 0

    def test_warm_report_cheaper(self):
        wh = BatchWarehouse(buffer_pages=4096)
        wh.create_raw_table(
            "CREATE TABLE raw (k varchar(20), v integer, ts timestamp)")
        wh.ingest("raw", [(f"k{i}", i, float(i)) for i in range(100)])
        _r1, cold = wh.report("SELECT count(*) FROM raw", cold_cache=True)
        _r2, warm = wh.report("SELECT count(*) FROM raw", cold_cache=False)
        assert warm.io.pages_read < cold.io.pages_read

    def test_report_cost_scales_with_data(self):
        small = self.make(rows=200)
        large = self.make(rows=2000)
        _r, cost_small = small.report("SELECT count(*) FROM raw")
        _r, cost_large = large.report("SELECT count(*) FROM raw")
        assert cost_large.io.pages_read > cost_small.io.pages_read * 3

    def test_report_suite_accumulates(self):
        wh = self.make()
        total = wh.report_suite(["SELECT count(*) FROM raw"] * 3)
        assert total.io.pages_read > 0
        _r, one = wh.report("SELECT count(*) FROM raw")
        assert total.sim_seconds > one.sim_seconds * 2


class TestBatchRefreshMV:
    def make_db(self, rows=60):
        db = Database()
        db.execute("CREATE TABLE base (k varchar(10), v integer, "
                   "ts timestamp)")
        db.insert_table(
            "base", [(f"k{i % 3}", 1, float(i)) for i in range(rows)])
        return db

    def test_full_refresh(self):
        db = self.make_db()
        mv = BatchRefreshMV(db, "mv", "base", ["k"],
                            [("count", None), ("sum", "v")], "ts", "full")
        mv.refresh(up_to_time=60.0)
        assert sorted(mv.query()) == [
            ("k0", 20, 20), ("k1", 20, 20), ("k2", 20, 20)]

    def test_incremental_refresh_matches_full(self):
        db_full = self.make_db()
        db_inc = self.make_db()
        full = BatchRefreshMV(db_full, "mv", "base", ["k"],
                              [("count", None)], "ts", "full")
        inc = BatchRefreshMV(db_inc, "mv", "base", ["k"],
                             [("count", None)], "ts", "incremental")
        for t in (20.0, 40.0, 60.0):
            full.refresh(up_to_time=t)
            inc.refresh(up_to_time=t)
        assert sorted(full.query()) == sorted(inc.query())

    def test_incremental_processes_only_delta(self):
        db = self.make_db()
        mv = BatchRefreshMV(db, "mv", "base", ["k"],
                            [("count", None)], "ts", "incremental")
        first = mv.refresh(up_to_time=30.0)
        second = mv.refresh(up_to_time=60.0)
        assert first.rows_processed == 30
        assert second.rows_processed == 30

    def test_full_reprocesses_everything(self):
        db = self.make_db()
        mv = BatchRefreshMV(db, "mv", "base", ["k"],
                            [("count", None)], "ts", "full")
        mv.refresh(up_to_time=30.0)
        second = mv.refresh(up_to_time=60.0)
        assert second.rows_processed == 60

    def test_staleness(self):
        db = self.make_db()
        mv = BatchRefreshMV(db, "mv", "base", ["k"],
                            [("count", None)], "ts", "full")
        assert mv.staleness(100.0) == float("inf")
        mv.refresh(up_to_time=60.0)
        assert mv.staleness(100.0) == 40.0

    def test_min_max_merge(self):
        db = Database()
        db.execute("CREATE TABLE base (k varchar(10), v integer, ts timestamp)")
        db.insert_table("base", [("a", 5, 1.0), ("a", 9, 2.0)])
        mv = BatchRefreshMV(db, "mv", "base", ["k"],
                            [("min", "v"), ("max", "v")], "ts", "incremental")
        mv.refresh(up_to_time=1.5)
        db.insert_table("base", [("a", 1, 3.0)])
        mv.refresh(up_to_time=10.0)
        assert mv.query() == [("a", 1, 9)]

    def test_refresh_cost_accounted(self):
        db = self.make_db(rows=500)
        mv = BatchRefreshMV(db, "mv", "base", ["k"],
                            [("count", None)], "ts", "full")
        cost = mv.refresh(up_to_time=1000.0)
        assert cost.sim_seconds > 0
        assert mv.refresh_count == 1


class TestMiniMapReduce:
    def test_rollup_correct(self):
        mr = MiniMapReduce()
        result = mr.run(rollup_job(lambda r: r[0]),
                        [("a", 1), ("b", 2), ("a", 3)])
        assert sorted(result.rows) == [("a", 2), ("b", 1)]

    def test_sum_rollup(self):
        mr = MiniMapReduce()
        result = mr.run(rollup_job(lambda r: r[0], lambda r: r[1]),
                        [("a", 1), ("b", 2), ("a", 3)])
        assert sorted(result.rows) == [("a", 4), ("b", 2)]

    def test_charges_all_phases(self):
        mr = MiniMapReduce()
        rows = [(f"key{i % 10}", i) for i in range(5000)]
        result = mr.run(rollup_job(lambda r: r[0]), rows)
        assert result.bytes_read > 0
        assert result.bytes_shuffled > 0
        assert result.bytes_written > 0
        assert result.io.pages_read > 0
        assert result.io.pages_written > 0

    def test_combiner_shrinks_shuffle(self):
        rows = [(f"key{i % 3}", 1) for i in range(10000)]
        with_combiner = MiniMapReduce().run(rollup_job(lambda r: r[0]), rows)
        job = rollup_job(lambda r: r[0])
        no_combiner = MiniMapReduce().run(
            MapReduceJob(job.mapper, job.reducer, None), rows)
        assert with_combiner.bytes_shuffled < no_combiner.bytes_shuffled / 100
        assert sorted(with_combiner.rows) == sorted(no_combiner.rows)

    def test_custom_job(self):
        def mapper(row):
            for word in row[0].split():
                yield word, 1

        def reducer(key, values):
            yield (key, sum(values))

        mr = MiniMapReduce()
        result = mr.run(MapReduceJob(mapper, reducer),
                        [("the quick the",), ("quick",)])
        assert sorted(result.rows) == [("quick", 2), ("the", 2)]

    def test_partition_count_does_not_change_result(self):
        rows = [(f"k{i % 7}", 1) for i in range(100)]
        a = MiniMapReduce(num_partitions=1).run(rollup_job(lambda r: r[0]), rows)
        b = MiniMapReduce(num_partitions=8).run(rollup_job(lambda r: r[0]), rows)
        assert sorted(a.rows) == sorted(b.rows)
