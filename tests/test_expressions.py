"""Tests for the expression compiler (via SELECT-without-FROM and layouts)."""

import pytest

from repro.errors import BindError, ExecutionError
from repro.exec.expressions import RowLayout, compile_expr, infer_type
from repro.sql import parse_statement
from repro.types.datatypes import (
    DoubleType,
    IntegerType,
    IntervalType,
    TimestampType,
    VarcharType,
)


def eval_const(text, ctx=None):
    expr = parse_statement(f"SELECT {text}").items[0].expr
    fn = compile_expr(expr, RowLayout([]))
    return fn(None, ctx if ctx is not None else {})


LAYOUT = RowLayout([
    ("t", "a", IntegerType()),
    ("t", "b", VarcharType(None)),
    ("t", "c", DoubleType()),
])


def eval_row(text, row, ctx=None):
    expr = parse_statement(f"SELECT {text}").items[0].expr
    fn = compile_expr(expr, LAYOUT)
    return fn(row, ctx if ctx is not None else {})


class TestArithmetic:
    def test_basics(self):
        assert eval_const("1 + 2 * 3") == 7
        assert eval_const("10 - 4") == 6
        assert eval_const("7 / 2") == 3.5
        assert eval_const("7 % 3") == 1

    def test_negative(self):
        assert eval_const("-5 + 3") == -2

    def test_null_propagation(self):
        assert eval_const("1 + NULL") is None
        assert eval_const("NULL * 2") is None

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            eval_const("1 / 0")

    def test_string_concat(self):
        assert eval_const("'foo' || 'bar'") == "foobar"
        assert eval_const("'a' || NULL") is None


class TestComparisons:
    def test_basic(self):
        assert eval_const("1 < 2") is True
        assert eval_const("2 <= 2") is True
        assert eval_const("3 > 4") is False
        assert eval_const("1 = 1") is True
        assert eval_const("1 <> 1") is False

    def test_null_comparisons_are_unknown(self):
        assert eval_const("NULL = NULL") is None
        assert eval_const("1 > NULL") is None

    def test_string_comparison(self):
        assert eval_const("'abc' < 'abd'") is True


class TestLogic:
    def test_and_or(self):
        assert eval_const("TRUE AND FALSE") is False
        assert eval_const("TRUE OR FALSE") is True

    def test_three_valued(self):
        assert eval_const("TRUE AND NULL") is None
        assert eval_const("FALSE AND NULL") is False
        assert eval_const("TRUE OR NULL") is True
        assert eval_const("FALSE OR NULL") is None

    def test_not(self):
        assert eval_const("NOT TRUE") is False
        assert eval_const("NOT NULL") is None


class TestPredicates:
    def test_is_null(self):
        assert eval_const("NULL IS NULL") is True
        assert eval_const("1 IS NULL") is False
        assert eval_const("1 IS NOT NULL") is True

    def test_like(self):
        assert eval_const("'hello' LIKE 'he%'") is True
        assert eval_const("'hello' NOT LIKE 'he%'") is False
        assert eval_const("'HELLO' ILIKE 'he%'") is True

    def test_in_list(self):
        assert eval_const("2 IN (1, 2, 3)") is True
        assert eval_const("5 IN (1, 2, 3)") is False
        assert eval_const("5 NOT IN (1, 2)") is True

    def test_in_with_null_semantics(self):
        assert eval_const("5 IN (1, NULL)") is None
        assert eval_const("1 IN (1, NULL)") is True
        assert eval_const("NULL IN (1)") is None

    def test_between(self):
        assert eval_const("5 BETWEEN 1 AND 10") is True
        assert eval_const("0 BETWEEN 1 AND 10") is False
        assert eval_const("0 NOT BETWEEN 1 AND 10") is True


class TestCasts:
    def test_cast_to_int(self):
        assert eval_const("'42'::int") == 42

    def test_cast_interval(self):
        assert eval_const("'1 week'::interval") == 7 * 86400.0

    def test_cast_timestamp(self):
        assert eval_const("'1970-01-01 00:01:00'::timestamp") == 60.0

    def test_timestamp_minus_interval(self):
        assert eval_const(
            "'1970-01-08'::timestamp - '1 week'::interval") == 0.0

    def test_cast_function_form(self):
        assert eval_const("CAST('3.5' AS double)") == 3.5


class TestCase:
    def test_searched(self):
        assert eval_const(
            "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END") == "b"

    def test_else(self):
        assert eval_const("CASE WHEN FALSE THEN 1 ELSE 2 END") == 2

    def test_no_match_no_else_is_null(self):
        assert eval_const("CASE WHEN FALSE THEN 1 END") is None

    def test_simple_form(self):
        assert eval_const("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"


class TestScalarFunctions:
    def test_strings(self):
        assert eval_const("lower('ABC')") == "abc"
        assert eval_const("upper('abc')") == "ABC"
        assert eval_const("length('hello')") == 5
        assert eval_const("substr('hello', 2, 3)") == "ell"

    def test_math(self):
        assert eval_const("abs(-4)") == 4
        assert eval_const("round(3.456, 2)") == 3.46
        assert eval_const("floor(3.7)") == 3
        assert eval_const("ceil(3.2)") == 4
        assert eval_const("sqrt(16)") == 4.0

    def test_null_guard(self):
        assert eval_const("lower(NULL)") is None
        assert eval_const("abs(NULL)") is None

    def test_coalesce(self):
        assert eval_const("coalesce(NULL, NULL, 3)") == 3
        assert eval_const("coalesce(NULL, NULL)") is None

    def test_nullif(self):
        assert eval_const("nullif(1, 1)") is None
        assert eval_const("nullif(1, 2)") == 1

    def test_greatest_least(self):
        assert eval_const("greatest(1, 5, 3)") == 5
        assert eval_const("least(1, 5, 3)") == 1

    def test_date_trunc(self):
        assert eval_const("date_trunc('minute', 125)") == 120.0
        assert eval_const("date_trunc('hour', 7300)") == 7200.0

    def test_unknown_function(self):
        with pytest.raises(BindError):
            eval_const("frobnicate(1)")


class TestContextFunctions:
    def test_cq_close_from_context(self):
        assert eval_const("cq_close(*)", ctx={"cq_close": 60.0}) == 60.0

    def test_cq_close_outside_cq_raises(self):
        with pytest.raises(ExecutionError):
            eval_const("cq_close(*)", ctx={})


class TestColumnResolution:
    def test_qualified(self):
        assert eval_row("t.a + 1", (5, "x", 0.5)) == 6

    def test_unqualified(self):
        assert eval_row("b || '!'", (5, "x", 0.5)) == "x!"

    def test_missing_column(self):
        with pytest.raises(BindError):
            eval_row("zzz", (5, "x", 0.5))

    def test_missing_alias(self):
        with pytest.raises(BindError):
            eval_row("u.a", (5, "x", 0.5))

    def test_ambiguous(self):
        layout = RowLayout([
            ("x", "a", IntegerType()), ("y", "a", IntegerType())])
        expr = parse_statement("SELECT a").items[0].expr
        with pytest.raises(BindError):
            compile_expr(expr, layout)

    def test_ambiguous_resolved_by_qualifier(self):
        layout = RowLayout([
            ("x", "a", IntegerType()), ("y", "a", IntegerType())])
        expr = parse_statement("SELECT y.a").items[0].expr
        fn = compile_expr(expr, layout)
        assert fn((1, 2), {}) == 2


class TestTypeInference:
    def infer(self, text, layout=None):
        expr = parse_statement(f"SELECT {text}").items[0].expr
        return infer_type(expr, layout if layout is not None else LAYOUT)

    def test_literals(self):
        assert isinstance(self.infer("1"), IntegerType)
        assert isinstance(self.infer("1.5"), DoubleType)
        assert isinstance(self.infer("'x'"), VarcharType)

    def test_column(self):
        assert isinstance(self.infer("a"), IntegerType)

    def test_int_arithmetic_stays_int(self):
        assert isinstance(self.infer("a + 1"), IntegerType)

    def test_division_is_double(self):
        assert isinstance(self.infer("a / 2"), DoubleType)

    def test_cast(self):
        assert isinstance(self.infer("a::timestamp"), TimestampType)

    def test_timestamp_minus_timestamp_is_interval(self):
        layout = RowLayout([
            (None, "t1", TimestampType()), (None, "t2", TimestampType())])
        assert isinstance(self.infer("t1 - t2", layout), IntervalType)

    def test_timestamp_minus_interval_is_timestamp(self):
        layout = RowLayout([
            (None, "t1", TimestampType()), (None, "d", IntervalType())])
        assert isinstance(self.infer("t1 - d", layout), TimestampType)

    def test_cq_close_is_timestamp(self):
        assert isinstance(self.infer("cq_close(*)"), TimestampType)
