"""Tests for cumulative (VISIBLE UNBOUNDED) windows and median in CQs."""

import pytest

from repro import Database
from repro.errors import ParseError, WindowError
from repro.sql import parse_statement


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE STREAM s (k varchar(5), v integer, "
                     "ts timestamp CQTIME USER)")
    return database


class TestUnboundedWindows:
    def test_parse(self):
        select = parse_statement(
            "SELECT count(*) FROM s <VISIBLE UNBOUNDED ADVANCE '1 minute'>")
        window = select.from_clause.window
        assert window.visible == float("inf")
        assert window.advance == 60.0

    def test_requires_advance(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT count(*) FROM s <VISIBLE UNBOUNDED>")

    def test_cumulative_counts(self, db):
        sub = db.subscribe("SELECT count(*), sum(v) FROM s "
                           "<VISIBLE UNBOUNDED ADVANCE '1 minute'>")
        db.insert_stream("s", [("a", 1, 5.0), ("a", 2, 10.0)])
        db.advance_streams(60.0)
        db.insert_stream("s", [("a", 4, 65.0)])
        db.advance_streams(120.0)
        out = [(w.close_time, w.rows) for w in sub.poll()]
        assert out == [(60.0, [(2, 3)]), (120.0, [(3, 7)])]

    def test_cumulative_group_by(self, db):
        sub = db.subscribe("SELECT k, count(*) FROM s "
                           "<VISIBLE UNBOUNDED ADVANCE '1 minute'> "
                           "GROUP BY k ORDER BY k")
        db.insert_stream("s", [("a", 1, 5.0), ("b", 1, 6.0)])
        db.advance_streams(60.0)
        db.insert_stream("s", [("a", 1, 61.0)])
        db.advance_streams(120.0)
        windows = sub.poll()
        assert windows[-1].rows == [("a", 2), ("b", 1)]

    def test_flush_emits_final_total(self, db):
        sub = db.subscribe("SELECT count(*) FROM s "
                           "<VISIBLE UNBOUNDED ADVANCE '1 minute'>")
        db.insert_stream("s", [("a", 1, 5.0)])
        db.flush_streams()
        assert sub.rows() == [(1,)]
        db.flush_streams()  # idempotent, no crash

    def test_not_shared_even_when_sharing_enabled(self):
        shared_db = Database(share_slices=True)
        shared_db.execute("CREATE STREAM s (k varchar(5), v integer, "
                          "ts timestamp CQTIME USER)")
        sub = shared_db.subscribe(
            "SELECT count(*) FROM s <VISIBLE UNBOUNDED ADVANCE '1 minute'>")
        assert not getattr(sub.cq, "shared", False)
        assert shared_db.runtime.aggregators() == []


class TestMedianInQueries:
    def test_median_snapshot(self, db):
        db.execute("CREATE TABLE t (x double precision)")
        db.insert_table("t", [(1.0,), (100.0,), (7.0,)])
        assert db.query("SELECT median(x) FROM t").scalar() == 7.0

    def test_median_in_windowed_cq(self, db):
        sub = db.subscribe(
            "SELECT k, median(v) FROM s <VISIBLE '1 minute'> "
            "GROUP BY k ORDER BY k")
        db.insert_stream("s", [("a", 10, 1.0), ("a", 2, 2.0), ("a", 4, 3.0)])
        db.advance_streams(60.0)
        assert sub.rows() == [("a", 4)]

    def test_median_shared_path_matches_generic(self):
        results = []
        for share in (True, False):
            db = Database(share_slices=share)
            db.execute("CREATE STREAM s (k varchar(5), v integer, "
                       "ts timestamp CQTIME USER)")
            sub = db.subscribe(
                "SELECT median(v) FROM s <VISIBLE '2 minutes' "
                "ADVANCE '1 minute'>")
            db.insert_stream("s", [("a", 3, 5.0), ("a", 9, 70.0),
                                   ("a", 5, 100.0)])
            db.advance_streams(180.0)
            results.append([(w.close_time, w.rows) for w in sub.poll()])
        assert results[0] == results[1]
