"""Chaos scenarios for the ``admission.*`` crashpoints.

Two faults, one promise each:

* ``admission.quota_check`` — the admission decision itself dies
  mid-flight.  The batch must be *refused with a retry hint*, never
  half-applied: rejection, not corruption.
* ``admission.dedup_persist`` — the engine dies between applying a
  batch's rows and making its dedup marker durable.  In-process the
  marker is still recorded (a retry acks duplicate); after a real
  crash the lost marker means recovery discards the batch's rows as a
  torn batch — and the client's retry is accepted fresh.  Both paths
  end with every row applied exactly once.
"""

import pytest

from repro import Database
from repro import client
from repro.clock import ManualClock
from repro.errors import AdmissionError, FaultInjected
from repro.faults import FaultInjector
from repro.replication import open_database
from repro.server import ServerThread

STREAM_DDL = "CREATE STREAM s (v integer, ts timestamp CQTIME USER)"


class TestQuotaCheckCrashpoint:
    def test_refusal_not_corruption(self):
        faults = FaultInjector(seed=11)
        faults.arm("admission.quota_check", count=1)
        clk = ManualClock()
        with ServerThread(clock=clk, fault_injector=faults) as st:
            conn = client.connect(st.host, st.port, tenant="acme",
                                  clock=clk)
            try:
                conn.execute(STREAM_DDL)
                with pytest.raises(AdmissionError) as info:
                    conn.ingest("s", [(1, 1.0), (2, 2.0)], retry=False)
                assert info.value.reason == "fault"
                assert info.value.retryable
                # nothing reached the engine
                assert conn.query(
                    "SELECT tuples FROM repro_streams").scalar() == 0
                # the fault is spent: a plain retry goes through whole
                assert conn.ingest("s", [(1, 1.0), (2, 2.0)]) == 2
                assert conn.query(
                    "SELECT tuples FROM repro_streams").scalar() == 2
                assert st.db.admission.tenant("acme").batches_rejected == 1
            finally:
                conn.close()

    def test_client_auto_retry_rides_through(self):
        faults = FaultInjector(seed=11)
        faults.arm("admission.quota_check", count=1)
        clk = ManualClock()
        with ServerThread(clock=clk, fault_injector=faults) as st:
            conn = client.connect(st.host, st.port, clock=clk)
            try:
                conn.execute(STREAM_DDL)
                # the retryable refusal is absorbed by the client's own
                # backoff loop; the caller just sees an admitted batch
                assert conn.ingest("s", [(1, 1.0)]) == 1
                assert conn.query(
                    "SELECT tuples FROM repro_streams").scalar() == 1
            finally:
                conn.close()


class TestDedupPersistCrashpoint:
    def batch(self, seqs, at=1.0):
        return [(seq, at + i) for i, seq in enumerate(seqs)]

    def test_in_process_retry_is_duplicate(self):
        faults = FaultInjector(seed=7)
        faults.arm("admission.dedup_persist", count=1)
        db = Database(fault_injector=faults)
        db.execute(STREAM_DDL)
        with pytest.raises(FaultInjected):
            db.ingest_batch("s", [(1, 1.0), (2, 2.0)],
                            sender="c1", seq=1)
        # the rows went in and the marker was recorded in memory, so an
        # in-process client retry does not double-apply
        replay = db.ingest_batch("s", [(1, 1.0), (2, 2.0)],
                                 sender="c1", seq=1)
        assert replay == {"accepted": 0, "shed": 0, "dropped": 0,
                          "duplicate": 2}
        assert db.query("SELECT tuples FROM repro_streams").scalar() == 2
        db.close()

    def test_crash_discards_torn_batch_and_retry_lands_fresh(self,
                                                             tmp_path):
        wal_path = str(tmp_path / "wal.jsonl")
        faults = FaultInjector(seed=7)
        # after=1: let batch 1's marker persist cleanly, kill batch 2's
        faults.arm("admission.dedup_persist", count=1, after=1)
        db = Database(wal_path=wal_path, stream_retention=3600.0,
                      fault_injector=faults)
        db.execute(STREAM_DDL)
        # batch 1 commits cleanly: rows + marker in one flush
        db.ingest_batch("s", self.batch([1, 2], at=1.0),
                        sender="c1", seq=1)
        # batch 2 dies between row apply and marker persist
        with pytest.raises(FaultInjected):
            db.ingest_batch("s", self.batch([3, 4], at=3.0),
                            sender="c1", seq=2)
        # the engine lives on; batch 3's marker flush makes batch 2's
        # rows durable too — but batch 2's marker was never written, so
        # the log now holds exactly half of that batch
        db.ingest_batch("s", self.batch([5], at=5.0), sender="c1", seq=3)
        db.close()

        recovered = open_database(wal_path=wal_path,
                                  stream_retention=3600.0)
        try:
            # recovery kept batches 1 and 3 whole and discarded batch
            # 2's marker-less rows as a torn batch
            stats = recovered.recovery_stats
            assert stats["torn_batch_rows"] == 2
            assert stats["dedup_markers"] == 2
            assert recovered.query(
                "SELECT tuples FROM repro_streams").scalar() == 3
            # the client's retry of batch 2 is accepted fresh ...
            retry = recovered.ingest_batch(
                "s", self.batch([3, 4], at=6.0), sender="c1", seq=2)
            assert retry["accepted"] == 2 and retry["duplicate"] == 0
            # ... and a replay of batch 1 is still a duplicate
            replay = recovered.ingest_batch(
                "s", self.batch([1, 2], at=7.0), sender="c1", seq=1)
            assert replay["duplicate"] == 2
            assert recovered.query(
                "SELECT tuples FROM repro_streams").scalar() == 5
        finally:
            recovered.close()
