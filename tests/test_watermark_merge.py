"""Min-of-inputs watermark merging across partition workers.

The coordinator may only close a window boundary once *every* worker
has acked a watermark at or past it — one stalled shard must hold the
merged clock, and per-input regressions (an out-of-order ack after a
restart replay) must be ignored.  No sleeps anywhere: the merge is a
pure function of the acks.
"""

import pytest

from repro.eventtime.watermark import WatermarkMerge

NEG_INF = float("-inf")


class TestWatermarkMerge:
    def test_merged_is_min_of_inputs(self):
        m = WatermarkMerge(range(3))
        assert m.merged == NEG_INF
        m.update(0, 10.0)
        m.update(1, 7.0)
        assert m.merged == NEG_INF          # worker 2 never reported
        assert m.update(2, 5.0) == 5.0
        assert m.merged == 5.0

    def test_stalled_input_holds_the_merge(self):
        m = WatermarkMerge(range(3))
        for w in range(3):
            m.update(w, 10.0)
        assert m.merged == 10.0
        # two workers race ahead; the stalled one pins the merge
        m.update(0, 50.0)
        m.update(1, 90.0)
        assert m.merged == 10.0
        assert m.update(2, 60.0) == 50.0    # min moves to worker 0

    def test_update_returns_advance_or_none(self):
        m = WatermarkMerge(range(2))
        assert m.update(0, 5.0) is None     # other input still -inf
        assert m.update(1, 3.0) == 3.0
        assert m.update(1, 4.0) == 4.0      # the minimum input advanced
        assert m.update(0, 5.0) is None     # no per-input change
        assert m.update(1, 9.0) == 5.0      # min moves to the other input

    def test_per_input_regression_ignored(self):
        # a replayed worker re-acks old watermarks; they must neither
        # regress its input nor the merge
        m = WatermarkMerge(range(2))
        m.update(0, 20.0)
        m.update(1, 30.0)
        assert m.merged == 20.0
        assert m.update(0, 5.0) is None
        assert m.input_watermark(0) == 20.0
        assert m.merged == 20.0

    def test_out_of_order_acks_converge(self):
        # acks applied in any order land on the same merged minimum
        acks = [(0, 10.0), (1, 40.0), (0, 30.0), (1, 15.0), (0, 25.0)]
        m1 = WatermarkMerge(range(2))
        m2 = WatermarkMerge(range(2))
        for w, t in acks:
            m1.update(w, t)
        for w, t in reversed(acks):
            m2.update(w, t)
        assert m1.merged == m2.merged == 30.0
        assert m1.inputs() == m2.inputs()

    def test_unknown_input_rejected(self):
        m = WatermarkMerge(range(2))
        with pytest.raises(KeyError):
            m.update(7, 1.0)

    def test_needs_at_least_one_input(self):
        with pytest.raises(ValueError):
            WatermarkMerge([])

    def test_single_input_degenerates_to_tracker(self):
        m = WatermarkMerge([0])
        assert m.update(0, 4.0) == 4.0
        assert m.merged == 4.0
