"""Tests for WAL shipping and the warm standby.

Layered like the subsystem itself: record wire round-trips and the
standby applier are exercised against plain :class:`Database` objects;
the shipping loop, the ``repro_replication_status`` view and promotion
run against real primary/standby server pairs over loopback TCP.
"""

import time

import pytest

import repro.client as client
from repro.core.database import Database
from repro.errors import RemoteError
from repro.faults import FaultInjector
from repro.server import ServerThread
from repro.storage.wal import (
    LogRecord,
    record_from_wire,
    record_to_wire,
)
from repro.replication.standby import WalApplier, WalGap

STREAM_DDL = "CREATE STREAM s (v integer, ts timestamp CQTIME USER)"
PIPELINE_DDL = """
CREATE STREAM totals AS SELECT count(*) c, cq_close(*)
    FROM s <VISIBLE '10 seconds' ADVANCE '10 seconds'>;
CREATE TABLE archive (c bigint, ts timestamp);
CREATE CHANNEL arch FROM totals INTO archive APPEND;
"""


def make_primary_db():
    db = Database(stream_retention=600.0)
    db.enable_replication_logging()
    return db


def wal_records(db):
    return list(db.storage.wal.records)


# ---------------------------------------------------------------------------
# record wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_roundtrip_preserves_checksum(self):
        record = LogRecord(7, 3, "insert", "t", rid=(0, 1),
                           after=(1, "x", 2.5))
        record.crc = record.content_crc()
        back = record_from_wire(record_to_wire(record))
        assert back.lsn == 7 and back.txid == 3
        assert back.after == (1, "x", 2.5)
        assert back.is_valid()

    def test_tampered_record_fails_validation(self):
        record = LogRecord(1, 1, "insert", "t", rid=(0, 0), after=(1,))
        record.crc = record.content_crc()
        wire = record_to_wire(record)
        wire["after"] = [999]
        assert not record_from_wire(wire).is_valid()


# ---------------------------------------------------------------------------
# the standby applier (no sockets: records handed over directly)
# ---------------------------------------------------------------------------


def ship(primary, standby_applier, from_lsn=1):
    """Hand the primary's WAL tail to the applier as one wire batch."""
    records = [record_to_wire(r)
               for r in primary.storage.wal.records_from(from_lsn)]
    if records:
        standby_applier.apply_batches([{"records": records}])


class TestWalApplier:
    def pair(self):
        primary = make_primary_db()
        standby = Database(replication_logging=False, supervised=True)
        return primary, standby, WalApplier(standby)

    def test_ddl_and_rows_apply(self):
        primary, standby, applier = self.pair()
        primary.execute("CREATE TABLE t (a integer, b varchar(10))")
        primary.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        ship(primary, applier)
        assert sorted(standby.query("SELECT a, b FROM t").rows) \
            == [(1, "x"), (2, "y")]

    def test_delete_applies_by_before_image(self):
        primary, standby, applier = self.pair()
        primary.execute("CREATE TABLE t (a integer)")
        primary.execute("INSERT INTO t VALUES (1), (2), (3)")
        primary.execute("DELETE FROM t WHERE a = 2")
        ship(primary, applier)
        assert sorted(standby.query("SELECT a FROM t").rows) == [(1,), (3,)]

    def test_standby_wal_is_byte_prefix_of_primary(self):
        primary, standby, applier = self.pair()
        primary.execute("CREATE TABLE t (a integer)")
        primary.execute("INSERT INTO t VALUES (1)")
        ship(primary, applier)
        ours = wal_records(standby)
        theirs = wal_records(primary)
        assert [record_to_wire(r) for r in ours] \
            == [record_to_wire(r) for r in theirs[:len(ours)]]
        assert standby.storage.wal.head_lsn == primary.storage.wal.head_lsn

    def test_duplicate_batches_are_skipped(self):
        primary, standby, applier = self.pair()
        primary.execute("CREATE TABLE t (a integer)")
        primary.execute("INSERT INTO t VALUES (1)")
        ship(primary, applier)
        ship(primary, applier)  # same records again
        assert standby.query("SELECT count(*) FROM t").scalar() == 1
        assert standby.storage.wal.head_lsn == primary.storage.wal.head_lsn

    def test_lsn_gap_raises_walgap(self):
        primary, standby, applier = self.pair()
        primary.execute("CREATE TABLE t (a integer)")
        primary.execute("INSERT INTO t VALUES (1), (2)")
        records = [record_to_wire(r) for r in wal_records(primary)]
        assert len(records) == 4          # ddl, insert, insert, commit
        applier.apply_batches([{"records": records[:2]}])
        with pytest.raises(WalGap) as info:
            applier.apply_batches([{"records": records[3:]}])
        assert info.value.resume_lsn == 3

    def test_corrupt_record_is_quarantined_not_fatal(self):
        primary, standby, applier = self.pair()
        primary.execute("CREATE TABLE t (a integer)")
        primary.execute("INSERT INTO t VALUES (1)")
        primary.execute("INSERT INTO t VALUES (2)")
        records = [record_to_wire(r) for r in wal_records(primary)]
        # corrupt the body of one insert (checksum no longer matches)
        victim = next(r for r in records
                      if r["kind"] == "insert" and r["after"] == [2])
        victim["after"] = [666]
        applier.apply_batches([{"records": records}])
        # the poisoned insert's effect is skipped, everything else lands
        assert standby.query("SELECT a FROM t").rows == [(1,)]
        # the log stays contiguous: the record was adopted (re-stamped)
        assert standby.storage.wal.head_lsn == primary.storage.wal.head_lsn
        assert applier.poisoned == 1
        letters = standby.query(
            "SELECT source, kind FROM repro_dead_letters").rows
        assert ("replication:t", "replication_apply") in letters

    def test_apply_crashpoint_quarantines_record(self):
        primary = make_primary_db()
        faults = FaultInjector(7)
        standby = Database(replication_logging=False, supervised=True,
                           fault_injector=faults)
        applier = WalApplier(standby, faults=faults)
        primary.execute("CREATE TABLE t (a integer)")
        primary.execute("INSERT INTO t VALUES (1)")
        # after=1: spare the DDL record, strike the insert
        faults.arm("replication.apply", probability=1.0, count=1, after=1)
        ship(primary, applier)
        assert applier.poisoned == 1
        # the struck insert's effect is skipped; the commit is a no-op
        assert standby.query("SELECT count(*) FROM t").scalar() == 0
        # log stays contiguous despite the struck record
        assert standby.storage.wal.head_lsn == primary.storage.wal.head_lsn

    def test_stream_tuples_and_windows_apply(self):
        primary, standby, applier = self.pair()
        primary.execute(STREAM_DDL)
        primary.execute_script(PIPELINE_DDL)
        ship(primary, applier)
        primary.insert_stream("s", [(i, float(i)) for i in range(1, 10)])
        primary.insert_stream("s", [(0, 11.0)])   # closes (0,10]
        ship(primary, applier, from_lsn=standby.storage.wal.head_lsn + 1)
        assert standby.query("SELECT c, ts FROM archive").rows \
            == primary.query("SELECT c, ts FROM archive").rows \
            == [(9, 10.0)]


# ---------------------------------------------------------------------------
# end-to-end over loopback TCP
# ---------------------------------------------------------------------------


def wait_until(probe, timeout=10.0, interval=0.05):
    """Poll until ``probe`` is truthy.  A probe that raises RemoteError
    is treated as not-yet (e.g. DDL not applied on the standby yet)."""
    deadline = time.monotonic() + timeout
    error = None
    while time.monotonic() < deadline:
        try:
            value = probe()
        except RemoteError as exc:
            error = exc
            value = None
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"condition not reached (last error: {error})")


@pytest.fixture
def primary(tmp_path):
    with ServerThread(data_dir=str(tmp_path / "prim"),
                      stream_retention=600.0) as st:
        yield st


@pytest.fixture
def standby_of(tmp_path):
    started = []

    def boot(primary, **kwargs):
        kwargs.setdefault("heartbeat_interval", 0.15)
        kwargs.setdefault("auto_promote", False)
        st = ServerThread(data_dir=str(tmp_path / "stby"),
                          standby_of=f"{primary.host}:{primary.port}",
                          stream_retention=600.0, **kwargs)
        st.start()
        started.append(st)
        return st

    yield boot
    for st in started:
        st.stop()


class TestShipping:
    def test_standby_mirrors_pipeline_and_reports_lag(
            self, primary, standby_of):
        pconn = client.connect(primary.host, primary.port)
        pconn.execute(STREAM_DDL)
        pconn.execute("CREATE STREAM totals AS SELECT count(*) c, "
                      "cq_close(*) FROM s "
                      "<VISIBLE '10 seconds' ADVANCE '10 seconds'>")
        pconn.execute("CREATE TABLE archive (c bigint, ts timestamp)")
        pconn.execute("CREATE CHANNEL arch FROM totals INTO archive APPEND")
        stby = standby_of(primary)
        pconn.ingest("s", [(i, float(i)) for i in range(1, 10)])
        pconn.ingest("s", [(0, 11.0)])
        expected = wait_until(
            lambda: pconn.query("SELECT c, ts FROM archive").rows)

        sconn = client.connect(stby.host, stby.port)
        wait_until(lambda: sconn.query(
            "SELECT c, ts FROM archive").rows == expected)
        status = wait_until(lambda: [
            row for row in sconn.query(
                "SELECT role, state, lag FROM repro_replication_status").rows
            if row == ("standby", "streaming", 0)])
        assert status

        primary_status = pconn.query(
            "SELECT role, state, lag FROM repro_replication_status").rows
        assert ("primary", "streaming", 0) in primary_status
        sconn.close()
        pconn.close()

    def test_standby_rejects_writes_until_promoted(
            self, primary, standby_of):
        pconn = client.connect(primary.host, primary.port)
        pconn.execute("CREATE TABLE t (a integer)")
        stby = standby_of(primary)
        sconn = client.connect(stby.host, stby.port)
        wait_until(lambda: sconn.query(
            "SELECT count(*) FROM repro_tables").scalar() >= 1)
        assert sconn.role == "standby"
        with pytest.raises(RemoteError) as info:
            sconn.execute("INSERT INTO t VALUES (1)")
        assert "standby" in str(info.value)
        with pytest.raises(RemoteError):
            sconn.ingest("t", [(1,)])
        # reads are fine
        assert sconn.query("SELECT count(*) FROM t").scalar() == 0
        sconn.close()
        pconn.close()

    def test_explicit_promotion_rebuilds_cqs_and_accepts_writes(
            self, primary, standby_of):
        pconn = client.connect(primary.host, primary.port)
        pconn.execute(STREAM_DDL)
        pconn.execute("CREATE STREAM totals AS SELECT count(*) c, "
                      "cq_close(*) FROM s "
                      "<VISIBLE '10 seconds' ADVANCE '10 seconds'>")
        pconn.execute("CREATE TABLE archive (c bigint, ts timestamp)")
        pconn.execute("CREATE CHANNEL arch FROM totals INTO archive APPEND")
        stby = standby_of(primary)
        pconn.ingest("s", [(i, float(i)) for i in range(1, 10)])
        pconn.ingest("s", [(5, 11.0)])
        wait_until(lambda: pconn.query("SELECT count(*) FROM archive")
                   .scalar() == 1)

        sconn = client.connect(stby.host, stby.port)
        wait_until(lambda: sconn.query(
            "SELECT count(*) FROM archive").scalar() == 1)
        stats = sconn.promote("test promotion")
        assert stats["reason"] == "test promotion"
        assert ["derived:totals", "active-table"] in stats["cqs"] \
            or ("derived:totals", "active-table") in [
                tuple(c) for c in stats["cqs"]]

        fresh = client.connect(stby.host, stby.port)
        assert fresh.role == "primary"
        # continue the stream on the promoted node: next window closes
        # on the same grid the primary was using
        fresh.ingest("s", [(7, 12.0), (8, 13.0)])
        fresh.ingest("s", [(0, 21.0)])
        wait_until(lambda: fresh.query(
            "SELECT count(*) FROM archive").scalar() == 2)
        rows = fresh.query("SELECT c, ts FROM archive ORDER BY ts").rows
        assert rows[0] == (9, 10.0)
        assert rows[1][1] == 20.0     # grid preserved across promotion
        fresh.close()
        sconn.close()
        pconn.close()

    def test_ship_crashpoint_standby_recovers_via_resume(
            self, tmp_path, standby_of):
        faults = FaultInjector(11)
        with ServerThread(data_dir=str(tmp_path / "prim"),
                          stream_retention=600.0,
                          fault_injector=faults) as primary:
            pconn = client.connect(primary.host, primary.port)
            pconn.execute("CREATE TABLE t (a integer)")
            stby = standby_of(primary, heartbeat_interval=0.1)
            sconn = client.connect(stby.host, stby.port)
            wait_until(lambda: sconn.query(
                "SELECT count(*) FROM repro_tables").scalar() >= 1)
            # drop the next few shipping batches on the floor
            faults.arm("replication.ship", probability=1.0, count=3)
            pconn.execute("INSERT INTO t VALUES (1)")
            pconn.execute("INSERT INTO t VALUES (2)")
            # the standby notices the gap and re-requests; it must
            # converge once the armed fires are exhausted
            wait_until(lambda: sorted(sconn.query(
                "SELECT a FROM t").rows) == [(1,), (2,)], timeout=15.0)
            plan = faults.plan("replication.ship")
            assert plan.fires >= 1
            sconn.close()
            pconn.close()


class TestReplicationStatusView:
    def test_standalone_row(self):
        db = Database()
        rows = db.query("SELECT role, state FROM repro_replication_status")
        assert rows.rows == [("standalone", "standalone")]

    def test_primary_with_no_standby(self, primary):
        with client.connect(primary.host, primary.port) as c:
            # the manager is created lazily on first replicate op, so a
            # fresh primary reports the standalone shape
            role = c.query(
                "SELECT role FROM repro_replication_status").scalar()
            assert role in ("standalone", "primary")
