"""Tests for the network service layer: protocol, sessions, server.

The end-to-end tests run a real server (own thread, own event loop, a
loopback TCP socket) and drive it with the synchronous client — the
same path a deployment uses.
"""

import socket
import threading
import time

import pytest

import repro.client as client
from repro.core.database import Database
from repro.errors import ProtocolError, RemoteError
from repro.server import ServerThread
from repro.server import protocol
from repro.server.engine import EngineClosed, SingleWriterExecutor
from repro.server.session import Session, SessionSink, SubscriptionEntry

STREAM_DDL = "CREATE STREAM s (v integer, ts timestamp CQTIME USER)"
DERIVED_DDL = ("CREATE STREAM agg AS SELECT sum(v) total, cq_close(*) "
               "FROM s <VISIBLE '10 seconds'>")


# ---------------------------------------------------------------------------
# protocol framing
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        frame = {"id": 1, "op": "execute", "sql": "SELECT 1"}
        decoder = protocol.FrameDecoder()
        assert decoder.feed(protocol.encode_frame(frame)) == [frame]

    def test_partial_feed_buffers(self):
        data = protocol.encode_frame({"id": 7, "op": "ping"})
        decoder = protocol.FrameDecoder()
        assert decoder.feed(data[:3]) == []
        assert decoder.feed(data[3:10]) == []
        assert decoder.feed(data[10:]) == [{"id": 7, "op": "ping"}]

    def test_many_frames_one_feed(self):
        frames = [{"id": i, "op": "ping"} for i in range(5)]
        blob = b"".join(protocol.encode_frame(f) for f in frames)
        assert protocol.FrameDecoder().feed(blob) == frames

    def test_oversized_length_prefix_rejected(self):
        bogus = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            protocol.FrameDecoder().feed(bogus + b"x")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_body(b"[1, 2, 3]")

    def test_unjsonable_values_degrade_to_text(self):
        class Odd:
            def __str__(self):
                return "odd"
        frames = protocol.FrameDecoder().feed(
            protocol.encode_frame({"id": 1, "v": Odd()}))
        assert frames[0]["v"] == "odd"


# ---------------------------------------------------------------------------
# single-writer executor
# ---------------------------------------------------------------------------


class TestSingleWriter:
    def test_serializes_and_returns(self):
        ex = SingleWriterExecutor()
        try:
            seen = []
            futures = [ex.submit(seen.append, i) for i in range(50)]
            for f in futures:
                f.result(5)
            assert seen == list(range(50))
        finally:
            ex.shutdown()

    def test_exceptions_travel(self):
        ex = SingleWriterExecutor()
        try:
            def boom():
                raise ValueError("nope")
            with pytest.raises(ValueError):
                ex.submit(boom).result(5)
        finally:
            ex.shutdown()

    def test_shutdown_drains_queued_jobs(self):
        ex = SingleWriterExecutor()
        ran = []
        for i in range(10):
            ex.submit(lambda i=i: (time.sleep(0.005), ran.append(i)))
        ex.shutdown()
        assert ran == list(range(10))

    def test_submit_after_shutdown_raises(self):
        ex = SingleWriterExecutor()
        ex.shutdown()
        with pytest.raises(EngineClosed):
            ex.submit(lambda: None)


# ---------------------------------------------------------------------------
# session backpressure policies (engine-thread side, no sockets)
# ---------------------------------------------------------------------------


class _StubServer:
    def __init__(self):
        self.db = Database()
        self.detached = []

    def schedule_detach(self, session, entries):
        self.detached.extend(entries)


def _session(policy, high_water, block_timeout=0.05):
    server = _StubServer()
    session = Session(1, server, "test:0")
    session.options.update({
        "subscribe_policy": policy,
        "subscribe_high_water": high_water,
        "block_timeout": block_timeout,
    })
    entry = SubscriptionEntry(1, "s", "stream", ["v", "ts"])
    sink = SessionSink(session, entry)
    entry.sink = sink
    session.subs[1] = entry
    return server, session, entry, sink


class TestSlowClientPolicies:
    def test_shed_oldest_drops_oldest_push(self):
        _server, session, entry, sink = _session("shed-oldest", 2)
        for t in (1.0, 2.0, 3.0):
            sink.on_tuple((1, t), t)
        frames = session.drain_frames()
        times = [f["time"] for f in frames if f["push"] == "tuple"]
        assert times == [2.0, 3.0]   # t=1.0 was shed
        assert entry.sheds == 1
        sheds = [f for f in frames if f["push"] == "shed"]
        assert sheds and sheds[0]["count"] == 1

    def test_shed_reported_once(self):
        _server, session, entry, sink = _session("shed-oldest", 1)
        for t in (1.0, 2.0, 3.0):
            sink.on_tuple((1, t), t)
        session.drain_frames()
        again = session.drain_frames()
        assert not [f for f in again if f["push"] == "shed"]

    def test_block_waits_for_drain(self):
        _server, session, entry, sink = _session("block", 1,
                                                 block_timeout=5.0)
        sink.on_tuple((1, 1.0), 1.0)
        drained = []

        def drain_later():
            time.sleep(0.05)
            drained.extend(session.drain_frames())

        helper = threading.Thread(target=drain_later)
        helper.start()
        started = time.monotonic()
        sink.on_tuple((2, 2.0), 2.0)   # blocks until the drain
        waited = time.monotonic() - started
        helper.join()
        assert waited >= 0.03
        assert entry.sheds == 0
        assert [f["time"] for f in drained] == [1.0]
        assert [f["time"] for f in session.drain_frames()] == [2.0]

    def test_block_timeout_degrades_to_shed(self):
        _server, session, entry, sink = _session("block", 1,
                                                 block_timeout=0.02)
        sink.on_tuple((1, 1.0), 1.0)
        sink.on_tuple((2, 2.0), 2.0)   # nobody drains: times out, sheds
        assert entry.sheds == 1
        frames = session.drain_frames()
        times = [f["time"] for f in frames if f["push"] == "tuple"]
        assert times == [2.0]

    def test_raise_policy_breaks_subscription(self):
        server, session, entry, sink = _session("raise", 1)
        sink.on_tuple((1, 1.0), 1.0)
        sink.on_tuple((2, 2.0), 2.0)
        assert entry.broken
        frames = session.drain_frames()
        closed = [f for f in frames if f["push"] == "sub_closed"]
        assert closed and "slow" in closed[0]["reason"]
        assert server.detached == [entry]
        # a broken subscription stops producing
        sink.on_tuple((3, 3.0), 3.0)
        assert not [f for f in session.drain_frames()
                    if f["push"] == "tuple" and f["time"] == 3.0]

    def test_shed_quarantined_under_supervision(self):
        server, session, entry, sink = _session("shed-oldest", 1)
        server.db.enable_supervision()
        sink.on_tuple((1, 1.0), 1.0)
        sink.on_tuple((2, 2.0), 2.0)
        letters = server.db.supervisor.dead_letter_log
        assert any(l.kind == "slow-consumer" for l in letters)


# ---------------------------------------------------------------------------
# end to end over loopback
# ---------------------------------------------------------------------------


@pytest.fixture
def server():
    with ServerThread(stream_retention=1000.0) as st:
        yield st


@pytest.fixture
def conn(server):
    connection = client.connect(server.host, server.port)
    yield connection
    connection.close()


class TestEndToEnd:
    def test_snapshot_roundtrip(self, conn):
        conn.execute("CREATE TABLE t (a integer, b varchar(10))")
        conn.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        result = conn.query("SELECT a, b FROM t ORDER BY a")
        assert result.columns == ["a", "b"]
        assert result.rows == [(1, "x"), (2, "y")]

    def test_parameters_travel(self, conn):
        conn.execute("CREATE TABLE t (a integer)")
        conn.execute("INSERT INTO t VALUES (1), (2), (3)")
        result = conn.query("SELECT a FROM t WHERE a > ?", (1,))
        assert sorted(result.rows) == [(2,), (3,)]

    def test_full_pipeline_two_connections(self, server, conn):
        """The acceptance scenario: create a stream, start a derived-
        stream CQ, SUBSCRIBE, ingest micro-batches from a second
        connection, receive the correct window results."""
        conn.execute(STREAM_DDL)
        conn.execute(DERIVED_DDL)
        sub = conn.subscribe("agg")
        assert sub.kind == "derived"
        assert sub.columns == ["total", "cq_close"]

        feeder = client.connect(server.host, server.port)
        try:
            accepted = feeder.ingest(
                "s", [(i, float(i)) for i in range(1, 9)])
            assert accepted == 8
            feeder.advance(10.0)
            windows = sub.wait_windows(1, timeout=5.0)
        finally:
            feeder.close()
        assert len(windows) == 1
        # tuples with ts in [0, 10): v = 1..8 except none dropped => 36
        assert windows[0].rows == [(36, 10.0)]
        assert windows[0].close_time == 10.0

    def test_execute_select_becomes_subscription(self, conn):
        conn.execute(STREAM_DDL)
        sub = conn.execute("SELECT count(*) c FROM s <VISIBLE '1 minute'>")
        assert isinstance(sub, client.RemoteSubscription)
        assert sub.kind == "query"
        conn.ingest("s", [(7, 5.0), (8, 6.0)])
        conn.advance(60.0)
        windows = sub.wait_windows(1, timeout=5.0)
        assert windows[0].rows == [(2,)]

    def test_subscribe_base_stream_live(self, conn):
        conn.execute(STREAM_DDL)
        sub = conn.subscribe("s")
        conn.ingest("s", [(1, 1.0), (2, 2.0)])
        tuples = sub.tuples(timeout=2.0)
        assert [t.row for t in tuples] == [(1, 1.0), (2, 2.0)]
        assert not any(t.replayed for t in tuples)

    def test_late_subscriber_replays_then_goes_live(self, conn):
        conn.execute(STREAM_DDL)
        conn.ingest("s", [(1, 1.0), (2, 2.0), (3, 3.0)])
        sub = conn.subscribe("s", since=2.0)
        replayed = sub.tuples(timeout=2.0)
        assert [(t.time, t.replayed) for t in replayed] == \
            [(2.0, True), (3.0, True)]
        conn.ingest("s", [(4, 4.0)])
        live = sub.tuples(timeout=2.0)
        assert [(t.time, t.replayed) for t in live] == [(4.0, False)]

    def test_replay_without_retention_is_an_error(self):
        with ServerThread() as st:   # no retention configured
            with client.connect(st.host, st.port) as c:
                c.execute(STREAM_DDL)
                with pytest.raises(RemoteError) as info:
                    c.subscribe("s", since=0.0)
                assert info.value.remote_type == "StreamingError"

    def test_unsubscribe_stops_delivery(self, conn):
        conn.execute(STREAM_DDL)
        sub = conn.subscribe("s")
        conn.ingest("s", [(1, 1.0)])
        assert sub.tuples(timeout=2.0)
        sub.unsubscribe()
        conn.ingest("s", [(2, 2.0)])
        assert sub.tuples(timeout=0.3) == []

    def test_engine_errors_map_to_remote_errors(self, conn):
        with pytest.raises(RemoteError) as info:
            conn.execute("SELECT * FROM missing")
        assert info.value.remote_type == "BindError"
        with pytest.raises(RemoteError) as info:
            conn.subscribe("missing")
        assert info.value.remote_type == "UnknownObjectError"
        with pytest.raises(RemoteError) as info:
            conn.execute("SELEKT 1")
        assert info.value.remote_type == "ParseError"

    def test_engine_keeps_serving_after_errors(self, conn):
        for _ in range(3):
            with pytest.raises(RemoteError):
                conn.execute("SELECT * FROM missing")
        assert conn.query("SELECT 1 + 1").scalar() == 2

    def test_session_options_are_per_connection(self, server, conn):
        conn.execute("SET subscribe_high_water = 7")
        assert conn.query("SHOW subscribe_high_water").scalar() == "7"
        other = client.connect(server.host, server.port)
        try:
            assert other.query("SHOW subscribe_high_water").scalar() == "256"
        finally:
            other.close()

    def test_show_all_includes_session_options(self, conn):
        rows = dict(conn.query("SHOW all").rows)
        assert rows["subscribe_policy"] == "block"
        assert "supervision" in rows    # engine rows merged in

    def test_connections_view(self, server, conn):
        conn.execute(STREAM_DDL)
        conn.subscribe("s")
        conn.ingest("s", [(1, 1.0)])
        rows = conn.query(
            "SELECT session_id, statements, rows_ingested, subscriptions "
            "FROM repro_connections").rows
        assert len(rows) == 1
        session_id, statements, ingested, subs = rows[0]
        assert statements >= 1 and ingested == 1 and subs == 1

    def test_disconnect_detaches_subscriptions(self, server, conn):
        conn.execute(STREAM_DDL)
        feeder = client.connect(server.host, server.port)
        feeder.subscribe("s")
        feeder.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            count = server.db.connection_registry()
            stream_consumers = conn.query(
                "SELECT consumers FROM repro_streams").scalar()
            if len(count) == 1 and stream_consumers == 0:
                break
            time.sleep(0.02)
        assert stream_consumers == 0

    def test_ingest_reports_shed_rows(self, server, conn):
        conn.execute("SET backpressure_policy = 'shed-oldest'")
        conn.execute("SET high_water_mark = 4")
        conn.execute("CREATE STREAM lossy "
                     "(v integer, ts timestamp CQTIME USER)")
        stream = server.db.get_stream("lossy")
        stream.slack = 1000.0   # everything buffers: the mark bites
        accepted = conn.ingest("lossy", [(i, float(i)) for i in range(10)])
        assert accepted == 4    # 10 in, 6 shed by the high-water mark

    def test_micro_batch_equivalence(self, server, conn):
        """Framed micro-batches land in insert_many: same totals as
        embedded ingest of the same rows."""
        conn.execute(STREAM_DDL)
        conn.execute(DERIVED_DDL)
        sub = conn.subscribe("agg")
        for start in range(0, 100, 25):
            conn.ingest("s", [(1, float(t)) for t in range(start,
                                                           start + 25)])
        conn.advance(100.0)
        windows = sub.wait_windows(10, timeout=5.0)
        assert sum(w.rows[0][0] for w in windows if w.rows) == 100

    def test_graceful_shutdown_drains_windows(self, server, conn):
        conn.execute(STREAM_DDL)
        conn.execute(DERIVED_DDL)
        sub = conn.subscribe("agg")
        conn.ingest("s", [(5, 15.0)])   # window still open
        conn.shutdown_server()
        windows = sub.poll(timeout=5.0)
        assert [w.rows for w in windows] == [[(5, 20.0)]]
        deadline = time.monotonic() + 5.0
        while conn.server_goodbye is None and time.monotonic() < deadline:
            sub.poll(timeout=0.1)
        assert conn.server_goodbye == "server shutdown"

    def test_slow_client_sheds_over_loopback(self, server, conn):
        conn.execute("CREATE STREAM wide "
                     "(v varchar(9000), ts timestamp CQTIME USER)")
        conn.execute("SET subscribe_policy = 'shed-oldest'")
        conn.execute("SET subscribe_high_water = 4")
        sub = conn.subscribe("wide")
        feeder = client.connect(server.host, server.port)
        try:
            big = "x" * 8000
            t = 1.0
            for _batch in range(40):   # ~6.4 MB >> socket buffering
                feeder.ingest("wide", [(big, t + i) for i in range(20)])
                t += 20
        finally:
            feeder.close()
        received = sub.tuples(timeout=2.0)
        time.sleep(0.1)
        received += sub.tuples(timeout=1.0)
        assert sub.sheds > 0
        assert len(received) + sub.sheds <= 800
        # delivery stayed ordered despite the shedding
        times = [t.time for t in received]
        assert times == sorted(times)


class TestServerMisc:
    def test_hello_reports_session_and_protocol(self, conn):
        assert conn.session_id == 1
        assert conn.protocol_version == protocol.PROTOCOL_VERSION

    def test_ping(self, conn):
        assert conn.ping()

    def test_unknown_op_is_reported_not_fatal(self, server):
        raw = socket.create_connection((server.host, server.port))
        try:
            raw.sendall(protocol.encode_frame({"id": 1, "op": "dance"}))
            decoder = protocol.FrameDecoder()
            frames = []
            while not frames:
                frames = decoder.feed(raw.recv(65536))
            assert frames[0]["ok"] is False
            assert "dance" in frames[0]["error"]["message"]
        finally:
            raw.close()

    def test_preexisting_database_is_served(self):
        db = Database()
        db.execute("CREATE TABLE boot (a integer)")
        db.execute("INSERT INTO boot VALUES (41)")
        with ServerThread(db=db) as st:
            with client.connect(st.host, st.port) as c:
                assert c.query("SELECT a FROM boot").scalar() == 41

    def test_many_concurrent_connections(self, server):
        connections = [client.connect(server.host, server.port)
                       for _ in range(8)]
        try:
            connections[0].execute("CREATE TABLE counters (a integer)")

            def hammer(c, i):
                for _ in range(5):
                    c.execute("INSERT INTO counters VALUES (?)", (i,))

            threads = [threading.Thread(target=hammer, args=(c, i))
                       for i, c in enumerate(connections)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            total = connections[0].query(
                "SELECT count(*) FROM counters").scalar()
            assert total == 40
        finally:
            for c in connections:
                c.close()
