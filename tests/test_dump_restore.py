"""Tests for dump/restore of a whole database."""

import pytest

from repro import Database


@pytest.fixture
def populated(tmp_path):
    db = Database()
    db.execute("CREATE STREAM clicks (url varchar(200), "
               "ts timestamp CQTIME USER, ip varchar(20))")
    db.execute_script("""
        CREATE STREAM per_minute AS SELECT url, count(*) c, cq_close(*)
            FROM clicks <VISIBLE '1 minute'> GROUP BY url;
        CREATE TABLE archive (url varchar(200), c bigint, stime timestamp);
        CREATE CHANNEL arch_ch FROM per_minute INTO archive APPEND;
        CREATE VIEW hot AS SELECT url, ts, ip FROM clicks
            WHERE url LIKE '/hot%';
        CREATE TABLE dims (url varchar(200), owner varchar(20));
        CREATE INDEX dims_url ON dims (url);
    """)
    db.insert_table("dims", [("/a", "ann"), ("/b", "bob")])
    db.insert_stream("clicks", [("/a", 5.0, "x"), ("/a", 6.0, "x")])
    db.advance_streams(60.0)
    path = str(tmp_path / "dump.json")
    return db, path


class TestDumpRestore:
    def test_manifest_counts(self, populated):
        db, path = populated
        manifest = db.dump(path)
        assert manifest == {
            "streams": 1, "tables": 2, "views": 1,
            "derived_streams": 1, "channels": 1, "indexes": 1,
        }

    def test_table_contents_roundtrip(self, populated):
        db, path = populated
        db.dump(path)
        restored = Database.restore(path)
        assert sorted(restored.table_rows("dims")) == \
            sorted(db.table_rows("dims"))
        assert sorted(restored.table_rows("archive")) == \
            sorted(db.table_rows("archive"))

    def test_schema_roundtrip(self, populated):
        db, path = populated
        db.dump(path)
        restored = Database.restore(path)
        table = restored.get_table("dims")
        assert table.schema.names() == ["url", "owner"]
        assert table.schema.column("url").datatype.sql_name() == "varchar(200)"
        stream = restored.get_stream("clicks")
        assert stream.cqtime_mode == "user"

    def test_pipeline_is_live_after_restore(self, populated):
        db, path = populated
        db.dump(path)
        restored = Database.restore(path)
        restored.insert_stream("clicks", [("/z", 5.0, "y")])
        restored.advance_streams(60.0)
        assert ("/z", 1, 60.0) in restored.table_rows("archive")

    def test_views_work_after_restore(self, populated):
        db, path = populated
        db.dump(path)
        restored = Database.restore(path)
        sub = restored.subscribe(
            "SELECT count(*) FROM hot <VISIBLE '1 minute'>")
        restored.insert_stream("clicks", [("/hot1", 5.0, "x"),
                                          ("/cold", 6.0, "x")])
        restored.advance_streams(60.0)
        assert sub.rows() == [(1,)]

    def test_indexes_rebuilt(self, populated):
        db, path = populated
        db.dump(path)
        restored = Database.restore(path)
        assert "IndexScan" in restored.explain(
            "SELECT owner FROM dims WHERE url = '/a'")
        assert restored.query(
            "SELECT owner FROM dims WHERE url = '/a'").rows == [("ann",)]

    def test_uncommitted_rows_excluded(self, populated, tmp_path):
        db, path = populated
        db.execute("BEGIN")
        db.execute("INSERT INTO dims VALUES ('/c', 'cy')")
        other_path = str(tmp_path / "mid_txn.json")
        # dump takes its own snapshot: the open txn's row is invisible
        db.dump(other_path)
        db.execute("COMMIT")
        restored = Database.restore(other_path)
        assert len(restored.table_rows("dims")) == 2

    def test_bad_version_rejected(self, populated, tmp_path):
        import json
        from repro.errors import TruvisoError
        path = str(tmp_path / "bad.json")
        with open(path, "w") as f:
            json.dump({"format_version": 999}, f)
        with pytest.raises(TruvisoError):
            Database.restore(path)

    def test_restore_options_apply(self, populated):
        db, path = populated
        db.dump(path)
        restored = Database.restore(path, share_slices=True)
        assert restored.runtime.share_slices
