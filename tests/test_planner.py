"""Direct planner behaviour tests: predicate placement, index choice,
join strategy — verified through EXPLAIN output and result equivalence."""

import pytest

from repro import Database
from repro.exec.planner import split_conjuncts
from repro.sql import ast, parse_statement


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE orders (oid integer, cust integer, "
                     "total double precision)")
    database.execute("CREATE TABLE customers (cid integer, "
                     "region varchar(10))")
    database.insert_table("orders",
                          [(i, i % 20, float(i)) for i in range(100)])
    database.insert_table("customers",
                          [(i, "east" if i % 2 else "west")
                           for i in range(20)])
    return database


def plan_lines(db, sql):
    return db.explain(sql).split("\n")


def depth(line):
    return (len(line) - len(line.lstrip())) // 2


class TestSplitConjuncts:
    def expr(self, text):
        return parse_statement(f"SELECT 1 WHERE {text}").where

    def test_flattens_ands(self):
        parts = split_conjuncts(self.expr("a = 1 AND b = 2 AND c = 3"))
        assert len(parts) == 3

    def test_or_not_split(self):
        parts = split_conjuncts(self.expr("a = 1 OR b = 2"))
        assert len(parts) == 1

    def test_nested(self):
        parts = split_conjuncts(self.expr("(a = 1 AND b = 2) AND c = 3"))
        assert len(parts) == 3

    def test_none(self):
        assert split_conjuncts(None) == []


class TestPredicatePushdown:
    def test_single_table_filter_below_projection(self, db):
        lines = plan_lines(db, "SELECT oid FROM orders WHERE total > 50")
        kinds = [line.strip().split("(")[0] for line in lines]
        assert kinds == ["Project", "Filter", "SeqScan"]

    def test_table_local_filter_pushed_below_join(self, db):
        lines = plan_lines(
            db,
            "SELECT o.oid FROM orders o, customers c "
            "WHERE o.cust = c.cid AND c.region = 'east' AND o.total > 10")
        text = "\n".join(lines)
        # the join is a hash join on the equality; the per-table filters
        # sit below it (no filter above the join remains)
        join_depth = next(depth(l) for l in lines if "HashJoin" in l)
        filter_depths = [depth(l) for l in lines if "Filter" in l]
        assert "HashJoin" in text
        assert all(d > join_depth for d in filter_depths)

    def test_cross_join_equality_becomes_hash_key(self, db):
        text = db.explain(
            "SELECT count(*) FROM orders o, customers c WHERE o.cust = c.cid")
        assert "HashJoin" in text
        assert "NestedLoopJoin" not in text

    def test_inequality_join_uses_nested_loop(self, db):
        text = db.explain(
            "SELECT count(*) FROM orders o, customers c WHERE o.cust < c.cid")
        assert "NestedLoopJoin" in text

    def test_filter_on_join_output_stays_above(self, db):
        # a predicate mixing both sides without equality must run at/above
        # the join
        text = db.explain(
            "SELECT count(*) FROM orders o, customers c "
            "WHERE o.cust = c.cid AND o.total + c.cid > 50")
        assert "HashJoin" in text  # the equality still drives the join

    def test_pushdown_preserves_results(self, db):
        joined = db.query(
            "SELECT count(*) FROM orders o, customers c "
            "WHERE o.cust = c.cid AND c.region = 'east'").scalar()
        # 10 east customers x 5 orders each
        assert joined == 50


class TestIndexChoice:
    def test_equality_beats_range(self, db):
        db.execute("CREATE INDEX o_oid ON orders (oid)")
        text = db.explain(
            "SELECT total FROM orders WHERE oid = 5 AND oid > 0")
        assert "IndexScan" in text and "eq" in text

    def test_range_bounds_combined(self, db):
        db.execute("CREATE INDEX o_total ON orders (total)")
        text = db.explain(
            "SELECT oid FROM orders WHERE total > 10 AND total <= 20")
        assert "IndexScan" in text and "range" in text
        rows = db.query(
            "SELECT count(*) FROM orders WHERE total > 10 AND total <= 20")
        assert rows.scalar() == 10

    def test_flipped_comparison_recognised(self, db):
        db.execute("CREATE INDEX o_oid ON orders (oid)")
        text = db.explain("SELECT total FROM orders WHERE 5 = oid")
        assert "IndexScan" in text

    def test_expression_over_column_not_indexed(self, db):
        db.execute("CREATE INDEX o_oid ON orders (oid)")
        text = db.explain("SELECT total FROM orders WHERE oid + 1 = 5")
        assert "SeqScan" in text

    def test_multi_column_index_not_selected_for_prefix(self, db):
        db.execute("CREATE INDEX o_pair ON orders (cust, oid)")
        # composite indexes need every column pinned by equality
        text = db.explain("SELECT total FROM orders WHERE cust = 3")
        assert "SeqScan" in text

    def test_composite_index_full_equality(self, db):
        db.execute("CREATE INDEX o_pair ON orders (cust, oid)")
        text = db.explain(
            "SELECT total FROM orders WHERE cust = 3 AND oid = 23")
        assert "IndexScan" in text and "o_pair" in text
        assert db.query(
            "SELECT total FROM orders WHERE cust = 3 AND oid = 23"
        ).rows == [(23.0,)]

    def test_composite_beats_single_column(self, db):
        db.execute("CREATE INDEX o_cust ON orders (cust)")
        db.execute("CREATE INDEX o_pair ON orders (cust, oid)")
        text = db.explain(
            "SELECT total FROM orders WHERE oid = 23 AND cust = 3")
        assert "o_pair" in text  # widest fully-pinned index wins

    def test_composite_index_maintained_on_update(self, db):
        db.execute("CREATE INDEX o_pair ON orders (cust, oid)")
        db.execute("UPDATE orders SET total = 999 WHERE oid = 23")
        assert db.query(
            "SELECT total FROM orders WHERE cust = 3 AND oid = 23"
        ).rows == [(999.0,)]

    def test_composite_index_with_params(self, db):
        db.execute("CREATE INDEX o_pair ON orders (cust, oid)")
        rows = db.query(
            "SELECT total FROM orders WHERE cust = ? AND oid = ?",
            (3, 23)).rows
        assert rows == [(23.0,)]

    def test_index_scan_respects_visibility(self, db):
        db.execute("CREATE INDEX o_oid ON orders (oid)")
        db.execute("DELETE FROM orders WHERE oid = 5")
        assert db.query("SELECT * FROM orders WHERE oid = 5").rows == []


class TestScanEstimates:
    def test_seqscan_shows_row_estimate(self, db):
        text = db.explain("SELECT * FROM orders")
        assert "~100 rows" in text
