"""Partition subsystem building blocks.

Covers the consistent-hash ring (determinism, spread, spill lane), the
pickle wire framing (dtype-preserving serialization of partial state —
the satellite fix: JSON framing lost numpy dtypes), partial-state
normalization, the iterator-path HashAggregate's mergeable-partial
protocol, partition-plan validation, PARTITION BY DDL, and the
``repro_partitions`` system view + ``\\partitions`` shell command.
"""

import io
import pickle

import pytest

from repro import Database
from repro.cli import Shell
from repro.errors import (
    ParseError,
    PartitionError,
    ProtocolError,
    StreamingError,
)
from repro.partition import HashRing, PartitionedEngine, partition_plan
from repro.partition import wire
from repro.partition.hashring import stable_hash
from repro.partition.state import normalize_partial, normalize_value


# -- hash ring ----------------------------------------------------------------


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(4)
        b = HashRing(4)
        keys = [f"ip-{i}" for i in range(500)] + list(range(500))
        assert [a.worker_for(k) for k in keys] \
            == [b.worker_for(k) for k in keys]

    def test_stable_hash_ignores_numeric_wrapper(self):
        np = pytest.importorskip("numpy")
        # np.int64(5) and 5 must land on the same worker, or replayed
        # batches (native) would route differently from live (numpy)
        assert stable_hash(np.int64(5)) == stable_hash(5)

    def test_every_worker_gets_a_share(self):
        ring = HashRing(4)
        counts = [0] * 4
        for i in range(4000):
            counts[ring.worker_for(f"key-{i}")] += 1
        assert all(c > 0 for c in counts)
        # consistent hashing with 64 vnodes: no worker should see more
        # than half the keyspace
        assert max(counts) < 2000

    def test_null_key_takes_the_spill_lane(self):
        ring = HashRing(4, spill_worker=2)
        assert ring.worker_for(None) == 2
        assert HashRing(4).worker_for(None) == 0

    def test_scaling_moves_a_minority_of_keys(self):
        # the consistent-hash property: going 4 -> 5 workers remaps
        # roughly 1/5 of keys, not all of them
        a, b = HashRing(4), HashRing(5)
        keys = [f"key-{i}" for i in range(2000)]
        moved = sum(a.worker_for(k) != b.worker_for(k) for k in keys)
        assert moved < len(keys) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, spill_worker=5)


# -- wire framing -------------------------------------------------------------


class TestWire:
    def test_roundtrip_preserves_tuples_and_none(self):
        msg = {"op": "ingest", "segments": [("rows", [(1.0, None, "x")],
                                            None), ("wm", 5.0)]}
        back = wire.roundtrip(msg)
        assert back == msg
        assert isinstance(back["segments"][0][1][0], tuple)

    def test_roundtrip_preserves_numpy_dtypes(self):
        np = pytest.importorskip("numpy")
        partial = {("k",): [np.int64(3), np.float64(2.5)]}
        back = wire.roundtrip({"groups": partial})["groups"]
        assert back[("k",)][0] == 3 and back[("k",)][1] == 2.5
        # pickle keeps the dtype (JSON would have collapsed it)
        assert type(back[("k",)][0]) is np.int64

    def test_oversize_frame_refused(self):
        with pytest.raises(ProtocolError):
            wire.encode_frame({"blob": b"x" * (wire.MAX_FRAME_BYTES + 1)})

    def test_non_dict_body_refused(self):
        body = pickle.dumps([1, 2, 3])
        with pytest.raises(ProtocolError):
            wire.decode_body(body)

    def test_frame_layout_is_length_prefixed(self):
        data = wire.encode_frame({"a": 1})
        length = int.from_bytes(data[:4], "big")
        assert len(data) == 4 + length


# -- partial-state normalization ---------------------------------------------


class TestStateNormalization:
    def test_numpy_scalars_become_native(self):
        np = pytest.importorskip("numpy")
        partial = {(np.int64(1), "k"): [np.float64(2.5), np.int64(7),
                                        (np.int64(1), np.int64(2))]}
        out = normalize_partial(partial)
        ((key, states),) = out.items()
        assert key == (1, "k")
        assert all(type(k) in (int, str) for k in key)
        assert type(states[0]) is float and type(states[1]) is int
        assert all(type(v) is int for v in states[2])

    def test_pickle_roundtrip_after_normalize_is_pure_python(self):
        np = pytest.importorskip("numpy")
        partial = normalize_partial({(np.str_("a"),): [np.int64(3)]})
        back = pickle.loads(pickle.dumps(partial))
        ((key, states),) = back.items()
        assert type(key[0]) is str and type(states[0]) is int

    def test_idempotent_and_cheap_on_native(self):
        partial = {("a", 1): [2, 3.5, None, [1, 2]]}
        assert normalize_partial(partial) == partial
        assert normalize_value("x") == "x"


# -- HashAggregate mergeable partials ----------------------------------------


class TestHashAggregatePartials:
    def _agg_cq(self, db):
        db.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE)")
        sub = db.execute(
            "SELECT k, count(*) AS n, sum(v) AS total, avg(v) AS mean "
            "FROM s <visible 10 advance 10> GROUP BY k")
        cq = sub.cq
        assert not cq.vectorized        # iterator path
        return sub, cq, partition_plan(cq).agg

    def test_split_accumulate_merge_matches_single_run(self):
        db = Database()
        db.runtime.vectorize = False
        sub, cq, agg = self._agg_cq(db)
        rows = [(float(t), f"k{t % 3}", float(t)) for t in range(9)]
        halves = []
        for shard in (rows[:4], rows[4:]):
            cq._batches[0] = list(shard)
            try:
                halves.append(agg.accumulate({}))
            finally:
                cq._batches[0] = []
        merged = agg.finalize(agg.merge_partials(halves))

        cq._batches[0] = list(rows)
        try:
            whole = agg.finalize(agg.accumulate({}))
        finally:
            cq._batches[0] = []
        assert sorted(merged) == sorted(whole)

    def test_merge_does_not_mutate_inputs(self):
        db = Database()
        db.runtime.vectorize = False
        sub, cq, agg = self._agg_cq(db)
        cq._batches[0] = [(1.0, "a", 2.0)]
        try:
            part = agg.accumulate({})
        finally:
            cq._batches[0] = []
        snapshot = pickle.dumps(part)
        agg.merge_partials([part, part])
        agg.merge_partials([part, {}])
        assert pickle.dumps(part) == snapshot

    def test_empty_scalar_partial_finalizes_to_zero_row(self):
        db = Database()
        db.runtime.vectorize = False
        db.execute("CREATE STREAM s (t DOUBLE CQTIME, v DOUBLE)")
        sub = db.execute(
            "SELECT count(*) AS n FROM s <visible 10 advance 10>")
        agg = partition_plan(sub.cq).agg
        assert agg.finalize(agg.merge_partials([{}, {}])) == [(0,)]

    def test_set_merged_pins_rows(self):
        db = Database()
        db.runtime.vectorize = False
        sub, cq, agg = self._agg_cq(db)
        pinned = [("a", 1, 2.0, 2.0)]
        agg.set_merged(pinned)
        try:
            assert list(agg.rows({})) == pinned
        finally:
            agg.set_merged(None)

    def test_partials_survive_wire_roundtrip(self):
        db = Database()
        db.runtime.vectorize = False
        sub, cq, agg = self._agg_cq(db)
        cq._batches[0] = [(1.0, "a", 2.0), (2.0, "b", 3.0)]
        try:
            part = agg.accumulate({})
        finally:
            cq._batches[0] = []
        shipped = wire.roundtrip({"groups": normalize_partial(part)})
        merged = agg.finalize(agg.merge_partials([shipped["groups"]]))
        cq._batches[0] = [(1.0, "a", 2.0), (2.0, "b", 3.0)]
        try:
            direct = agg.finalize(agg.accumulate({}))
        finally:
            cq._batches[0] = []
        assert sorted(merged) == sorted(direct)


# -- plan validation ----------------------------------------------------------


class TestPartitionPlanValidation:
    def _db(self):
        db = Database()
        db.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE)")
        return db

    def test_happy_path_finds_the_aggregate(self):
        db = self._db()
        sub = db.execute("SELECT k, count(*) AS n FROM s "
                         "<visible 10 advance 5> GROUP BY k")
        split = partition_plan(sub.cq)
        assert split.stream_name == "s"
        assert hasattr(split.agg, "merge_partials")

    def test_unbounded_window_rejected(self):
        db = self._db()
        sub = db.execute("SELECT count(*) AS n FROM s "
                         "<visible unbounded advance 5>")
        with pytest.raises(PartitionError, match="UNBOUNDED"):
            partition_plan(sub.cq)

    def test_windowless_select_rejected(self):
        db = self._db()
        db.execute("CREATE TABLE plain (a INTEGER)")
        result = db.execute("SELECT a FROM plain")
        with pytest.raises(PartitionError):
            partition_plan(result)

    def test_no_aggregate_rejected(self):
        db = self._db()
        sub = db.execute("SELECT k, v FROM s <visible 10 advance 10>")
        with pytest.raises(PartitionError, match="aggregation"):
            partition_plan(sub.cq)

    def test_join_rejected(self):
        db = self._db()
        db.execute("CREATE STREAM s2 (t DOUBLE CQTIME, k TEXT)")
        sub = db.execute(
            "SELECT count(*) AS n FROM s <visible 10 advance 10> "
            "JOIN s2 <visible 10 advance 10> ON s.k = s2.k")
        with pytest.raises(PartitionError, match="join"):
            partition_plan(sub.cq)

    def test_emit_on_change_rejected(self):
        db = Database()
        db.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
                   "WATERMARK '2 seconds'")
        sub = db.execute("SELECT count(*) AS n FROM s "
                         "<visible 10 advance 10> EMIT ON CHANGE")
        with pytest.raises(PartitionError, match="EMIT"):
            partition_plan(sub.cq)


# -- DDL + engine surface -----------------------------------------------------


class TestPartitionByDDL:
    def test_parse_and_register(self):
        db = Database()
        db.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                   "PARTITION BY k")
        assert db.get_stream("s").partition_by == "k"

    def test_unknown_key_column_rejected(self):
        db = Database()
        with pytest.raises(StreamingError, match="PARTITION BY"):
            db.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                       "PARTITION BY missing")

    def test_partition_by_survives_dump_and_restore(self, tmp_path):
        from repro.core.dump import dump_database, restore_database
        db = Database()
        db.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                   "PARTITION BY k")
        path = str(tmp_path / "dump.json")
        dump_database(db, path)
        restored = Database()
        restore_database(restored, path)
        assert restored.get_stream("s").partition_by == "k"

    def test_parse_error_without_column(self):
        db = Database()
        with pytest.raises(ParseError):
            db.execute("CREATE STREAM s (t DOUBLE CQTIME) PARTITION BY")


class TestEngineSurface:
    def test_unpartitioned_streams_pass_through(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM plain (t DOUBLE CQTIME, v DOUBLE)")
        sub = eng.execute("SELECT count(*) AS n FROM plain "
                          "<visible 10 advance 10>")
        eng.ingest("plain", [(1.0, 2.0), (12.0, 3.0)])
        eng.flush()
        results = sub.poll()
        assert [sorted(w.rows) for w in results] == [[(1,)], [(1,)]]
        eng.close()

    def test_non_partitionable_cq_on_partitioned_stream_rejected(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                    "PARTITION BY k")
        with pytest.raises(PartitionError):
            eng.execute("SELECT k FROM s <visible 10 advance 10>")
        # the rejected CQ must not linger half-attached
        assert not eng.db.runtime.cqs()
        eng.close()

    def test_derived_stream_over_partitioned_rejected(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                    "PARTITION BY k")
        with pytest.raises(PartitionError, match="derived"):
            eng.execute("CREATE STREAM d AS SELECT k, count(*) AS n "
                        "FROM s <visible 10 advance 10> GROUP BY k")
        eng.close()

    def test_null_keys_spill_and_are_counted(self):
        eng = PartitionedEngine(partitions=3)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
                    "PARTITION BY k")
        sub = eng.execute("SELECT count(*) AS n FROM s "
                          "<visible 10 advance 10>")
        eng.ingest("s", [(1.0, None, 1.0), (2.0, "a", 2.0),
                         (3.0, None, 3.0)])
        eng.flush()
        assert [w.rows for w in sub.poll()] == [[(3,)]]
        rows = eng.status_rows()
        assert sum(r[7] for r in rows) == 2          # spill_rows
        assert rows[0][7] == 2                       # on the spill worker
        eng.close()

    def test_explain_carries_per_partition_sections(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
                    "PARTITION BY k")
        eng.execute("SELECT k, count(*) AS n FROM s "
                    "<visible 10 advance 10> GROUP BY k")
        eng.ingest("s", [(float(t), f"k{t}", 1.0) for t in range(25)])
        text = eng.explain("cq_1", analyze=True)
        assert "-- partition worker 0 --" in text
        assert "-- partition worker 1 --" in text
        eng.close()


# -- repro_partitions view + shell command ------------------------------------


class TestPartitionsView:
    def test_view_empty_without_coordinator(self):
        db = Database()
        assert db.query("SELECT * FROM repro_partitions").rows == []

    def test_view_reports_workers(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
                    "PARTITION BY k")
        eng.execute("SELECT k, count(*) AS n FROM s "
                    "<visible 10 advance 10> GROUP BY k")
        eng.ingest("s", [(float(t), f"k{t}", 1.0) for t in range(20)])
        rows = eng.query(
            "SELECT worker, state, transport, streams, rows_routed, "
            "restarts FROM repro_partitions ORDER BY worker").rows
        assert [r[0] for r in rows] == [0, 1]
        assert all(r[1] == "up" and r[2] == "inline" for r in rows)
        assert sum(r[4] for r in rows) == 20
        assert all(r[3] == 1 and r[5] == 0 for r in rows)
        eng.close()

    def test_view_watermark_and_lag(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                    "PARTITION BY k")
        eng.execute("SELECT k, count(*) AS n FROM s "
                    "<visible 10 advance 10> GROUP BY k")
        eng.ingest("s", [(float(t), f"k{t}", ) for t in range(5)])
        rows = eng.query("SELECT watermark, lag_seconds "
                         "FROM repro_partitions").rows
        # the trailing sync brings every worker to the global clock
        assert all(r[0] == 4.0 and r[1] == 0.0 for r in rows)
        eng.close()

    def test_shell_partitions_command(self):
        out = io.StringIO()
        shell = Shell(out=out)
        shell.run(iter(["\\partitions"]))
        assert "not a partition coordinator" in out.getvalue()

        eng = PartitionedEngine(partitions=2)
        out = io.StringIO()
        shell = Shell(db=eng.db, out=out)
        shell.run(iter(["\\partitions"]))
        text = out.getvalue()
        assert "worker" in text and "inline" in text
        eng.close()

    def test_restart_counters_surface_in_view(self):
        eng = PartitionedEngine(partitions=2)
        eng.execute("CREATE STREAM s (t DOUBLE CQTIME, k TEXT) "
                    "PARTITION BY k")
        eng.execute("SELECT k, count(*) AS n FROM s "
                    "<visible 10 advance 10> GROUP BY k")
        eng.ingest("s", [(1.0, "a"), (2.0, "b"), (3.0, "c"), (4.0, "d")])
        eng.kill_worker(1)
        eng.ingest("s", [(5.0, "a"), (6.0, "b")])
        rows = eng.query("SELECT worker, restarts, replayed_batches "
                         "FROM repro_partitions ORDER BY worker").rows
        assert rows[0][1] == 0
        assert rows[1][1] == 1 and rows[1][2] >= 1
        eng.close()


# -- server integration -------------------------------------------------------


class TestServerPartitions:
    """``repro-server --partitions N``: the wire protocol's execute,
    ingest, advance and flush ops all route through the partition
    coordinator, and the merged CQ output over TCP matches a single
    unpartitioned engine bit for bit."""

    DDL = ("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
           "PARTITION BY k")
    CQ = ("SELECT k, count(*) AS n, sum(v) AS total FROM s "
          "<visible 10 advance 5> GROUP BY k ORDER BY k")
    ROWS = [(float(t), k, float(t * 2)) for t, k in
            zip(range(1, 13), ["a", "b", "c", "d"] * 3)]

    def _reference(self):
        db = Database()
        db.execute(self.DDL.replace(" PARTITION BY k", ""))
        sub = db.subscribe(self.CQ)
        db.ingest_batch("s", self.ROWS)
        db.advance_streams(30.0)
        out = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
               for w in sub.poll()]
        db.close()
        return out

    def test_partitioned_server_end_to_end(self):
        from repro import client
        from repro.server import ServerThread

        expected = self._reference()
        assert expected, "reference run produced no windows"
        with ServerThread(partitions=2) as st:
            conn = client.connect(st.host, st.port)
            feeder = client.connect(st.host, st.port)
            try:
                conn.execute(self.DDL)
                sub = conn.execute(self.CQ)
                accepted = feeder.ingest("s", self.ROWS)
                assert accepted == len(self.ROWS)
                feeder.advance(30.0)
                windows = sub.wait_windows(len(expected), timeout=10.0)
                got = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                       for w in windows]
                assert got == expected
                # the coordinator's worker fleet is visible over the wire
                rows = conn.query(
                    "SELECT worker, state, transport "
                    "FROM repro_partitions ORDER BY worker").rows
                assert [(r[0], r[1], r[2]) for r in rows] == \
                    [(0, "up", "process"), (1, "up", "process")]
            finally:
                feeder.close()
                conn.close()

    def test_partitioned_server_flush_op(self):
        from repro import client
        from repro.server import ServerThread

        with ServerThread(partitions=2) as st:
            with client.connect(st.host, st.port) as conn:
                conn.execute(self.DDL)
                sub = conn.execute(self.CQ)
                conn.ingest("s", self.ROWS[:4])
                # flush must drain the worker shards, not just the
                # coordinator's local (empty) stream buffers
                conn.flush()
                windows = sub.wait_windows(1, timeout=10.0)
                total = sum(row[1] for w in windows for row in w.rows)
                assert total >= 4

    def test_partitions_refused_with_standby(self):
        from repro.server import TruSQLServer

        with pytest.raises(ValueError, match="standby"):
            TruSQLServer(partitions=2, standby_of="127.0.0.1:1")

    def test_sql_insert_routes_to_workers(self):
        """INSERT INTO a partitioned stream must route like ingest():
        the local twin is silent, so rows delivered to it would vanish
        from every partitionized CQ."""
        eng = PartitionedEngine(partitions=2)
        try:
            eng.execute(self.DDL)
            sub = eng.execute(self.CQ)
            result = eng.execute(
                "INSERT INTO s VALUES "
                "(1.0, 'a', 2.0), (2.0, 'b', 4.0), (3.0, NULL, 8.0)")
            assert result.rowcount == 3
            eng.flush()
            windows = sub.poll()
            # overlapping windows (visible 10, advance 5): each of the
            # 3 rows is visible in two closed windows
            total = sum(row[1] for w in windows for row in w.rows)
            assert total == 6
            routed = eng.query(
                "SELECT sum(rows_routed) FROM repro_partitions").rows
            assert routed[0][0] == 3
        finally:
            eng.close()
