"""Chaos scenarios for the three partition crashpoints.

Promises under test (see docs/PARTITION.md):

* ``partition.route`` — the router dies *before any shard send*: the
  whole batch is refused atomically (no counters moved, no worker saw
  a row), and a client retry of the identical batch converges on the
  unfaulted output.
* ``partition.merge`` — the merge stage dies *before emitting*: the
  shard partials stay stored and the boundary stays pending; the next
  drive retries and the window comes out exactly once.
* ``partition.worker_crash`` — a worker dies mid-window while shipping
  a partial: the coordinator respawns it, replays the acked frame log,
  fast-forwards the watermark, and retries the in-flight frame — the
  merged output is gap-free and identical to a never-crashed run.

The deterministic schedule (seed 2009, ``make chaos``) keeps every
failure reproducible; nothing here sleeps or races.
"""

import pytest

from repro.errors import FaultInjected
from repro.partition import PartitionedEngine

DDL = ("CREATE STREAM s (t DOUBLE CQTIME, k TEXT, v DOUBLE) "
       "PARTITION BY k")
CQ = ("SELECT k, count(*) AS n, sum(v) AS total FROM s "
      "<visible 10 advance 5> GROUP BY k ORDER BY k")
EVENT_DDL = ("CREATE STREAM s (k TEXT, v DOUBLE, ts TIMESTAMP "
             "CQTIME USER) WATERMARK '4 seconds' PARTITION BY k")
RETRACT_CQ = ("SELECT k, count(*) AS n FROM s <visible 10 advance 5> "
              "GROUP BY k EMIT ON WATERMARK ALLOW LATENESS '6 seconds' "
              "RETRACT ORDER BY k")

BATCHES = [
    [(1.0, "alpha", 1.0), (2.0, "beta", 2.0), (3.0, "gamma", 3.0)],
    [(6.0, "alpha", 1.0), (8.0, "delta", 2.0)],
    [(11.0, "beta", 1.0), (13.0, "alpha", 4.0)],
    [(17.0, "gamma", 2.0), (19.0, "delta", 1.0)],
]


def run_reference(ddl=DDL, cq=CQ, batches=BATCHES):
    eng = PartitionedEngine(partitions=3)
    try:
        eng.execute(ddl)
        sub = eng.execute(cq)
        for rows in batches:
            eng.ingest("s", rows)
        eng.flush()
        return [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                for w in sub.poll()]
    finally:
        eng.close()


class TestRouteCrashpoint:
    def test_refusal_is_atomic_and_retry_converges(self):
        want = run_reference()
        eng = PartitionedEngine(partitions=3)
        try:
            eng.execute(DDL)
            sub = eng.execute(CQ)
            eng.ingest("s", BATCHES[0])
            before = eng.status_rows()
            eng.arm_fault("partition.route", seed=2009)
            with pytest.raises(FaultInjected):
                eng.ingest("s", BATCHES[1])
            # atomic refusal: no row left the router, no counter moved,
            # every worker is still healthy
            after = eng.status_rows()
            assert [r[5] for r in after] == [r[5] for r in before]
            assert [r[7] for r in after] == [r[7] for r in before]
            assert all(r[2] == "up" for r in after)
            # the fault is spent; retrying the identical batch converges
            eng.ingest("s", BATCHES[1])
            for rows in BATCHES[2:]:
                eng.ingest("s", rows)
            eng.flush()
            got = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                   for w in sub.poll()]
            assert got == want
        finally:
            eng.close()

    def test_watermark_does_not_advance_past_refused_batch(self):
        eng = PartitionedEngine(partitions=2)
        try:
            eng.execute(DDL)
            eng.execute(CQ)
            eng.ingest("s", BATCHES[0])
            eng.arm_fault("partition.route", seed=2009)
            with pytest.raises(FaultInjected):
                eng.ingest("s", BATCHES[1])
            # a refused batch must not have moved the shared clock: the
            # retry's rows would otherwise be spuriously out of order
            assert all(r[8] == 3.0 for r in eng.status_rows())
            counts = eng.ingest("s", BATCHES[1])
            assert counts["accepted"] == len(BATCHES[1])
        finally:
            eng.close()


class TestMergeCrashpoint:
    def test_boundary_stays_pending_then_emits_exactly_once(self):
        want = run_reference()
        eng = PartitionedEngine(partitions=3)
        try:
            eng.execute(DDL)
            sub = eng.execute(CQ)
            eng.ingest("s", BATCHES[0])
            eng.arm_fault("partition.merge", seed=2009)
            # batch 2 closes the first boundary (t=5); the merge stage
            # dies before emitting it
            with pytest.raises(FaultInjected):
                eng.ingest("s", BATCHES[1])
            assert sub.poll() == []          # nothing partial escaped
            # the workers DID receive the batch (the crash is after the
            # sends) — replaying rows is the client's job only for
            # route refusals, not merge deaths; driving on is enough
            for rows in BATCHES[2:]:
                eng.ingest("s", rows)
            eng.flush()
            got = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                   for w in sub.poll()]
            assert got == want               # pending window came out once
        finally:
            eng.close()

    def test_flush_alone_recovers_a_pending_merge(self):
        want = run_reference(batches=BATCHES[:2])
        eng = PartitionedEngine(partitions=2)
        try:
            eng.execute(DDL)
            sub = eng.execute(CQ)
            eng.ingest("s", BATCHES[0])
            eng.arm_fault("partition.merge", seed=2009)
            with pytest.raises(FaultInjected):
                eng.ingest("s", BATCHES[1])
            eng.flush()
            got = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                   for w in sub.poll()]
            assert got == want
        finally:
            eng.close()


class TestWorkerCrashCrashpoint:
    def test_crash_mid_window_restart_with_replay_is_gap_free(self):
        want = run_reference()
        eng = PartitionedEngine(partitions=3)
        try:
            eng.execute(DDL)
            sub = eng.execute(CQ)
            eng.ingest("s", BATCHES[0])
            # the worker dies while *shipping a partial* — mid-window,
            # after mutating its local engine state; only a respawn
            # from the frame log can recover it
            eng.arm_fault("partition.worker_crash", worker=1, seed=2009)
            for rows in BATCHES[1:]:
                eng.ingest("s", rows)
            eng.flush()
            got = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                   for w in sub.poll()]
            assert got == want
            rows = eng.status_rows()
            assert rows[1][10] == 1          # restarts
            assert rows[1][11] >= 1          # replayed_batches
            assert all(r[2] == "up" for r in rows)
        finally:
            eng.close()

    def test_crash_during_retraction_still_converges(self):
        batches = [
            [("alpha", 1.0, 1.0), ("beta", 1.0, 3.0)],
            [("alpha", 1.0, 14.0)],
            [("beta", 2.0, 6.0)],            # late: reopens [0,10)
            [("alpha", 1.0, 26.0)],
        ]
        want = run_reference(ddl=EVENT_DDL, cq=RETRACT_CQ,
                             batches=batches)
        assert {"retract", "correct"} <= {k for k, _o, _c, _r in want}
        eng = PartitionedEngine(partitions=3)
        try:
            eng.execute(EVENT_DDL)
            sub = eng.execute(RETRACT_CQ)
            eng.ingest("s", batches[0])
            eng.arm_fault("partition.worker_crash", worker=0, seed=2009)
            eng.arm_fault("partition.worker_crash", worker=1, seed=2009)
            eng.arm_fault("partition.worker_crash", worker=2, seed=2009)
            for rows in batches[1:]:
                eng.ingest("s", rows)
            eng.flush()
            got = [(w.kind, w.open_time, w.close_time, tuple(w.rows))
                   for w in sub.poll()]
            assert got == want
            assert sum(r[10] for r in eng.status_rows()) >= 1
        finally:
            eng.close()

    def test_ping_restarts_a_killed_worker(self):
        eng = PartitionedEngine(partitions=2)
        try:
            eng.execute(DDL)
            eng.execute(CQ)
            eng.ingest("s", BATCHES[0])
            eng.kill_worker(1)
            assert eng.status_rows()[1][2] == "down"
            assert eng.ping(1)
            assert eng.status_rows()[1][2] == "up"
            assert eng.status_rows()[1][10] == 1
        finally:
            eng.close()
