"""Tests for the benchmark harness utilities (metrics + reporting)."""

import os

import pytest

from repro import Database
from repro.bench.harness import format_table, format_value, write_report
from repro.bench.metrics import Measurement, measure


class TestMeasure:
    def test_interval_io(self):
        db = Database(buffer_pages=8)
        db.execute("CREATE TABLE t (a varchar(2000))")
        with measure(db, "load") as m:
            db.insert_table("t", [("x" * 1500,)] * 50)
            db.storage.pool.flush()
        assert m.label == "load"
        assert m.pages_written > 0
        assert m.wall_seconds > 0
        assert m.sim_seconds == pytest.approx(
            db.disk.elapsed_seconds(m.io))

    def test_nothing_happened(self):
        db = Database()
        with measure(db) as m:
            pass
        assert m.pages_read == 0
        assert m.sim_seconds == 0.0

    def test_measurement_repr(self):
        m = Measurement("x")
        assert "x" in repr(m)


class TestFormatting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(1234567) == "1,234,567"
        assert format_value(0.5) == "0.500"
        assert format_value(1.5e-7) == "1.500e-07"
        assert format_value(2.3e9) == "2.300e+09"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["bb", 22]],
                            title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equal width

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness
        monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
        path = write_report("TEST_ID", "hello")
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read().strip() == "hello"


class TestDatabaseClose:
    def test_close_stops_everything(self):
        db = Database()
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        db.execute_script("""
            CREATE STREAM agg AS SELECT count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'>;
            CREATE TABLE arch (c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)
        sub = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        db.close()
        db.insert_stream("s", [(1, 5.0)])
        db.advance_streams(60.0)
        assert sub.poll() == []
        assert db.table_rows("arch") == []
        # snapshot queries still work after close
        assert db.query("SELECT count(*) FROM arch").scalar() == 0

    def test_context_manager(self):
        with Database() as db:
            db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            sub = db.subscribe("SELECT count(*) FROM s <VISIBLE '1 minute'>")
        db.insert_stream("s", [(1, 5.0)])
        db.advance_streams(60.0)
        assert sub.poll() == []
