"""Chaos scenarios for the ``eventtime.watermark_persist`` crashpoint.

The promise under test: :meth:`Database.inject_watermark` advances the
stream's watermark (closing windows) and *then* makes the advance
durable with a WAL flush.  A crash between the two must never corrupt
event-time state:

* in-process, the advance has already happened — a retry is idempotent
  (the watermark is monotone) and simply completes the flush;
* across a real crash, the unflushed advance is lost — recovery lands
  the watermark exactly on the durable state (observation-derived from
  replayed rows plus flushed injections), and re-closing the windows
  after a retry emits each window exactly once, with no spurious
  emit-then-retract pair.
"""

import pytest

from repro import Database
from repro.errors import FaultInjected
from repro.faults import FaultInjector
from repro.replication import open_database

STREAM_DDL = ("CREATE STREAM s (v integer, ts timestamp CQTIME USER) "
              "WATERMARK '5 seconds'")
CQ_SQL = ("SELECT count(*) FROM s <VISIBLE '10 seconds'> "
          "EMIT ON WATERMARK ALLOW LATENESS '30 seconds' RETRACT")


class TestWatermarkPersistCrashpoint:
    def test_in_process_retry_is_idempotent(self):
        faults = FaultInjector(seed=13)
        faults.arm("eventtime.watermark_persist", count=1)
        db = Database(fault_injector=faults)
        db.execute(STREAM_DDL)
        sub = db.subscribe(CQ_SQL)
        db.insert_stream("s", [(1, 3.0), (2, 8.0)])
        with pytest.raises(FaultInjected):
            db.inject_watermark("s", 20.0)
        # the advance took effect before the crashpoint: windows closed
        stream = db.runtime.get_stream("s")
        assert stream.watermark == 20.0
        first = sub.poll()
        assert [(w.kind, w.close_time) for w in first] == [
            ("window", 10.0), ("window", 20.0)]
        # the fault is spent; the retry completes the flush and closes
        # nothing twice (monotone watermark: no second emission)
        assert db.inject_watermark("s", 20.0) == 20.0
        assert sub.poll() == []
        db.close()

    def test_crash_lands_watermark_on_durable_state(self, tmp_path):
        wal_path = str(tmp_path / "wal.jsonl")
        faults = FaultInjector(seed=13)
        faults.arm("eventtime.watermark_persist", count=1)
        db = Database(wal_path=wal_path, stream_retention=3600.0,
                      fault_injector=faults)
        db.execute(STREAM_DDL)
        db.insert_stream("s", [(1, 3.0), (2, 8.0), (3, 12.0)])
        db.storage.wal.flush()  # the rows are durable
        with pytest.raises(FaultInjected):
            db.inject_watermark("s", 50.0)  # the advance is not
        assert db.runtime.get_stream("s").watermark == 50.0
        # kill -9: no close(), no flush — the buffered advance is lost

        recovered = open_database(wal_path=wal_path,
                                  stream_retention=3600.0)
        try:
            stream = recovered.runtime.get_stream("s")
            # observation-derived only: max event time 12 minus bound 5;
            # the torn injection neither persisted nor corrupted
            assert stream.watermark == 7.0
            assert stream.tracker.max_event_time == 12.0

            # a fresh CQ sees each window exactly once when the client
            # retries the injection — no spurious emit-then-retract
            sub = recovered.subscribe(CQ_SQL)
            assert recovered.inject_watermark("s", 50.0) == 50.0
            windows = sub.poll()
            assert all(w.kind == "window" for w in windows)
            closes = [w.close_time for w in windows]
            assert closes == sorted(set(closes))
        finally:
            recovered.close()

    def test_flushed_injection_survives_crash(self, tmp_path):
        wal_path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=wal_path, stream_retention=3600.0)
        db.execute(STREAM_DDL)
        db.insert_stream("s", [(1, 3.0)])
        db.inject_watermark("s", 40.0)  # unfaulted: flushed
        # kill -9 without close: the flush already happened

        recovered = open_database(wal_path=wal_path,
                                  stream_retention=3600.0)
        try:
            stream = recovered.runtime.get_stream("s")
            assert stream.watermark == 40.0
            # monotone across recovery: replayed observations cannot
            # drag it back down
            recovered.insert_stream("s", [(2, 10.0)])
            assert stream.watermark == 40.0
        finally:
            recovered.close()
