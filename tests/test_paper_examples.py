"""The paper's Examples 1–5, executed verbatim (modulo the PDF's mangled
minus sign in Example 5), end to end.

This is the fidelity test: the reproduction must accept the paper's own
TruSQL and behave as Section 3 describes.
"""

import pytest

from repro import Database
from repro.core.results import Subscription

EXAMPLE_1 = """
CREATE STREAM url_stream (
    url varchar(1024),
    atime timestamp CQTIME USER,
    client_ip varchar(50)
)
"""

EXAMPLE_2 = """
SELECT url, count(*) url_count
FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
GROUP by url
ORDER by url_count desc
LIMIT 10
"""

EXAMPLE_3 = """
CREATE STREAM urls_now as
SELECT url, count(*) as scnt, cq_close(*)
FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
GROUP by url
"""

EXAMPLE_4A = """
CREATE TABLE urls_archive (url varchar(1024), scnt integer,
                           stime timestamp)
"""

EXAMPLE_4B = """
CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND
"""

EXAMPLE_5 = """
select c.scnt, h.scnt, c.stime
from (select sum(scnt) as scnt, cq_close(*) as stime
      from urls_now <slices 1 windows>) c,
     urls_archive h
where c.stime - '1 week'::interval = h.stime
"""

WEEK = 7 * 86400.0
MINUTE = 60.0


@pytest.fixture
def db():
    return Database()


def clicks(db, url_counts, minute_start):
    """Insert url_counts = {url: n} spread inside one minute."""
    events = []
    base = minute_start * MINUTE
    i = 0
    for url, count in sorted(url_counts.items()):
        for _ in range(count):
            events.append((url, base + 1 + i * 0.001, "10.0.0.1"))
            i += 1
    db.insert_stream("url_stream", events)


class TestExample1:
    def test_creates_stream(self, db):
        db.execute(EXAMPLE_1)
        stream = db.get_stream("url_stream")
        assert stream.cqtime_mode == "user"
        assert stream.schema.names() == ["url", "atime", "client_ip"]

    def test_varchar_widths_enforced(self, db):
        from repro.errors import ConstraintError
        db.execute(EXAMPLE_1)
        with pytest.raises(ConstraintError):
            db.insert_stream("url_stream", [("x" * 2000, 1.0, "ip")])


class TestExample2:
    def test_top_ten_per_minute(self, db):
        db.execute(EXAMPLE_1)
        sub = db.execute(EXAMPLE_2)
        assert isinstance(sub, Subscription)
        assert sub.columns == ["url", "url_count"]
        # 12 distinct urls; only the top 10 must appear
        clicks(db, {f"/u{i:02d}": 12 - i for i in range(12)}, 0)
        db.advance_streams(MINUTE)
        window = sub.latest()
        assert len(window.rows) == 10
        assert window.rows[0] == ("/u00", 12)
        counts = [c for _u, c in window.rows]
        assert counts == sorted(counts, reverse=True)

    def test_five_minute_visibility(self, db):
        db.execute(EXAMPLE_1)
        sub = db.execute(EXAMPLE_2)
        clicks(db, {"/a": 2}, 0)   # minute 0
        clicks(db, {"/a": 3}, 4)   # minute 4: still visible at close 5
        db.advance_streams(5 * MINUTE)
        window = sub.latest()
        assert window.rows == [("/a", 5)]
        # at close 6 the minute-0 clicks have left the window
        db.advance_streams(6 * MINUTE)
        assert sub.latest().rows == [("/a", 3)]


class TestExample3:
    def test_derived_stream_publishes_every_minute(self, db):
        db.execute(EXAMPLE_1)
        db.execute(EXAMPLE_3)
        clicks(db, {"/a": 2, "/b": 1}, 0)
        db.advance_streams(MINUTE)
        derived = db.catalog.get_relation("urls_now")
        assert derived.batches_out == 1
        assert derived.schema.names() == ["url", "scnt", "cq_close"]

    def test_results_within_one_minute_after_reconnect(self, db):
        """The paper: "results of a CQ are available upon the first
        window close after a client re-connects"."""
        db.execute(EXAMPLE_1)
        db.execute(EXAMPLE_3)
        clicks(db, {"/a": 4}, 0)
        db.advance_streams(MINUTE)  # runs with no subscriber (always on)
        sub = db.subscribe("SELECT url, scnt FROM urls_now <slices 1 windows>")
        clicks(db, {"/a": 1}, 1)
        db.advance_streams(2 * MINUTE)
        rows = sub.rows()
        assert ("/a", 5) in rows


class TestExample4:
    def setup_pipeline(self, db):
        db.execute(EXAMPLE_1)
        db.execute(EXAMPLE_3)
        db.execute(EXAMPLE_4A)
        db.execute(EXAMPLE_4B)

    def test_append_archives_each_window(self, db):
        self.setup_pipeline(db)
        clicks(db, {"/a": 2}, 0)
        db.advance_streams(MINUTE)
        clicks(db, {"/a": 1}, 1)
        db.advance_streams(2 * MINUTE)
        rows = db.table_rows("urls_archive")
        assert ("/a", 2, 60.0) in rows
        assert ("/a", 3, 120.0) in rows  # sliding window still sees min 0

    def test_archive_is_plain_sql_table(self, db):
        self.setup_pipeline(db)
        clicks(db, {"/a": 2, "/b": 5}, 0)
        db.advance_streams(MINUTE)
        result = db.query(
            "SELECT url FROM urls_archive ORDER BY scnt DESC LIMIT 1")
        assert result.rows == [("/b",)]

    def test_reporting_query_is_cheap(self, db):
        """The Section 4 anecdote in miniature: the reporting query
        touches the small archive, not the raw events."""
        self.setup_pipeline(db)
        for minute in range(3):
            clicks(db, {"/a": 50}, minute)
        db.advance_streams(4 * MINUTE)
        before = db.io_snapshot()
        db.query("SELECT url, sum(scnt) FROM urls_archive GROUP BY url")
        delta = db.io_snapshot() - before
        assert delta.pages_read <= 2  # the archive is tiny and hot


class TestExample5:
    def test_week_over_week_join(self, db):
        db.execute(EXAMPLE_1)
        db.execute(EXAMPLE_3)
        db.execute(EXAMPLE_4A)
        db.execute(EXAMPLE_4B)
        sub = db.execute(EXAMPLE_5)
        assert sub.columns == ["scnt", "scnt", "stime"]

        # week 1, minute 0: 7 clicks -> archived at close WEEK + 60?  No:
        # archive rows carry their own close times; we need a row whose
        # stime is exactly one week before a current window close.
        clicks(db, {"/a": 7}, 0)
        db.advance_streams(MINUTE)            # archive ('/a', 7, 60.0)
        db.get_stream("url_stream").advance_to(WEEK)  # a quiet week passes

        events = [("/a", WEEK + 1.0, "ip")] * 4
        db.insert_stream("url_stream", events)
        db.advance_streams(WEEK + MINUTE)     # closes at WEEK + 60

        matches = [row for w in sub.poll() for row in w.rows]
        assert (4, 7, WEEK + MINUTE) in matches

    def test_historical_comparison_semantics(self, db):
        """current count c.scnt vs the archived count h.scnt."""
        db.execute(EXAMPLE_1)
        db.execute(EXAMPLE_3)
        db.execute(EXAMPLE_4A)
        db.execute(EXAMPLE_4B)
        sub = db.execute(EXAMPLE_5)
        clicks(db, {"/a": 2, "/b": 3}, 0)     # total 5
        db.advance_streams(MINUTE)
        db.get_stream("url_stream").advance_to(WEEK)
        db.insert_stream("url_stream", [("/c", WEEK + 0.5, "ip")])
        db.advance_streams(WEEK + MINUTE)
        matches = [row for w in sub.poll() for row in w.rows]
        # current sum = 1; archived rows from a week ago: 2 and 3
        assert (1, 2, WEEK + MINUTE) in matches
        assert (1, 3, WEEK + MINUTE) in matches
