"""Tests for durable-state recovery from a surviving WAL, plus TRUNCATE
and the extended scalar-function library."""

import pytest

from repro import Database
from repro.errors import BindError


class TestWalRecovery:
    def crash(self, db):
        """Simulate a crash: keep only what is on 'disk' — the WAL."""
        return db.storage.wal

    def test_committed_rows_survive(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer, b varchar(10))")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        wal = self.crash(db)
        recovered = Database.recover_from_wal(wal)
        assert sorted(recovered.table_rows("t")) == [(1, "x"), (2, "y")]

    def test_schema_recovered(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer NOT NULL, b varchar(7))")
        wal = self.crash(db)
        recovered = Database.recover_from_wal(wal)
        schema = recovered.get_table("t").schema
        assert schema.column("a").not_null
        assert schema.column("b").datatype.sql_name() == "varchar(7)"

    def test_uncommitted_transaction_discarded(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (2)")
        # crash before COMMIT: the in-flight txn is deemed aborted
        wal = self.crash(db)
        recovered = Database.recover_from_wal(wal)
        assert recovered.table_rows("t") == [(1,)]

    def test_deletes_and_updates_replayed(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer, b varchar(10))")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        db.execute("DELETE FROM t WHERE a = 2")
        db.execute("UPDATE t SET b = 'updated' WHERE a = 1")
        wal = self.crash(db)
        recovered = Database.recover_from_wal(wal)
        assert sorted(recovered.table_rows("t")) == [
            (1, "updated"), (3, "z")]

    def test_recovered_database_is_usable(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        recovered = Database.recover_from_wal(self.crash(db))
        recovered.execute("INSERT INTO t VALUES (2)")
        assert recovered.query("SELECT sum(a) FROM t").scalar() == 3

    def test_active_table_contents_survive(self):
        db = Database()
        db.execute("CREATE STREAM s (k varchar(5), ts timestamp CQTIME USER)")
        db.execute_script("""
            CREATE STREAM agg AS SELECT k, count(*) c, cq_close(*)
                FROM s <VISIBLE '1 minute'> GROUP BY k;
            CREATE TABLE arch (k varchar(5), c bigint, ts timestamp);
            CREATE CHANNEL ch FROM agg INTO arch APPEND;
        """)
        db.insert_stream("s", [("a", 5.0), ("a", 6.0)])
        db.advance_streams(60.0)
        recovered = Database.recover_from_wal(self.crash(db))
        # the archive (durable state) is back; the stream (runtime) is not
        assert recovered.table_rows("arch") == [("a", 2, 60.0)]
        with pytest.raises(Exception):
            recovered.get_stream("s")


class TestTruncate:
    def test_truncate_all_rows(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        result = db.execute("TRUNCATE TABLE t")
        assert result.rowcount == 3
        assert db.table_rows("t") == []

    def test_truncate_without_table_keyword(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("TRUNCATE t")
        assert db.table_rows("t") == []

    def test_truncate_is_transactional(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("TRUNCATE t")
        db.execute("ROLLBACK")
        assert db.table_rows("t") == [(1,)]


class TestNewScalarFunctions:
    @pytest.fixture
    def db(self):
        return Database()

    def scalar(self, db, expr):
        return db.query(f"SELECT {expr}").scalar()

    def test_string_functions(self, db):
        assert self.scalar(db, "trim('  x  ')") == "x"
        assert self.scalar(db, "ltrim('  x')") == "x"
        assert self.scalar(db, "rtrim('x  ')") == "x"
        assert self.scalar(db, "replace('a-b-c', '-', '+')") == "a+b+c"
        assert self.scalar(db, "split_part('a,b,c', ',', 2)") == "b"
        assert self.scalar(db, "split_part('a,b', ',', 9)") == ""
        assert self.scalar(db, "strpos('hello', 'll')") == 3
        assert self.scalar(db, "strpos('hello', 'zz')") == 0
        assert self.scalar(db, "left('hello', 2)") == "he"
        assert self.scalar(db, "right('hello', 2)") == "lo"
        assert self.scalar(db, "repeat('ab', 3)") == "ababab"
        assert self.scalar(db, "lpad('7', 3, '0')") == "007"
        assert self.scalar(db, "reverse('abc')") == "cba"
        assert self.scalar(db, "initcap('hello world')") == "Hello World"
        assert self.scalar(db, "starts_with('hello', 'he')") is True

    def test_math_functions(self, db):
        assert self.scalar(db, "sign(-5)") == -1
        assert self.scalar(db, "sign(0)") == 0
        assert self.scalar(db, "sign(2.5)") == 1
        assert self.scalar(db, "trunc(3.9)") == 3
        assert self.scalar(db, "trunc(-3.9)") == -3
        assert self.scalar(db, "exp(0)") == 1.0

    def test_null_guards(self, db):
        assert self.scalar(db, "replace(NULL, 'a', 'b')") is None
        assert self.scalar(db, "sign(NULL)") is None

    def test_unknown_still_rejected(self, db):
        with pytest.raises(BindError):
            db.query("SELECT frobnicate('x')")
