"""repro — Continuous Analytics: a stream-relational database.

A from-scratch reproduction of Franklin et al., "Continuous Analytics:
Rethinking Query Processing in a Network-Effect World" (CIDR 2009): a
full SQL database with stream processing embedded in the engine, speaking
the paper's TruSQL dialect (streams, window clauses, derived streams,
channels, active tables).

Quickstart::

    from repro import Database

    db = Database()
    db.execute(\"\"\"CREATE STREAM url_stream (
        url varchar(1024), atime timestamp CQTIME USER,
        client_ip varchar(50))\"\"\")
    sub = db.execute(\"\"\"SELECT url, count(*) url_count
        FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
        GROUP BY url ORDER BY url_count DESC LIMIT 10\"\"\")
"""

from repro.core import Database, ResultSet, Subscription, WindowResult
from repro.errors import TruvisoError

__version__ = "1.0.0"

__all__ = [
    "Database",
    "ResultSet",
    "Subscription",
    "WindowResult",
    "TruvisoError",
    "__version__",
]
