"""The partition coordinator: N workers, one merged answer stream.

:class:`PartitionedEngine` wraps a regular :class:`Database` and shards
every ``PARTITION BY`` stream's rows across N workers by consistent
hash of the declared key (NULL keys take the spill lane).  Each worker
runs the full engine on its shard with partition-eligible CQs rewired
to ship mergeable window partials (see :mod:`repro.partition.worker`);
the coordinator mirrors the global window boundary grid, gates each
close on the **minimum acked worker watermark** (min-of-inputs merge,
:class:`~repro.eventtime.watermark.WatermarkMerge`), merges the shard
partials, and runs the CQ's unchanged post-aggregate plan with the
aggregate pinned to the merged rows — output is the single-engine
output, bit for bit.

Unpartitioned streams (and their CQs) pass straight through to the
local database.  Partitioned streams keep a **silent** local twin for
the catalog and the system views: no rows are ever delivered to it and
the coordinator CQ's window operator is detached, so only the merge
stage can emit.

Worker lifecycle: a worker that dies (socket drop, injected
``partition.worker_crash``, SIGKILL) is respawned and replayed from the
coordinator's per-worker log of acked frames, then synced to the
current watermark — stale finals for already-merged boundaries are
ignored and re-sent corrections converge via compare-and-skip, so a
crash is invisible in the output.  Crashpoints ``partition.route`` (the
router dies before any shard is sent: batch refused atomically) and
``partition.merge`` (the merge stage dies before emitting: partials
retained, boundary stays pending) cover the coordinator's own hot path.
"""

from __future__ import annotations

import math
import os
import socket
import subprocess
import sys
from typing import Dict, List, Optional

from repro.core.database import Database
from repro.core.results import Subscription
from repro.errors import (
    FaultInjected,
    OutOfOrderError,
    PartitionError,
    StreamingError,
    WorkerDiedError,
)
from repro.eventtime.lateness import RETRACT
from repro.eventtime.watermark import WatermarkMerge
from repro.partition import wire
from repro.partition.hashring import HashRing
from repro.partition.planner import partition_plan
from repro.partition.worker import WorkerEngine
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.streaming.streams import DROP

NEG_INF = float("-inf")

#: key→worker memo cap per stream (beyond it, hash every row)
_MEMO_LIMIT = 1 << 16
#: replay-log prune cadence, in ingest batches per stream
_PRUNE_EVERY = 64


# -- worker transports --------------------------------------------------------


class _InlineHandle:
    """In-process worker.  Every frame still round-trips through the
    wire encoding, so serialization is exercised identically to the
    subprocess transport — and an injected worker crash kills the
    handle exactly as a SIGKILL kills a subprocess: state gone, no
    error frame, only a :class:`WorkerDiedError` on use."""

    kind = "inline"

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.engine = WorkerEngine(worker_id)
        self.alive = True

    @property
    def pid(self) -> int:
        return os.getpid()

    def request(self, msg: dict) -> list:
        if not self.alive:
            raise WorkerDiedError(f"worker {self.worker_id} is down")
        try:
            frames = self.engine.handle(wire.roundtrip(msg))
        except FaultInjected as exc:
            self.alive = False
            raise WorkerDiedError(
                f"worker {self.worker_id} crashed "
                f"({getattr(exc, 'crashpoint', 'fault')})") from exc
        return [wire.roundtrip(frame) for frame in frames]

    def kill(self) -> None:
        self.alive = False

    def close(self) -> None:
        if self.alive:
            try:
                self.request({"op": "stop"})
            except (WorkerDiedError, PartitionError):
                pass
        self.alive = False


class _ProcessHandle:
    """Subprocess worker connected over a loopback socket.

    The coordinator listens, the worker connects back and authenticates
    with a nonce handed over argv — nothing outside the process tree
    can impersonate a worker, which is what makes the pickle wire
    format safe."""

    kind = "process"

    def __init__(self, worker_id: int, listener: socket.socket,
                 host: str, port: int, timeout: float = 30.0):
        self.worker_id = worker_id
        self.alive = True
        nonce = os.urandom(16).hex()
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        # start_new_session detaches the worker from the terminal's
        # process group: a Ctrl-C aimed at the coordinator must not
        # SIGINT the shards — they shut down via stop frame or socket
        # close, and a mid-frame signal would look like a crash
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.partition.worker",
             host, str(port), str(worker_id), nonce],
            env=env, start_new_session=True)
        listener.settimeout(timeout)
        try:
            conn, _addr = listener.accept()
        except socket.timeout:
            self.proc.kill()
            raise PartitionError(
                f"worker {worker_id} did not connect back within "
                f"{timeout}s")
        hello = wire.recv_frame(conn)
        if (hello.get("type") != "hello"
                or hello.get("worker") != worker_id
                or hello.get("nonce") != nonce):
            conn.close()
            self.proc.kill()
            raise PartitionError(
                f"worker {worker_id}: bad hello handshake")
        conn.settimeout(timeout)
        self.sock = conn

    @property
    def pid(self) -> int:
        return self.proc.pid

    def request(self, msg: dict) -> list:
        if not self.alive:
            raise WorkerDiedError(f"worker {self.worker_id} is down")
        try:
            wire.send_frame(self.sock, msg)
            frames = []
            while True:
                frame = wire.recv_frame(self.sock)
                frames.append(frame)
                if frame.get("type") in ("ack", "error"):
                    return frames
        except (WorkerDiedError, socket.timeout) as exc:
            self.alive = False
            try:
                self.sock.close()
            except OSError:
                pass
            if isinstance(exc, socket.timeout):
                raise WorkerDiedError(
                    f"worker {self.worker_id} timed out") from exc
            raise

    def kill(self) -> None:
        self.alive = False
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        if self.alive:
            try:
                self.request({"op": "stop"})
            except (WorkerDiedError, PartitionError):
                pass
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()

    def reap(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass


# -- per-stream router --------------------------------------------------------


class _StreamRoute:
    """Routing + clock state for one partitioned stream.

    The router is the stream's single point of order: for arrival-order
    streams it enforces global monotonicity itself (so every shard sees
    a monotone sub-sequence and workers never drop), and for event-time
    streams it mirrors the global watermark tracker and interleaves
    ``("wm", t)`` sync segments so each worker judges lateness against
    exactly the watermark the single engine would have used."""

    def __init__(self, stream, ring: HashRing, n_workers: int):
        self.stream = stream            # the silent local twin
        self.name = stream.name
        self.ring = ring
        self.n = n_workers
        self.key_index = stream.schema.index_of(stream.partition_by)
        self.cqtime_index = stream.cqtime_index
        self.system_time = stream.cqtime_mode == "system"
        self.tracker = stream.tracker   # event-time mirror (None = arrival)
        self.clock = NEG_INF            # arrival-order delivered clock
        self.max_time = NEG_INF         # max event time ever routed
        self.wm_merge = WatermarkMerge(range(n_workers))
        #: watermark as of the last fully-acked batch — the respawn
        #: fast-forward may only sync this far, or the retried
        #: in-flight frame's rows would arrive below the fresh
        #: worker's watermark
        self.completed_wm = NEG_INF
        self._sent_wm = [NEG_INF] * n_workers
        self._memo: Dict[object, int] = {}
        self.rows_routed = [0] * n_workers
        self.spill_rows = [0] * n_workers
        self.batches = 0
        self.cqs: List["_PartitionedCQ"] = []

    def worker_for(self, key) -> int:
        if key is None:
            return self.ring.spill_worker
        memo = self._memo
        try:
            return memo[key]
        except KeyError:
            worker = self.ring.worker_for(key)
            if len(memo) < _MEMO_LIMIT:
                memo[key] = worker
            return worker
        except TypeError:                 # unhashable key value
            return self.ring.worker_for(key)

    def current_watermark(self) -> float:
        return self.tracker.watermark if self.tracker is not None \
            else self.clock

    def route_batch(self, rows, at, watermark):
        """Split one ingest batch into per-worker segment lists.

        Returns ``({worker: segments}, counts)``.  Segments are
        ``("rows", [row, ...], at)`` runs interleaved with ``("wm", t)``
        watermark syncs, in exact delivery order."""
        n = self.n
        segs: List[list] = [[] for _ in range(n)]
        runs: List[Optional[list]] = [None] * n
        accepted = dropped = 0
        tracker = self.tracker
        key_index = self.key_index
        time_index = self.cqtime_index
        if self.system_time:
            t_sys = float(at) if at is not None else max(self.clock, 0.0)
            seg_at = t_sys
        else:
            seg_at = at
        # grid-mirror updates are only needed while some CQ's boundary
        # grid is still starting (or, event-time, still rebase-able: no
        # heartbeat has closed its first boundary yet)
        watch_grid = any(
            pcq.base is None
            or (pcq.event_time
                and pcq.heartbeat_wm < pcq.base + pcq.advance)
            for pcq in self.cqs)
        for row in rows:
            if self.system_time:
                t = t_sys
            else:
                t = row[time_index]
                if t is None:
                    raise StreamingError(
                        f"stream {self.name!r}: CQTIME value is NULL")
            if tracker is None:
                # the router is the disorder gate; refusal is atomic
                # (nothing has been sent yet), unlike the single
                # engine's row-at-a-time raise — see docs/PARTITION.md
                if t < self.clock:
                    if self.stream.disorder_policy == DROP:
                        dropped += 1
                        continue
                    raise OutOfOrderError(
                        f"stream {self.name!r}: event time {t} is before "
                        f"watermark {self.clock}")
                if t > self.clock:
                    self.clock = t
                pre = t
            else:
                pre = tracker.watermark
            key = row[key_index]
            worker = self.worker_for(key)
            if tracker is not None and self._sent_wm[worker] < pre:
                # the worker must judge this row's lateness against the
                # same watermark the single engine would have
                runs[worker] = None
                segs[worker].append(("wm", pre))
                self._sent_wm[worker] = pre
            run = runs[worker]
            if run is None:
                run = []
                runs[worker] = run
                segs[worker].append(("rows", run, seg_at))
            run.append(tuple(row))
            self.rows_routed[worker] += 1
            if key is None:
                self.spill_rows[worker] += 1
            accepted += 1
            if watch_grid:
                for pcq in self.cqs:
                    if pcq.base is None:
                        pcq.start_at(t)
                    elif (pcq.event_time and t < pcq.base
                          and pcq.heartbeat_wm < pcq.base + pcq.advance):
                        # mirror of the event-time operator's rebase: an
                        # earlier row pulls the first close back while
                        # no heartbeat has closed anything yet (late
                        # rows rebase too — the operator checks the
                        # grid before judging lateness)
                        pcq.start_at(t)
                watch_grid = any(
                    pcq.event_time
                    and pcq.heartbeat_wm < pcq.base + pcq.advance
                    for pcq in self.cqs)
            if tracker is not None:
                advanced = tracker.observe(t)
                if advanced is not None:
                    self._heartbeat(advanced)
            if t > self.max_time:
                self.max_time = t
        if tracker is not None:
            if watermark is not None:
                advanced = tracker.inject(watermark)
                if advanced is not None:
                    self._heartbeat(advanced)
            wm_now = tracker.watermark
        else:
            if watermark is not None and watermark > self.clock:
                self.clock = watermark
            wm_now = self.clock
        # trailing sync: every worker reaches the global watermark so
        # shard windows close and partials ship with this batch's acks
        for worker in range(n):
            if self._sent_wm[worker] < wm_now:
                segs[worker].append(("wm", wm_now))
                self._sent_wm[worker] = wm_now
        self.batches += 1
        self._mirror_local(accepted, dropped, wm_now)
        out = {worker: segs[worker] for worker in range(n) if segs[worker]}
        return out, {"accepted": accepted, "shed": 0, "dropped": dropped}

    def _heartbeat(self, wm: float) -> None:
        """Mirror of the event-time stream's heartbeat broadcast: each
        watermark *advance* licenses closes up to the new value for
        every CQ whose grid existed at that moment."""
        for pcq in self.cqs:
            if pcq.event_time and pcq.base is not None \
                    and wm > pcq.heartbeat_wm:
                pcq.heartbeat_wm = wm

    def sync_segments(self, t: float) -> dict:
        """Watermark-only segments (explicit advance / injection)."""
        if self.tracker is not None:
            advanced = self.tracker.inject(t)
            if advanced is not None:
                self._heartbeat(advanced)
            wm_now = self.tracker.watermark
        else:
            if t > self.clock:
                self.clock = t
            wm_now = self.clock
        out = {}
        for worker in range(self.n):
            if self._sent_wm[worker] < wm_now:
                out[worker] = [("wm", wm_now)]
                self._sent_wm[worker] = wm_now
        self._mirror_local(0, 0, wm_now)
        return out

    def _mirror_local(self, accepted: int, dropped: int,
                      wm_now: float) -> None:
        """Keep the silent local twin's counters honest for the system
        views (and the retract bookkeeping, which prunes remembered
        output against ``stream.watermark``).  Plain field writes — the
        twin has no consumers, so nothing can fire."""
        stream = self.stream
        stream.tuples_in += accepted
        stream.tuples_dropped += dropped
        if self.tracker is not None:
            stream.watermark = self.tracker.watermark
            stream.raw_watermark = self.tracker.max_event_time
        elif wm_now > stream.watermark:
            stream.watermark = wm_now
            stream.raw_watermark = wm_now


# -- per-CQ boundary grid -----------------------------------------------------


class _PartitionedCQ:
    """Coordinator state for one partitioned CQ: the mirror of the
    global window boundary grid plus the shard-partial store."""

    def __init__(self, cq, agg, route: _StreamRoute):
        self.cq = cq
        self.agg = agg
        self.route = route
        self.name = cq.name
        spec = cq.window_spec
        self.visible = float(spec.visible)
        self.advance = float(spec.advance)
        self.event_time = cq.is_event_time()
        self.retract = self.event_time and cq.late_policy == RETRACT
        self.retain_extra = (cq.allowed_lateness + self.advance
                             if self.retract else 0.0)
        self.base: Optional[float] = None
        self.index = 1
        self.flushed = False
        # event-time closes are licensed by watermark-advance heartbeats
        # observed *after* the grid (re)started — a grid rebased below
        # the current watermark stays open until the next advance (or
        # flush), exactly like EventTimeWindowOperator.on_heartbeat
        self.heartbeat_wm = math.inf if not self.event_time else NEG_INF
        #: close boundary -> {worker: (groups, shard_row_count)}
        self.store: Dict[float, Dict[int, tuple]] = {}
        self.merged = set()

    def start_at(self, event_time: float) -> None:
        # identical arithmetic to TimeWindowOperator._start_at
        self.base = math.floor(event_time / self.advance) * self.advance
        self.index = 1
        if self.event_time:
            self.heartbeat_wm = NEG_INF

    def next_boundary(self) -> Optional[float]:
        if self.base is None:
            return None
        return self.base + self.index * self.advance

    def prune_horizon(self) -> float:
        """Rows below this event time can no longer contribute to any
        unmerged window or in-bound recomputation of this CQ."""
        boundary = self.next_boundary()
        if boundary is None:
            return NEG_INF
        return boundary - self.visible - self.retain_extra


# -- the engine ---------------------------------------------------------------


class PartitionedEngine:
    """N-worker partitioned execution behind the one-database API.

    ``transport="inline"`` hosts workers in-process (every frame still
    round-trips the wire encoding); ``transport="process"`` spawns one
    subprocess per worker over loopback sockets.
    """

    def __init__(self, partitions: int = 2, transport: str = "inline",
                 db: Optional[Database] = None, replicas: int = 64,
                 spawn_timeout: float = 30.0):
        if partitions < 1:
            raise PartitionError("need at least one partition")
        if transport not in ("inline", "process"):
            raise PartitionError(f"unknown transport {transport!r}")
        self.partitions = partitions
        self.transport = transport
        self.spawn_timeout = spawn_timeout
        self.db = db if db is not None else Database()
        self.db.partition_registry = self.status_rows
        self.ring = HashRing(partitions, replicas=replicas)
        self.faults = None              # coordinator-side FaultInjector
        self._listener = None
        self._host = "127.0.0.1"
        self._port = 0
        if transport == "process":
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.bind((self._host, 0))
            self._listener.listen(partitions + 2)
            self._port = self._listener.getsockname()[1]
        self._handles = [self._spawn(w) for w in range(partitions)]
        self._routes: Dict[str, _StreamRoute] = {}
        self._pcqs: Dict[str, _PartitionedCQ] = {}
        self._corrections: List[tuple] = []
        #: per-worker ordered log of acked frames, for restart-replay:
        #: ("ddl"|"cq"|"flush"|"stopcq", msg, None) or
        #: ("ingest", msg, max_event_time)
        self._logs: List[list] = [[] for _ in range(partitions)]
        self._broadcast_names = set()
        self.restarts = [0] * partitions
        self.replayed_batches = [0] * partitions
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, worker: int):
        if self.transport == "inline":
            return _InlineHandle(worker)
        return _ProcessHandle(worker, self._listener, self._host,
                              self._port, timeout=self.spawn_timeout)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- statement dispatch -------------------------------------------------

    def execute(self, sql: str, params=None):
        """Run one TruSQL statement, partition-aware: CQs over
        ``PARTITION BY`` streams split into per-worker aggregation plus
        a coordinator merge stage; everything else passes through to
        the local database."""
        statement = parse_statement(sql)
        self._guard_statement(statement)
        if isinstance(statement, ast.Insert) \
                and statement.table in self._routes:
            # SQL INSERT into a partitioned stream must route like
            # ingest() — the local twin is silent, so rows delivered
            # to it would vanish from every partitionized CQ
            from repro.core.database import _count
            stream = self.db.get_stream(statement.table)
            rows = self.db._insert_rows(statement, stream.schema)
            counts = self.ingest(statement.table, rows)
            return _count(counts["accepted"])
        result = self.db.execute(sql, params)
        if isinstance(statement, ast.CreateStream):
            self._register_stream(statement, sql)
        elif isinstance(statement, ast.CreateView):
            self._broadcast_ddl(statement.name, sql)
        elif isinstance(result, Subscription):
            cq = result.cq
            refs = getattr(cq, "streams", None) or [cq.stream]
            if any(s.name in self._routes for s in refs):
                try:
                    self._partitionize(cq, sql, params)
                except PartitionError:
                    result.close()
                    raise
        return result

    def query(self, sql: str, params=None):
        return self.db.query(sql, params)

    def _guard_statement(self, statement) -> None:
        if not self._routes:
            return
        if isinstance(statement, (ast.CreateDerivedStream, ast.CreateView)):
            query = statement.query
        elif isinstance(statement, ast.CreateChannel):
            if statement.source in self._routes:
                raise PartitionError(
                    f"channel {statement.name!r}: cannot source from "
                    f"partitioned stream {statement.source!r}")
            return
        else:
            return
        from repro.streaming.cq import find_stream_refs
        try:
            refs = find_stream_refs(query.from_clause, self.db.catalog)
        except Exception:
            return      # unresolvable refs fail later, in the planner
        partitioned = [r.name for r in refs if r.name in self._routes]
        if partitioned and isinstance(statement, ast.CreateDerivedStream):
            raise PartitionError(
                f"derived stream {statement.name!r}: deriving from "
                f"partitioned stream {partitioned[0]!r} is not supported "
                "(the derived CQ would run unpartitioned; see "
                "docs/PARTITION.md)")

    def _register_stream(self, statement: ast.CreateStream,
                         sql: str) -> None:
        stream = self.db.get_stream(statement.name)
        if stream.name in self._routes:
            return                      # IF NOT EXISTS re-run
        self._broadcast_ddl(stream.name, sql)
        if stream.partition_by is None:
            return
        if stream.slack > 0:
            raise PartitionError(
                f"stream {stream.name!r}: SLACK reordering is per-shard "
                "state and cannot be partitioned")
        self._routes[stream.name] = _StreamRoute(stream, self.ring,
                                                 self.partitions)

    def _broadcast_ddl(self, name: str, sql: str) -> None:
        if name in self._broadcast_names:
            return
        self._broadcast_names.add(name)
        msg = {"op": "ddl", "sql": sql}
        for worker in range(self.partitions):
            self._request(worker, msg, record=("ddl", msg, None))

    def _partitionize(self, cq, sql: str, params) -> None:
        split = partition_plan(cq)
        route = self._routes.get(split.stream_name)
        if route is None:
            raise PartitionError(
                f"CQ {cq.name!r}: stream {split.stream_name!r} is not "
                "partitioned")
        msg = {"op": "cq", "name": cq.name, "sql": sql, "params": params,
               "vectorize": self.db.runtime.vectorize}
        for worker in range(self.partitions):
            self._request(worker, msg, record=("cq", msg, None))
        # detach the coordinator CQ's window operator from the silent
        # local twin: only the merge stage may emit
        target = cq._window_op if cq._window_op is not None else cq
        cq.stream.unsubscribe(target)
        pcq = _PartitionedCQ(cq, split.agg, route)
        route.cqs.append(pcq)
        self._pcqs[cq.name] = pcq

    def _drop_pcq(self, pcq: _PartitionedCQ) -> None:
        pcq.route.cqs.remove(pcq)
        self._pcqs.pop(pcq.name, None)
        msg = {"op": "stopcq", "name": pcq.name}
        for worker in range(self.partitions):
            try:
                self._request(worker, msg, record=("stopcq", msg, None))
            except (WorkerDiedError, PartitionError):
                pass

    # -- ingest -------------------------------------------------------------

    def ingest(self, name: str, rows, at: Optional[float] = None,
               watermark: Optional[float] = None,
               sender: Optional[str] = None,
               seq: Optional[int] = None) -> dict:
        """Apply one ingest batch; same counted-ack shape as
        :meth:`Database.ingest_batch`."""
        route = self._routes.get(name)
        if route is None:
            return self.db.ingest_batch(name, rows, at=at, sender=sender,
                                        seq=seq, watermark=watermark)
        rows = [rows] if rows and not isinstance(rows[0], (tuple, list)) \
            else list(rows)
        idempotent = sender is not None and seq is not None
        if idempotent:
            sender, seq = str(sender), int(seq)
            if self.db.admission.dedup.seen(name, sender, seq):
                counts = {"accepted": 0, "shed": 0, "dropped": 0,
                          "duplicate": len(rows)}
                if route.tracker is not None:
                    counts["watermark"] = route.current_watermark()
                return counts
        if self.faults is not None and self.faults.armed:
            # before any shard send: an injected router death refuses
            # the whole batch atomically — nothing partial to undo
            self.faults.check("partition.route", name)
        segments, counts = route.route_batch(rows, at, watermark)
        for worker, segs in segments.items():
            msg = {"op": "ingest", "stream": name, "segments": segs}
            ack = self._request(worker, msg,
                                record=("ingest", msg, route.max_time))
            self._note_ack(route, worker, ack)
        if idempotent:
            self.db.admission.dedup.record(name, sender, seq)
        route.completed_wm = route.current_watermark()
        # corrections first: the single engine emits a late row's
        # retract/correct pair during delivery, before the heartbeat
        # that closes newer windows
        self._process_corrections()
        self._drive(route)
        if route.batches % _PRUNE_EVERY == 0:
            self._prune_logs(route)
        counts["duplicate"] = 0
        if route.tracker is not None:
            counts["watermark"] = route.current_watermark()
        return counts

    def insert(self, name: str, values, at: Optional[float] = None) -> dict:
        return self.ingest(name, [values], at=at)

    def advance(self, event_time: float) -> None:
        """Heartbeat every stream — local ones directly, partitioned
        ones via watermark segments to every worker."""
        self.db.advance_streams(event_time)
        for route in self._routes.values():
            self._sync_route(route, event_time)

    def inject_watermark(self, name: str, watermark: float) -> float:
        route = self._routes.get(name)
        if route is None:
            return self.db.inject_watermark(name, watermark)
        self._sync_route(route, watermark)
        return route.current_watermark()

    def _sync_route(self, route: _StreamRoute, event_time: float) -> None:
        segments = route.sync_segments(event_time)
        for worker, segs in segments.items():
            msg = {"op": "ingest", "stream": route.name, "segments": segs}
            ack = self._request(worker, msg,
                                record=("ingest", msg, route.max_time))
            self._note_ack(route, worker, ack)
        route.completed_wm = route.current_watermark()
        self._process_corrections()
        self._drive(route)

    def flush(self) -> None:
        """End-of-input: every pending window out, merged."""
        self.db.flush_streams()
        msg = {"op": "flush"}
        for worker in range(self.partitions):
            self._request(worker, msg, record=("flush", msg, None))
        for route in self._routes.values():
            self._drive_flush(route)
        self._process_corrections()

    def _note_ack(self, route: _StreamRoute, worker: int,
                  ack: dict) -> None:
        wm = ack.get("watermark")
        if wm is not None and wm > NEG_INF:
            route.wm_merge.update(worker, wm)

    # -- merge stage --------------------------------------------------------

    def _drive(self, route: _StreamRoute) -> None:
        """Close every boundary the min-of-inputs worker watermark has
        passed, in grid order, one merged emission per boundary."""
        for pcq in list(route.cqs):
            if not pcq.cq._running:
                self._drop_pcq(pcq)
                continue
            gate = route.wm_merge.merged
            if pcq.heartbeat_wm < gate:
                # the single engine has not *heard* about this watermark
                # yet (no advance since the grid last rebased), so its
                # operator has these boundaries still open
                gate = pcq.heartbeat_wm
            while True:
                boundary = pcq.next_boundary()
                if boundary is None or boundary > gate:
                    break
                self._merge_boundary(pcq, boundary)

    def _drive_flush(self, route: _StreamRoute) -> None:
        # mirror of TimeWindowOperator.on_flush: close while a routed
        # row is still visible to the next window; sticky like the op's
        # _flushed flag
        for pcq in list(route.cqs):
            if not pcq.cq._running:
                self._drop_pcq(pcq)
                continue
            if pcq.flushed:
                continue
            pcq.flushed = True
            while True:
                boundary = pcq.next_boundary()
                if boundary is None \
                        or boundary - pcq.visible > route.max_time:
                    break
                self._merge_boundary(pcq, boundary)

    def _merge_boundary(self, pcq: _PartitionedCQ,
                        boundary: float) -> None:
        if self.faults is not None and self.faults.armed:
            # before emitting: an injected merge death leaves the
            # partials stored and the boundary pending — the next
            # drive retries and emits exactly once
            self.faults.check("partition.merge", f"{pcq.name}:{boundary}")
        entry = pcq.store.get(boundary, {})
        parts = [entry.get(w) for w in range(self.partitions)]
        total = sum(p[1] for p in parts if p is not None)
        pcq.index += 1
        pcq.merged.add(boundary)
        if total or pcq.cq.emit_empty:
            groups = pcq.agg.merge_partials(
                [p[0] if p is not None else {} for p in parts])
            self._emit_merged(pcq, groups, boundary)
        self._prune_store(pcq)

    def _emit_merged(self, pcq: _PartitionedCQ, groups: dict,
                     boundary: float) -> None:
        """Finalize merged partials and run the CQ's unchanged
        post-aggregate plan with the aggregate pinned to the result —
        sinks, stats, EXPLAIN counters and retract bookkeeping all
        behave exactly as in single-engine mode."""
        agg = pcq.agg
        agg.set_merged(agg.finalize(groups))
        try:
            pcq.cq._on_window([], boundary - pcq.visible, boundary)
        finally:
            agg.set_merged(None)

    def _absorb_partial(self, worker: int, frame: dict) -> None:
        pcq = self._pcqs.get(frame["cq"])
        if pcq is None:
            return
        boundary = frame["close"]
        if frame["kind"] == "final" and boundary in pcq.merged:
            return      # stale replay of an already-merged boundary
        entry = pcq.store.setdefault(boundary, {})
        entry[worker] = (frame["groups"], frame["rows"])
        if frame["kind"] == "correct":
            # fire even when the coordinator never merged this boundary:
            # the operator's late-row recompute is grid-independent
            # (any boundary <= watermark), so it corrects windows it
            # never emitted.  Every shard holding rows in that window
            # has reported them by now (as a final or its own
            # correction), so merging the stored partials is exact.
            self._corrections.append((pcq, boundary))

    def _process_corrections(self) -> None:
        while self._corrections:
            pcq, boundary = self._corrections.pop(0)
            if not pcq.cq._running:
                continue
            entry = pcq.store.get(boundary, {})
            parts = [entry.get(w) for w in range(self.partitions)]
            groups = pcq.agg.merge_partials(
                [p[0] if p is not None else {} for p in parts])
            agg = pcq.agg
            agg.set_merged(agg.finalize(groups))
            try:
                cq = pcq.cq
                ctx = cq._make_ctx(boundary - pcq.visible, boundary)
                out = list(cq._plan.execute(ctx))
                if out == cq._emitted.get(boundary):
                    # replayed (or no-op) correction: downstream state
                    # already matches — emitting a retract/correct pair
                    # here would un-converge idempotent consumers
                    continue
                cq._on_reopened([], boundary - pcq.visible, boundary)
            finally:
                agg.set_merged(None)

    def _prune_store(self, pcq: _PartitionedCQ) -> None:
        if not pcq.retract:
            for boundary in [b for b in pcq.store if b in pcq.merged]:
                del pcq.store[boundary]
            return
        # retract: merged partials stay recomputable for the lateness
        # bound, mirroring ContinuousQuery._remember_emitted's horizon
        horizon = (pcq.route.current_watermark() - pcq.retain_extra)
        if horizon == NEG_INF:
            return
        for boundary in [b for b in pcq.store
                         if b in pcq.merged and b < horizon]:
            del pcq.store[boundary]
            pcq.merged.discard(boundary)

    # -- worker lifecycle ---------------------------------------------------

    def _request(self, worker: int, msg: dict, record=None) -> dict:
        """Send one frame; on worker death, restart-with-replay and
        retry the frame once.  Partial frames riding the response are
        absorbed; the frame is logged only after its ack."""
        frames = None
        for attempt in (0, 1):
            handle = self._handles[worker]
            try:
                frames = handle.request(msg)
                break
            except WorkerDiedError:
                if attempt:
                    raise
                self._respawn(worker)
        ack = frames[-1]
        if ack.get("type") == "error":
            raise PartitionError(
                f"worker {worker}: {ack.get('error')}: "
                f"{ack.get('message')}")
        for frame in frames[:-1]:
            if frame.get("type") == "partial":
                self._absorb_partial(worker, frame)
        if record is not None:
            self._logs[worker].append(record)
        return ack

    def _respawn(self, worker: int) -> None:
        """Restart a dead worker and replay its acked frame log, then
        sync it to the current watermarks.  Replayed partials for
        already-merged boundaries are ignored; replayed corrections
        converge via compare-and-skip — the restart is invisible."""
        old = self._handles[worker]
        reap = getattr(old, "reap", None)
        if reap is not None:
            reap()
        self.restarts[worker] += 1
        handle = self._spawn(worker)
        self._handles[worker] = handle
        for kind, msg, _max_time in self._logs[worker]:
            frames = handle.request(msg)
            ack = frames[-1]
            if ack.get("type") == "error":
                raise PartitionError(
                    f"worker {worker} replay failed: {ack.get('error')}: "
                    f"{ack.get('message')}")
            for frame in frames[:-1]:
                if frame.get("type") == "partial":
                    self._absorb_partial(worker, frame)
            if kind == "ingest":
                self.replayed_batches[worker] += 1
                ack_wm = ack.get("watermark")
                stream = msg.get("stream")
                route = self._routes.get(stream)
                if route is not None and ack_wm is not None \
                        and ack_wm > NEG_INF:
                    route.wm_merge.update(worker, ack_wm)
        # fast-forward past pruned frames — only to the last *completed*
        # batch's watermark: the in-flight frame is about to be retried
        # and its rows must not land below the fresh worker's clock
        for route in self._routes.values():
            wm_now = route.completed_wm
            if wm_now == NEG_INF:
                continue
            sync = {"op": "ingest", "stream": route.name,
                    "segments": [("wm", wm_now)]}
            frames = handle.request(sync)
            for frame in frames[:-1]:
                if frame.get("type") == "partial":
                    self._absorb_partial(worker, frame)
            ack_wm = frames[-1].get("watermark")
            if ack_wm is not None and ack_wm > NEG_INF:
                route.wm_merge.update(worker, ack_wm)

    def _prune_logs(self, route: _StreamRoute) -> None:
        """Drop replayable ingest frames no unmerged window (nor any
        in-bound recomputation) can still need."""
        if route.cqs:
            horizon = min(pcq.prune_horizon() for pcq in route.cqs)
        else:
            horizon = route.current_watermark()
        if horizon == NEG_INF:
            return
        for worker in range(self.partitions):
            self._logs[worker] = [
                entry for entry in self._logs[worker]
                if not (entry[0] == "ingest"
                        and entry[1].get("stream") == route.name
                        and entry[2] < horizon)
            ]

    def kill_worker(self, worker: int) -> None:
        """Hard-kill one worker (tests and the smoke harness); the next
        frame it owes triggers restart-with-replay."""
        self._handles[worker].kill()

    def ping(self, worker: int) -> bool:
        """Health-check one worker, restarting it if dead."""
        try:
            self._request(worker, {"op": "ping"})
            return True
        except (WorkerDiedError, PartitionError):
            return False

    # -- faults -------------------------------------------------------------

    def arm_fault(self, crashpoint: str, worker: Optional[int] = None,
                  probability: float = 1.0, count: Optional[int] = 1,
                  after: int = 0, seed: int = 0) -> None:
        """Arm a crashpoint — coordinator-side (``partition.route``,
        ``partition.merge``) when ``worker`` is None, else shipped to
        that worker (``partition.worker_crash``)."""
        if worker is None:
            if self.faults is None:
                from repro.faults.injector import FaultInjector
                self.faults = FaultInjector(seed=seed)
            self.faults.arm(crashpoint, probability=probability,
                            count=count, after=after)
            return
        self._request(worker, {
            "op": "arm_fault", "crashpoint": crashpoint, "seed": seed,
            "probability": probability, "count": count, "after": after,
        })

    # -- observability ------------------------------------------------------

    def explain(self, name: str, analyze: bool = False) -> str:
        """The coordinator plan, plus per-partition operator stats for
        a partitioned CQ (``analyze`` shows each worker's live
        counters)."""
        cq = self.db._explain_target(name)
        text = cq.explain(analyze=analyze)
        if cq.name not in self._pcqs:
            return text
        pieces = [text]
        for worker in range(self.partitions):
            try:
                ack = self._request(worker, {
                    "op": "explain", "name": cq.name, "analyze": analyze})
                pieces.append(f"-- partition worker {worker} --\n"
                              + ack["explain"])
            except (WorkerDiedError, PartitionError) as exc:
                pieces.append(f"-- partition worker {worker} --\n"
                              f"(unavailable: {exc})")
        return "\n".join(pieces)

    def status_rows(self) -> List[tuple]:
        """One row per worker for the ``repro_partitions`` view."""
        rows = []
        routes = list(self._routes.values())
        for worker in range(self.partitions):
            handle = self._handles[worker]
            worker_wm = None
            lag = None
            for route in routes:
                acked = route.wm_merge.input_watermark(worker)
                if acked == NEG_INF:
                    continue
                worker_wm = acked if worker_wm is None \
                    else min(worker_wm, acked)
                current = route.current_watermark()
                if current > NEG_INF:
                    route_lag = max(0.0, current - acked)
                    lag = route_lag if lag is None else max(lag, route_lag)
            rows.append((
                worker,
                handle.pid,
                "up" if handle.alive else "down",
                handle.kind,
                len(routes),
                sum(route.rows_routed[worker] for route in routes),
                sum(route.batches for route in routes),
                sum(route.spill_rows[worker] for route in routes),
                worker_wm,
                lag,
                self.restarts[worker],
                self.replayed_batches[worker],
            ))
        return rows
