"""Partition-aware plan split.

A CQ runs partitioned when its plan factors into::

    coordinator:  final/merge stage  (everything above the aggregate)
    workers:      per-partition window aggregation (aggregate + below)

The aggregate operator is the split point — both ``BatchAggregate``
(vectorized) and ``HashAggregate`` (iterator) expose the mergeable
partial protocol (``accumulate`` / ``merge_partials`` / ``finalize`` /
``set_merged``), so each worker reduces its shard's window to partial
group states and the coordinator merges and finalizes them, then runs
the unchanged post-aggregate plan (HAVING, projection with
``cq_close``, ORDER BY, LIMIT) with the aggregate pinned to the merged
rows.  Nothing about the TruSQL surface changes ("One SQL to Rule Them
All": the split is invisible).

``partition_plan`` validates the shape and returns the split; it
raises :class:`PartitionError` with a reason for plans the partitioned
engine cannot run (joins, UNBOUNDED windows, multi-aggregate trees,
EMIT ON CHANGE / EVERY early emission).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PartitionError
from repro.exec import batch_ops
from repro.exec.operators import HashAggregate, RowSource
from repro.obs.service import walk_operators


@dataclass
class PartitionPlan:
    """The split of one CQ: its merge aggregate + source stream name."""

    cq: object          # the coordinator-side ContinuousQuery
    agg: object         # BatchAggregate | HashAggregate (merge point)
    stream_name: str    # the partitioned source stream


def _fail(cq, reason: str):
    raise PartitionError(
        f"CQ {getattr(cq, 'name', '?')!r} cannot run partitioned: "
        f"{reason} (see docs/PARTITION.md for the supported plan shape)")


def partition_plan(cq) -> PartitionPlan:
    """Validate ``cq`` for partitioned execution and locate the merge
    aggregate.  The same checks hold for the coordinator's plan and the
    workers' (they are built from the same SQL)."""
    from repro.streaming.cq import ContinuousQuery

    if not isinstance(cq, ContinuousQuery) or getattr(cq, "shared", False):
        _fail(cq, "only plain continuous queries are supported")
    if cq.is_join():
        _fail(cq, "two-stream joins are not yet partitionable")
    spec = cq.window_spec
    if spec is None or spec.kind != "time":
        _fail(cq, "a time window (VISIBLE/ADVANCE) is required")
    if math.isinf(spec.visible):
        _fail(cq, "UNBOUNDED windows do not partition")
    from repro.eventtime.operator import EMIT_ON_WATERMARK
    if cq.emit_mode not in (None, EMIT_ON_WATERMARK):
        _fail(cq, "EMIT ON CHANGE / EMIT EVERY early emission is "
                   "per-shard speculative state and is not supported")

    ops = [op for op, _d, _p in walk_operators(cq._plan.root)]
    if any(len(op._children()) > 1 for op in ops):
        _fail(cq, "the plan is not a single operator chain")
    aggs = [op for op in ops
            if isinstance(op, (batch_ops.BatchAggregate, HashAggregate))]
    if len(aggs) != 1:
        _fail(cq, f"exactly one aggregation is required, found {len(aggs)}")
    leaves = [op for op in ops if not op._children()]
    if len(leaves) != 1 or not isinstance(
            leaves[0], (RowSource, batch_ops.BatchSource)):
        _fail(cq, "the aggregate must read the stream's window relation "
                  "directly (no subqueries or table scans below it)")
    return PartitionPlan(cq=cq, agg=aggs[0], stream_name=cq.stream.name)
