"""One partition worker: the full engine on one shard.

A worker hosts a plain :class:`~repro.core.database.Database` and
applies coordinator frames in order: DDL, partial-mode CQ creation,
ingest segments (rows + watermark/clock syncs), flush.  CQs run in
**partial mode**: the window operator's sink is redirected so a window
close ships the shard's mergeable partial states (and, under the
retract policy, late corrections ship recomputed partials) instead of
finalized rows — the coordinator merges and finalizes.

The module doubles as the subprocess entry point::

    python -m repro.partition.worker <host> <port> <worker_id> <nonce>

which connects back to the coordinator's loopback listener,
authenticates with the argv nonce, and serves frames until the socket
closes or a ``stop`` frame arrives.  :class:`WorkerEngine` itself is
transport-free so the inline (in-process) transport used by tests runs
the identical code path.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.core.database import Database
from repro.errors import FaultInjected, PartitionError
from repro.faults.injector import FaultInjector
from repro.partition import wire
from repro.partition.planner import partition_plan
from repro.partition.state import normalize_partial


class WorkerEngine:
    """Frame handler for one worker (shared by inline and subprocess
    transports)."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.db = Database()
        self.faults: Optional[FaultInjector] = None
        self._cqs = {}      # cq name -> (cq, agg)
        self._out = []      # partial frames queued during apply

    # -- partial-mode CQ ----------------------------------------------------

    def create_cq(self, name: str, sql: str, params=None,
                  vectorize: bool = True) -> None:
        """Create the per-partition half of a CQ: parse the same SQL,
        plan it locally, then redirect the window operator's sink to
        ship partials instead of running the post-aggregate plan.

        ``vectorize`` mirrors the coordinator's executor choice so both
        sides aggregate with the same operator class and the partial
        state representations line up."""
        from repro.sql.parser import parse_statement
        from repro.sql import ast

        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise PartitionError(f"worker CQ {name!r}: not a SELECT")
        runtime = self.db.runtime
        saved = runtime.vectorize
        runtime.vectorize = vectorize
        try:
            cq = runtime.create_cq(statement, name=name, params=params)
        finally:
            runtime.vectorize = saved
        split = partition_plan(cq)
        agg = split.agg
        op = cq._window_op
        # a shard with no rows in a window must still report an (empty)
        # partial, or the coordinator could not tell "empty" from
        # "still open"; emission gating by the CQ's real emit_empty
        # happens once, at the merge stage
        op.emit_empty = True
        if cq.is_sliced():
            op.sink = self._make_sliced_ship(name, cq, agg)
        else:
            op.sink = self._make_rows_ship(name, cq, agg, "final")
        if cq.is_event_time():
            # late corrections recompute the shard's contribution; the
            # coordinator re-merges and emits the retract/correct pair
            op.on_correction = self._make_rows_ship(name, cq, agg,
                                                    "correct")
        self._cqs[name] = (cq, agg)

    def _make_sliced_ship(self, name, cq, agg):
        from repro.streaming.cq import _FailedSlice

        def ship(partials, open_time, close_time):
            for part in partials:
                if isinstance(part, _FailedSlice):
                    raise part.error
            groups = agg.merge_partials(partials)
            self._ship(name, "final", groups, open_time, close_time,
                       cq._window_op.last_window_input)
        return ship

    def _make_rows_ship(self, name, cq, agg, kind):
        def ship(rows, open_time, close_time):
            ctx = cq._make_ctx(open_time, close_time)
            cq._batches[0] = rows
            try:
                groups = agg.accumulate(ctx)
            finally:
                cq._batches[0] = []
            self._ship(name, kind, groups, open_time, close_time,
                       len(rows))
        return ship

    def _ship(self, name, kind, groups, open_time, close_time, rows):
        if self.faults is not None and self.faults.armed:
            self.faults.check("partition.worker_crash",
                              f"{name}:{close_time}")
        self._out.append({
            "type": "partial", "cq": name, "kind": kind,
            "open": open_time, "close": close_time,
            "groups": normalize_partial(groups), "rows": rows,
        })

    # -- frame dispatch -----------------------------------------------------

    def handle(self, msg: dict) -> list:
        """Apply one coordinator frame; returns response frames, the
        last of which is an ``ack`` (or a single ``error`` frame).  A
        ``partition.worker_crash`` fault is *not* folded into an error
        frame — it propagates, so the transport dies exactly as a real
        worker crash would."""
        self._out = []
        try:
            ack = self._dispatch(msg)
        except FaultInjected as exc:
            if getattr(exc, "crashpoint", "") == "partition.worker_crash":
                raise
            return [{"type": "error", "error": type(exc).__name__,
                     "message": str(exc)}]
        except Exception as exc:            # noqa: BLE001 — one frame,
            return [{"type": "error", "error": type(exc).__name__,
                     "message": str(exc)}]  # typed for the coordinator
        return self._out + [ack]

    def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ddl":
            self.db.execute(msg["sql"])
            return self._ack()
        if op == "cq":
            self.create_cq(msg["name"], msg["sql"], msg.get("params"),
                           msg.get("vectorize", True))
            return self._ack()
        if op == "stopcq":
            entry = self._cqs.pop(msg["name"], None)
            if entry is not None:
                self.db.runtime.stop_cq(entry[0])
            return self._ack()
        if op == "ingest":
            return self._ingest(msg)
        if op == "flush":
            self.db.flush_streams()
            return self._ack()
        if op == "explain":
            cq, _agg = self._cqs[msg["name"]]
            return self._ack(
                explain=cq.explain(analyze=msg.get("analyze", False)))
        if op == "arm_fault":
            if self.faults is None:
                self.faults = FaultInjector(seed=msg.get("seed", 0))
            self.faults.arm(msg["crashpoint"],
                            probability=msg.get("probability", 1.0),
                            count=msg.get("count"),
                            after=msg.get("after", 0))
            return self._ack()
        if op == "ping":
            return self._ack()
        if op == "stop":
            return self._ack(stopping=True)
        raise PartitionError(f"unknown worker op {op!r}")

    def _ingest(self, msg: dict) -> dict:
        stream = self.db.runtime.get_stream(msg["stream"])
        accepted = dropped = 0
        for segment in msg["segments"]:
            kind = segment[0]
            if kind == "rows":
                _kind, rows, at = segment
                counts = stream.insert_many_counted(rows, at=at)
                accepted += counts["accepted"]
                dropped += counts["dropped"]
            elif kind == "wm":
                stream.advance_to(segment[1])
            else:
                raise PartitionError(f"unknown segment kind {kind!r}")
        return self._ack(watermark=stream.watermark,
                         counts={"accepted": accepted, "dropped": dropped})

    def _ack(self, **extra) -> dict:
        ack = {"type": "ack", "worker": self.worker_id}
        ack.update(extra)
        return ack


def serve(host: str, port: int, worker_id: int, nonce: str) -> int:
    """Subprocess main loop: connect back, authenticate, serve frames."""
    import socket

    engine = WorkerEngine(worker_id)
    sock = socket.create_connection((host, port))
    try:
        wire.send_frame(sock, {"type": "hello", "worker": worker_id,
                               "nonce": nonce})
        while True:
            try:
                msg = wire.recv_frame(sock)
            except Exception:
                return 0        # coordinator went away; die quietly
            try:
                frames = engine.handle(msg)
            except FaultInjected:
                # injected worker crash: die like a SIGKILL would —
                # no error frame, no socket shutdown courtesy
                import os
                os._exit(23)
            for frame in frames:
                wire.send_frame(sock, frame)
            if frames and frames[-1].get("stopping"):
                return 0
    finally:
        sock.close()


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 4:
        print("usage: python -m repro.partition.worker "
              "<host> <port> <worker_id> <nonce>", file=sys.stderr)
        return 2
    host, port, worker_id, nonce = argv
    try:
        return serve(host, int(port), int(worker_id), nonce)
    except KeyboardInterrupt:
        return 0    # stray terminal signal; the coordinator owns us


if __name__ == "__main__":
    sys.exit(main())
