"""Cross-process form of aggregate partial state.

A partial is ``{group_key_tuple: [state, ...]}`` as produced by
``BatchAggregate.accumulate`` / ``partial_for_rows`` and
``HashAggregate.accumulate``.  The vectorized kernels materialize
states through ``.tolist()`` (native Python), but the row-wise
fallbacks and min/max over object lanes can leave **numpy scalars**
inside keys or states.  Those pickle fine, yet they would make merged
coordinator output differ in type from single-engine output (numpy
scalars compare equal but are not identical on the wire and render
differently), so every partial is normalized to native Python values
before transport.  ``normalize_partial`` is idempotent and cheap for
already-native state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

try:
    import numpy as _np
except ImportError:                          # pragma: no cover
    _np = None


def normalize_value(value):
    """Native-Python twin of ``value`` (numpy scalars via ``.item()``,
    containers recursively)."""
    if _np is not None and isinstance(value, _np.generic):
        return value.item()
    if isinstance(value, tuple):
        return tuple(normalize_value(v) for v in value)
    if isinstance(value, list):
        return [normalize_value(v) for v in value]
    return value


def normalize_partial(groups: Dict[Tuple, List]) -> Dict[Tuple, List]:
    """Partial-state dict with every key and state made native."""
    return {
        tuple(normalize_value(k) for k in key):
            [normalize_value(state) for state in states]
        for key, states in groups.items()
    }


def normalize_rows(rows) -> List[tuple]:
    """Native-Python twin of a list of output rows."""
    return [tuple(normalize_value(v) for v in row) for row in rows]
