"""Worker↔coordinator exchange framing.

Same length-prefixed framing as the replication/server protocol
(:mod:`repro.server.protocol`): a 4-byte big-endian length followed by
the body, with the same 32 MiB frame cap.  The body is a pickled dict
rather than JSON — partial aggregate states carry tuples and numpy
scalars, and JSON framing was measured (PR 3/X3) to both lose dtypes
and dominate small-batch cost.  Pickle is safe here because both ends
of the socket are the same trusted process tree (the coordinator spawns
the workers; nothing else can connect — the listener is loopback-bound
and workers authenticate with a nonce handed over argv).
"""

from __future__ import annotations

import pickle
import struct

from repro.errors import ProtocolError, WorkerDiedError

MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """One framed message: length prefix + pickled body."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"partition frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    message = pickle.loads(body)
    if not isinstance(message, dict):
        raise ProtocolError("partition frame body must be a dict")
    return message


def roundtrip(message: dict) -> dict:
    """Encode + decode one message (the in-process transport uses this
    so inline workers exercise the same serialization as subprocesses)."""
    data = encode_frame(message)
    (length,) = _LENGTH.unpack_from(data)
    return decode_body(data[_LENGTH.size:_LENGTH.size + length])


def send_frame(sock, message: dict) -> None:
    try:
        sock.sendall(encode_frame(message))
    except OSError as exc:
        raise WorkerDiedError(f"send failed: {exc}") from exc


def recv_frame(sock) -> dict:
    """Read exactly one frame; raises WorkerDiedError on EOF/socket
    errors (the peer process died)."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack_from(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming partition frame claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt")
    return decode_body(_recv_exact(sock, length))


def _recv_exact(sock, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise WorkerDiedError(f"recv failed: {exc}") from exc
        if not chunk:
            raise WorkerDiedError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
