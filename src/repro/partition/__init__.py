"""Partitioned parallel execution (ROADMAP item 2).

Hash-partition streams by a declared ``PARTITION BY`` key across N
worker processes, each running the full single-process engine on its
shard; a coordinator splits CQ plans into per-partition window
aggregation plus a merge/final stage, routes ingest by consistent hash,
merges per-partition watermarks as minimum-of-inputs, and restarts dead
workers with replay.  See docs/PARTITION.md.
"""

__all__ = ["HashRing", "PartitionedEngine", "partition_plan"]


def __getattr__(name):
    # lazy: ``python -m repro.partition.worker`` imports this package
    # first, and an eager coordinator import would load the worker
    # module twice (runpy's sys.modules warning)
    if name == "HashRing":
        from repro.partition.hashring import HashRing
        return HashRing
    if name == "PartitionedEngine":
        from repro.partition.coordinator import PartitionedEngine
        return PartitionedEngine
    if name == "partition_plan":
        from repro.partition.planner import partition_plan
        return partition_plan
    raise AttributeError(name)
