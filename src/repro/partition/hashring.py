"""Consistent hashing of partition keys onto workers.

The ring places ``replicas`` virtual nodes per worker on a 32-bit
circle; a key routes to the first virtual node at or clockwise from its
hash.  Keys hash through :func:`zlib.crc32` over their string form —
deterministic across processes and Python runs, unlike the builtin
``hash()`` which is salted per process (``PYTHONHASHSEED``) and would
break restart-with-replay and cross-run parity.

NULL keys never enter the ring: the router sends them down the **spill
lane**, a designated worker (worker 0 by convention) that absorbs rows
the key expression cannot place.
"""

from __future__ import annotations

import bisect
import zlib
from typing import List


def stable_hash(value) -> int:
    """Deterministic 32-bit hash of a key value (process-independent).

    Hashes the *string form* so ``5`` and ``np.int64(5)`` place
    identically; a str/int collision only co-locates two keys on one
    worker, which is harmless (grouping still uses exact values).
    """
    return zlib.crc32(str(value).encode("utf-8", "surrogatepass"))


class HashRing:
    """Consistent hash ring over ``n_workers`` workers."""

    def __init__(self, n_workers: int, replicas: int = 64,
                 spill_worker: int = 0):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if not 0 <= spill_worker < n_workers:
            raise ValueError("spill worker out of range")
        self.n_workers = n_workers
        self.replicas = replicas
        self.spill_worker = spill_worker
        points = []
        for worker in range(n_workers):
            for replica in range(replicas):
                points.append((stable_hash(f"w{worker}:{replica}"), worker))
        points.sort()
        self._hashes: List[int] = [h for h, _ in points]
        self._workers: List[int] = [w for _, w in points]

    def worker_for(self, key) -> int:
        """Worker owning ``key``; NULL keys go to the spill lane."""
        if key is None:
            return self.spill_worker
        point = stable_hash(key)
        i = bisect.bisect_left(self._hashes, point)
        if i == len(self._hashes):
            i = 0
        return self._workers[i]

    def __repr__(self):
        return (f"HashRing(workers={self.n_workers}, "
                f"replicas={self.replicas}, spill={self.spill_worker})")
