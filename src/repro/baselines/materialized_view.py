"""Batch-refresh materialized views — the paper's closest relative.

Section 5: "MVs ... are refreshed in batch mode and therefore may be out
of date at the time of the query ... when the update starts, the whole
batch is processed."  This baseline implements both refresh modes the
paper describes:

- ``full``   — recompute the view from scratch (the whole batch);
- ``incremental`` — process only base rows newer than the last refresh
  and fold them into the stored aggregates ("even if the DBMS is clever
  enough to process the changes incrementally, disk operations ...
  take significant time").

The view definition is restricted to the additive-aggregate shape that
dominates analytics (GROUP BY columns + count/sum/min/max), which is
also what channels+active tables compute — so experiment E5 compares
like for like: staleness and refresh cost versus a continuously
maintained active table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.database import Database
from repro.errors import ExecutionError
from repro.storage.disk import DiskStats

#: supported additive aggregates: (op, column) with column None for count(*)
AggSpec = Tuple[str, Optional[str]]


@dataclass
class RefreshCost:
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)
    rows_processed: int = 0


class BatchRefreshMV:
    """A materialized aggregate view over an append-only base table."""

    def __init__(self, db: Database, name: str, base_table: str,
                 group_columns: List[str], aggregates: List[AggSpec],
                 time_column: str, mode: str = "full"):
        if mode not in ("full", "incremental"):
            raise ExecutionError(f"unknown refresh mode {mode!r}")
        self.db = db
        self.name = name
        self.base_table = base_table
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self.time_column = time_column
        self.mode = mode
        self.last_refresh_time: Optional[float] = None  # event-time horizon
        self.refresh_count = 0
        self.total_cost = RefreshCost()
        self._create_view_table()

    # -- setup -------------------------------------------------------------

    def _agg_select_list(self) -> str:
        parts = []
        for op, column in self.aggregates:
            if column is None:
                parts.append(f"{op}(*)")
            else:
                parts.append(f"{op}({column})")
        return ", ".join(parts)

    def _view_columns(self) -> List[str]:
        names = list(self.group_columns)
        for i, (op, _column) in enumerate(self.aggregates):
            names.append(f"agg{i}_{op}")
        return names

    def _create_view_table(self) -> None:
        base = self.db.get_table(self.base_table)
        parts = []
        for column in self.group_columns:
            datatype = base.schema.column(column).datatype.sql_name()
            parts.append(f"{column} {datatype}")
        for i, (op, _column) in enumerate(self.aggregates):
            parts.append(f"agg{i}_{op} double precision")
        self.db.execute(f"CREATE TABLE {self.name} ({', '.join(parts)})")

    # -- refresh -----------------------------------------------------------

    def refresh(self, up_to_time: Optional[float] = None) -> RefreshCost:
        """One batch refresh (the timer fired).  Returns its cost."""
        before_io = self.db.io_snapshot()
        started = time.perf_counter()
        if self.mode == "full":
            rows = self._refresh_full(up_to_time)
        else:
            rows = self._refresh_incremental(up_to_time)
        self.db.storage.pool.flush()
        cost = RefreshCost(
            wall_seconds=time.perf_counter() - started,
            io=self.db.io_snapshot() - before_io,
            rows_processed=rows,
        )
        cost.sim_seconds = self.db.disk.elapsed_seconds(cost.io)
        self.refresh_count += 1
        self.total_cost.wall_seconds += cost.wall_seconds
        self.total_cost.sim_seconds += cost.sim_seconds
        self.total_cost.rows_processed += cost.rows_processed
        if up_to_time is not None:
            self.last_refresh_time = up_to_time
        return cost

    def _time_bound(self, up_to_time: Optional[float]) -> str:
        if up_to_time is None:
            return ""
        return f" WHERE {self.time_column} < {up_to_time!r}"

    def _refresh_full(self, up_to_time: Optional[float]) -> int:
        group_list = ", ".join(self.group_columns)
        sql = (
            f"SELECT {group_list}, {self._agg_select_list()} "
            f"FROM {self.base_table}{self._time_bound(up_to_time)} "
            f"GROUP BY {group_list}"
        )
        fresh = self.db.query(sql)
        self.db.execute(f"DELETE FROM {self.name}")
        self.db.insert_table(self.name, fresh.rows)
        count = self.db.query(
            f"SELECT count(*) FROM {self.base_table}"
            f"{self._time_bound(up_to_time)}"
        ).scalar()
        return count

    def _refresh_incremental(self, up_to_time: Optional[float]) -> int:
        group_list = ", ".join(self.group_columns)
        bounds = []
        if self.last_refresh_time is not None:
            bounds.append(f"{self.time_column} >= {self.last_refresh_time!r}")
        if up_to_time is not None:
            bounds.append(f"{self.time_column} < {up_to_time!r}")
        where = f" WHERE {' AND '.join(bounds)}" if bounds else ""
        delta = self.db.query(
            f"SELECT {group_list}, {self._agg_select_list()}, count(*) "
            f"FROM {self.base_table}{where} GROUP BY {group_list}"
        )
        if not delta.rows:
            return 0
        current = {tuple(r[:len(self.group_columns)]):
                   list(r[len(self.group_columns):])
                   for r in self.db.table_rows(self.name)}
        rows_processed = 0
        for row in delta.rows:
            key = tuple(row[:len(self.group_columns)])
            fresh = list(row[len(self.group_columns):-1])
            rows_processed += row[-1]
            if key in current:
                current[key] = [
                    _merge(op, old, new)
                    for (op, _c), old, new in zip(self.aggregates,
                                                  current[key], fresh)
                ]
            else:
                current[key] = fresh
        self.db.execute(f"DELETE FROM {self.name}")
        self.db.insert_table(
            self.name, [key + tuple(vals) for key, vals in current.items()])
        return rows_processed

    # -- querying -----------------------------------------------------------

    def query(self, where: str = "") -> list:
        clause = f" WHERE {where}" if where else ""
        return self.db.query(f"SELECT * FROM {self.name}{clause}").rows

    def staleness(self, now: float) -> float:
        """How far behind the view is (seconds of un-refreshed data)."""
        if self.last_refresh_time is None:
            return float("inf")
        return max(0.0, now - self.last_refresh_time)


def _merge(op: str, old, new):
    if old is None:
        return new
    if new is None:
        return old
    if op in ("count", "sum"):
        return old + new
    if op == "min":
        return min(old, new)
    if op == "max":
        return max(old, new)
    raise ExecutionError(f"aggregate {op!r} is not additive")
