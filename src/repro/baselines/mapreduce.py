"""A miniature MapReduce engine with honest I/O accounting.

Section 5: data-parallel batch systems "are inherently batch-oriented and
are much more resource intensive than the Jellybean processing that a
stream-relational system can provide".  The resource intensity comes from
materialisation: input is read from disk, map output is *written* to
shuffle partitions and *read back* by reducers, and reduce output is
written again.  This engine charges every one of those transfers against
a :class:`~repro.storage.disk.SimulatedDisk`, so experiment E6 can
compare bytes moved and simulated time against a CQ computing the same
rollup while the data flies by.

The API is deliberately Hadoop-shaped: a job is a mapper
``row -> [(key, value), ...]`` plus a reducer ``(key, values) -> [row]``,
with an optional combiner applied per map partition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.page import value_bytes


@dataclass
class MapReduceJob:
    """One job: mapper, reducer, optional combiner."""

    mapper: Callable          # row -> iterable of (key, value)
    reducer: Callable         # (key, [values]) -> iterable of rows
    combiner: Optional[Callable] = None  # (key, [values]) -> single value


@dataclass
class JobResult:
    rows: List[tuple]
    wall_seconds: float
    sim_seconds: float
    io: DiskStats
    bytes_read: int
    bytes_shuffled: int
    bytes_written: int


class MiniMapReduce:
    """An in-process engine that simulates the disk traffic of a cluster."""

    #: synthetic file ids on the simulated disk
    INPUT_FILE = 9001
    SHUFFLE_FILE = 9002
    OUTPUT_FILE = 9003

    def __init__(self, disk: Optional[SimulatedDisk] = None,
                 num_partitions: int = 4):
        self.disk = disk if disk is not None else SimulatedDisk()
        self.num_partitions = max(1, num_partitions)

    def run(self, job: MapReduceJob, input_rows: List[tuple]) -> JobResult:
        """Execute map → shuffle → reduce over ``input_rows``."""
        before = self.disk.snapshot()
        started = time.perf_counter()

        # phase 1: read input splits from "HDFS"
        bytes_read = self._charge_read(self.INPUT_FILE, input_rows)

        # phase 2: map (+ per-partition combine), write shuffle partitions
        partitions = [dict() for _ in range(self.num_partitions)]
        for row in input_rows:
            for key, value in job.mapper(row):
                bucket = partitions[hash(key) % self.num_partitions]
                bucket.setdefault(key, []).append(value)
        if job.combiner is not None:
            for bucket in partitions:
                for key in list(bucket):
                    bucket[key] = [job.combiner(key, bucket[key])]
        shuffle_rows = [
            (key, value)
            for bucket in partitions
            for key, values in bucket.items()
            for value in values
        ]
        bytes_shuffled = self._charge_write(self.SHUFFLE_FILE, shuffle_rows)

        # phase 3: reducers read their partitions back
        self._charge_read(self.SHUFFLE_FILE, shuffle_rows)
        output: List[tuple] = []
        for bucket in partitions:
            for key in sorted(bucket, key=repr):
                output.extend(job.reducer(key, bucket[key]))

        # phase 4: write the job output
        bytes_written = self._charge_write(self.OUTPUT_FILE, output)

        io = self.disk.snapshot() - before
        return JobResult(
            rows=output,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=self.disk.elapsed_seconds(io),
            io=io,
            bytes_read=bytes_read,
            bytes_shuffled=bytes_shuffled,
            bytes_written=bytes_written,
        )

    # -- disk charging ---------------------------------------------------------

    def _row_bytes(self, rows) -> int:
        total = 0
        for row in rows:
            if isinstance(row, tuple):
                total += sum(value_bytes(v) for v in row) + 8
            else:
                total += value_bytes(row) + 8
        return total

    def _pages(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.disk.page_size))

    def _charge_read(self, file_id: int, rows) -> int:
        nbytes = self._row_bytes(rows)
        for page in range(self._pages(nbytes)):
            self.disk.read_page(file_id, page)
        return nbytes

    def _charge_write(self, file_id: int, rows) -> int:
        nbytes = self._row_bytes(rows)
        for page in range(self._pages(nbytes)):
            self.disk.write_page(file_id, page)
        return nbytes


def rollup_job(key_fn: Callable, value_fn: Callable = None) -> MapReduceJob:
    """The classic count/sum rollup as a MapReduce job.

    ``key_fn(row)`` extracts the group key; ``value_fn(row)`` the value to
    sum (defaults to 1, i.e. a count).
    """
    def mapper(row):
        yield key_fn(row), (value_fn(row) if value_fn is not None else 1)

    def combiner(_key, values):
        return sum(values)

    def reducer(key, values):
        yield (key, sum(values))

    return MapReduceJob(mapper, reducer, combiner)
