"""The store-first-query-later baseline.

This is the architecture the paper's Section 1.3 indicts: "data is first
collected, then cleaned, then distributed and/or stored, then retrieved,
then analyzed".  Raw events are bulk-loaded into a heap table (paying the
write I/O), and every report re-reads them (paying the read I/O) —
against the same simulated disk the stream-relational engine uses, so
experiment E1's "20 minutes vs milliseconds" comparison is honest about
what each side touches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.database import Database
from repro.core.results import ResultSet
from repro.storage.disk import DiskStats


@dataclass
class PhaseCost:
    """Wall-clock and simulated cost of one pipeline phase."""

    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)


class BatchWarehouse:
    """A classic warehouse: load raw data, then run reports over it."""

    def __init__(self, database: Optional[Database] = None,
                 buffer_pages: int = 256):
        self.db = database if database is not None \
            else Database(buffer_pages=buffer_pages)
        self.load_cost = PhaseCost()
        self.rows_loaded = 0

    def create_raw_table(self, ddl: str) -> None:
        """Create the staging/raw-events table."""
        self.db.execute(ddl)

    def ingest(self, table: str, rows: List[tuple]) -> int:
        """Bulk-load raw events, flushing so the data is durably stored.

        This is the cost continuous analytics avoids: the batch pipeline
        must write everything before anything can be asked of it.
        """
        before = self.db.io_snapshot()
        started = time.perf_counter()
        count = self.db.insert_table(table, rows)
        # batch load ends with a flush: raw data must be on disk before
        # the reporting job is allowed to start
        self.db.storage.pool.flush()
        self.load_cost.wall_seconds += time.perf_counter() - started
        delta = self.db.io_snapshot() - before
        self.load_cost.io = _add(self.load_cost.io, delta)
        self.load_cost.sim_seconds += self.db.disk.elapsed_seconds(delta)
        self.rows_loaded += count
        return count

    def report(self, sql: str, cold_cache: bool = True):
        """Run one reporting query; returns (ResultSet, PhaseCost).

        ``cold_cache=True`` models the realistic case: the nightly report
        runs long after the load, nothing is resident.
        """
        if cold_cache:
            self.db.drop_caches()
        before = self.db.io_snapshot()
        started = time.perf_counter()
        result = self.db.query(sql)
        cost = PhaseCost(
            wall_seconds=time.perf_counter() - started,
            io=self.db.io_snapshot() - before,
        )
        cost.sim_seconds = self.db.disk.elapsed_seconds(cost.io)
        return result, cost

    def report_suite(self, queries: List[str],
                     cold_cache: bool = True) -> PhaseCost:
        """Run a suite of reports (the paper's customer ran "a suite of
        dozens of queries ... several times a day"); returns total cost."""
        total = PhaseCost()
        for sql in queries:
            _result, cost = self.report(sql, cold_cache)
            total.wall_seconds += cost.wall_seconds
            total.sim_seconds += cost.sim_seconds
            total.io = _add(total.io, cost.io)
        return total


def _add(a: DiskStats, b: DiskStats) -> DiskStats:
    return DiskStats(
        a.pages_read + b.pages_read,
        a.pages_written + b.pages_written,
        a.seeks + b.seeks,
        a.sequential_reads + b.sequential_reads,
        a.sequential_writes + b.sequential_writes,
    )
