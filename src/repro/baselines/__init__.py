"""Baseline architectures the paper argues against (Sections 1, 5).

Three comparators, each built on the same simulated-disk cost model as
the stream-relational engine so the comparisons are apples-to-apples:

- :class:`~repro.baselines.batch_warehouse.BatchWarehouse` —
  store-first-query-later: raw events are loaded into a table, reports
  re-scan them (Section 1.3's "decades-old legacy");
- :class:`~repro.baselines.materialized_view.BatchRefreshMV` —
  timer-driven materialized views, full or incremental refresh
  (Section 5's MV discussion);
- :class:`~repro.baselines.mapreduce.MiniMapReduce` — a miniature
  map/shuffle/reduce engine that materialises between stages
  (Section 5's Hadoop discussion).
"""

from repro.baselines.batch_warehouse import BatchWarehouse
from repro.baselines.materialized_view import BatchRefreshMV
from repro.baselines.mapreduce import MapReduceJob, MiniMapReduce, rollup_job

__all__ = [
    "BatchWarehouse",
    "BatchRefreshMV",
    "MiniMapReduce",
    "MapReduceJob",
    "rollup_job",
]
