"""Recursive-descent parser for TruSQL.

The grammar is standard SQL plus the paper's extensions: ``CREATE STREAM``
(Example 1), window clauses on stream references in FROM (Example 2),
``CREATE STREAM ... AS`` derived streams (Example 3), and ``CREATE
CHANNEL`` (Example 4).  Window clauses use angle brackets; the parser
recognises them contextually right after a FROM item, so ``<`` elsewhere
remains the comparison operator.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import EOF, IDENT, NUMBER, OP, STRING, tokenize
from repro.types.temporal import parse_interval

#: words that terminate an expression when used as clause openers
_CLAUSE_KEYWORDS = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
    "UNION", "EXCEPT", "INTERSECT", "ON", "JOIN", "INNER", "LEFT",
    "RIGHT", "FULL", "CROSS", "AS", "ASC", "DESC", "AND", "OR", "NOT",
    "WHEN", "THEN", "ELSE", "END", "INTO", "VALUES", "SET", "EMIT",
}

_TYPE_WORDS = {
    "INT", "INTEGER", "INT4", "INT8", "BIGINT", "SMALLINT", "SERIAL",
    "FLOAT", "FLOAT8", "REAL", "DOUBLE", "NUMERIC", "DECIMAL", "TEXT",
    "VARCHAR", "CHAR", "CHARACTER", "TIMESTAMP", "TIMESTAMPTZ", "DATE",
    "INTERVAL", "BOOL", "BOOLEAN",
}

_WINDOW_OPENERS = {"VISIBLE", "ADVANCE", "SLICES"}


class Parser:
    """Parses one token stream into a list of statements."""

    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0
        self.parameter_count = 0  # '?' placeholders seen so far

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0):
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self):
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def _check_op(self, text: str) -> bool:
        token = self._peek()
        return token.kind == OP and token.text == text

    def _check_word(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == IDENT and token.upper in words

    def _accept_op(self, text: str) -> bool:
        if self._check_op(text):
            self._advance()
            return True
        return False

    def _accept_word(self, *words: str) -> bool:
        if self._check_word(*words):
            self._advance()
            return True
        return False

    def _expect_op(self, text: str):
        if not self._accept_op(text):
            self._fail(f"expected {text!r}")

    def _expect_word(self, word: str):
        if not self._accept_word(word):
            self._fail(f"expected keyword {word}")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != IDENT:
            self._fail("expected identifier")
        self._advance()
        return token.text

    def _fail(self, message: str):
        token = self._peek()
        where = f" near {token.text!r}" if token.kind != EOF else " at end of input"
        raise ParseError(f"{message}{where} (line {token.line})",
                         token.position, token.line)

    # -- entry points -------------------------------------------------------

    def parse_script(self):
        """Parse zero or more ``;``-separated statements."""
        statements = []
        while True:
            while self._accept_op(";"):
                pass
            if self._peek().kind == EOF:
                return statements
            statements.append(self._statement())

    def parse_statement(self):
        """Parse exactly one statement (trailing ``;`` allowed)."""
        statement = self._statement()
        self._accept_op(";")
        if self._peek().kind != EOF:
            self._fail("unexpected trailing input")
        return statement

    # -- statements ---------------------------------------------------------

    def _statement(self):
        token = self._peek()
        if token.kind != IDENT:
            self._fail("expected a statement")
        word = token.upper
        if word == "SELECT":
            return self._select()
        if word == "EXPLAIN":
            self._advance()
            return self._explain()
        if word == "ANALYZE":
            self._advance()
            name = None
            if self._peek().kind == IDENT:
                name = self._expect_ident()
            return ast.Analyze(name)
        if word == "CREATE":
            return self._create()
        if word == "INSERT":
            return self._insert()
        if word == "UPDATE":
            return self._update()
        if word == "DELETE":
            return self._delete()
        if word == "TRUNCATE":
            self._advance()
            self._accept_word("TABLE")
            return ast.Truncate(self._expect_ident())
        if word == "DROP":
            return self._drop()
        if word in ("BEGIN", "START"):
            self._advance()
            self._accept_word("TRANSACTION", "WORK")
            return ast.Begin()
        if word == "COMMIT":
            self._advance()
            self._accept_word("TRANSACTION", "WORK")
            return ast.Commit()
        if word in ("ROLLBACK", "ABORT"):
            self._advance()
            self._accept_word("TRANSACTION", "WORK")
            return ast.Rollback()
        if word == "SET":
            return self._set_option()
        if word == "SHOW":
            self._advance()
            return ast.ShowOption(self._expect_ident().lower())
        self._fail(f"unknown statement {token.text!r}")

    def _explain(self) -> ast.Explain:
        """``EXPLAIN`` already consumed: ``[ANALYZE] (<select> | name)``."""
        analyze = self._accept_word("ANALYZE")
        if self._check_word("SELECT"):
            return ast.Explain(query=self._select(), analyze=analyze)
        return ast.Explain(analyze=analyze, target=self._expect_ident())

    def _set_option(self) -> ast.SetOption:
        """``SET name [=|TO] value`` where value is a number, a string,
        ON/OFF/TRUE/FALSE, or a bare word (taken as a string)."""
        self._expect_word("SET")
        name = self._expect_ident().lower()
        if not self._accept_op("="):
            self._accept_word("TO")
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            text = token.text
            value = float(text) if ("." in text or "e" in text.lower()) \
                else int(text)
        elif token.kind == STRING:
            self._advance()
            value = token.text
        elif token.kind == IDENT:
            self._advance()
            upper = token.upper
            if upper in ("ON", "TRUE"):
                value = True
            elif upper in ("OFF", "FALSE"):
                value = False
            else:
                value = token.text.lower()
        else:
            self._fail("expected a value for SET")
        return ast.SetOption(name, value)

    def _select(self):
        """A query expression: one SELECT or a chain of set operations,
        with trailing ORDER BY / LIMIT / OFFSET applying to the whole."""
        node = self._select_core()
        while self._check_word("UNION", "EXCEPT", "INTERSECT"):
            op = self._advance().upper.lower()
            all_rows = bool(self._accept_word("ALL"))
            right = self._select_core()
            node = ast.SetOp(op, all_rows, node, right)
        order_by, limit, offset = self._order_limit_offset()
        if order_by or limit is not None or offset is not None:
            node.order_by = order_by
            node.limit = limit
            node.offset = offset
        return node

    def _select_core(self) -> ast.Select:
        self._expect_word("SELECT")
        select = ast.Select()
        if self._accept_word("DISTINCT"):
            select.distinct = True
        else:
            self._accept_word("ALL")
        select.items = self._select_list()
        if self._accept_word("FROM"):
            select.from_clause = self._from_clause()
        if self._accept_word("WHERE"):
            select.where = self._expression()
        if self._accept_word("GROUP"):
            self._expect_word("BY")
            select.group_by.append(self._expression())
            while self._accept_op(","):
                select.group_by.append(self._expression())
        if self._accept_word("HAVING"):
            select.having = self._expression()
        if self._accept_word("EMIT"):
            select.emit = self._emit_clause()
        return select

    def _emit_clause(self) -> ast.EmitClause:
        """``EMIT (ON WATERMARK | ON CHANGE | EVERY '<dur>')
        [ALLOW LATENESS '<dur>' (DROP | DEAD LETTER | RETRACT)]``."""
        if self._accept_word("ON"):
            if self._accept_word("WATERMARK"):
                emit = ast.EmitClause("watermark")
            elif self._accept_word("CHANGE"):
                emit = ast.EmitClause("change")
            else:
                self._fail("expected WATERMARK or CHANGE after EMIT ON")
        elif self._accept_word("EVERY"):
            emit = ast.EmitClause("every", every=self._duration("EMIT EVERY"))
        else:
            self._fail("expected ON WATERMARK, ON CHANGE or EVERY "
                       "after EMIT")
        if self._accept_word("ALLOW"):
            self._expect_word("LATENESS")
            emit.lateness = self._duration("ALLOW LATENESS")
            if self._accept_word("DROP"):
                emit.late_policy = "drop"
            elif self._accept_word("DEAD"):
                self._expect_word("LETTER")
                emit.late_policy = "dead_letter"
            elif self._accept_word("RETRACT"):
                emit.late_policy = "retract"
            else:
                self._fail("expected DROP, DEAD LETTER or RETRACT "
                           "after ALLOW LATENESS")
        return emit

    def _duration(self, what: str) -> float:
        """An interval string (``'5 seconds'``) or a bare number of
        seconds."""
        token = self._peek()
        if token.kind == STRING:
            self._advance()
            return parse_interval(token.text)
        if token.kind == NUMBER:
            self._advance()
            return float(token.text)
        self._fail(f"expected a duration for {what}")

    def _order_limit_offset(self):
        order_by = []
        limit = offset = None
        if self._accept_word("ORDER"):
            self._expect_word("BY")
            order_by.append(self._order_item())
            while self._accept_op(","):
                order_by.append(self._order_item())
        if self._accept_word("LIMIT"):
            limit = self._int_literal()
        if self._accept_word("OFFSET"):
            offset = self._int_literal()
        return order_by, limit, offset

    def _int_literal(self) -> int:
        token = self._peek()
        if token.kind != NUMBER:
            self._fail("expected an integer")
        self._advance()
        try:
            return int(token.text)
        except ValueError:
            self._fail("expected an integer")

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        descending = False
        if self._accept_word("DESC"):
            descending = True
        else:
            self._accept_word("ASC")
        return ast.OrderItem(expr, descending)

    def _select_list(self):
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self._check_op("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self._expression()
        alias = None
        if self._accept_word("AS"):
            alias = self._expect_ident()
        elif (self._peek().kind == IDENT
              and self._peek().upper not in _CLAUSE_KEYWORDS):
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    # -- FROM clause --------------------------------------------------------

    def _from_clause(self):
        node = self._join_tree()
        while self._accept_op(","):
            right = self._join_tree()
            node = ast.Join("CROSS", node, right, None)
        return node

    def _join_tree(self):
        node = self._from_item()
        while True:
            kind = None
            if self._check_word("JOIN"):
                kind = "INNER"
                self._advance()
            elif self._check_word("INNER") and self._peek(1).upper == "JOIN":
                kind = "INNER"
                self._advance()
                self._advance()
            elif self._check_word("LEFT"):
                kind = "LEFT"
                self._advance()
                self._accept_word("OUTER")
                self._expect_word("JOIN")
            elif self._check_word("CROSS") and self._peek(1).upper == "JOIN":
                kind = "CROSS"
                self._advance()
                self._advance()
            else:
                return node
            right = self._from_item()
            condition = None
            if kind != "CROSS":
                self._expect_word("ON")
                condition = self._expression()
            node = ast.Join(kind, node, right, condition)

    def _from_item(self):
        if self._check_op("("):
            self._advance()
            query = self._select()
            self._expect_op(")")
            window = self._maybe_window_clause()
            alias = None
            if self._accept_word("AS"):
                alias = self._expect_ident()
            elif self._peek().kind == IDENT and self._peek().upper not in _CLAUSE_KEYWORDS:
                alias = self._advance().text
            if alias is None:
                self._fail("subquery in FROM requires an alias")
            return ast.SubqueryRef(query, alias, window)

        name = self._expect_ident()
        window = self._maybe_window_clause()
        alias = None
        if self._accept_word("AS"):
            alias = self._expect_ident()
        elif (self._peek().kind == IDENT
              and self._peek().upper not in _CLAUSE_KEYWORDS):
            alias = self._advance().text
        # the paper also allows the window after the alias
        if window is None:
            window = self._maybe_window_clause()
        return ast.TableRef(name, alias, window)

    def _maybe_window_clause(self):
        if not self._check_op("<"):
            return None
        nxt = self._peek(1)
        if nxt.kind != IDENT or nxt.upper not in _WINDOW_OPENERS:
            return None
        self._advance()  # consume '<'
        window = ast.WindowClause()
        if self._accept_word("SLICES"):
            window.slices_windows = self._int_literal()
            self._expect_word("WINDOWS")
            self._expect_op(">")
            return window
        if self._accept_word("VISIBLE"):
            self._window_extent(window, visible=True)
        if self._accept_word("ADVANCE"):
            self._window_extent(window, visible=False)
        self._expect_op(">")
        self._validate_window(window)
        return window

    def _window_extent(self, window: ast.WindowClause, visible: bool):
        token = self._peek()
        if visible and token.kind == IDENT and token.upper == "UNBOUNDED":
            # cumulative window: everything since stream start
            self._advance()
            window.visible = float("inf")
            return
        if token.kind == STRING:
            self._advance()
            seconds = parse_interval(token.text)
            if visible:
                window.visible = seconds
            else:
                window.advance = seconds
            return
        if token.kind == NUMBER:
            self._advance()
            if self._accept_word("ROWS", "ROW"):
                count = int(float(token.text))
                if visible:
                    window.visible_rows = count
                else:
                    window.advance_rows = count
                return
            seconds = float(token.text)
            if visible:
                window.visible = seconds
            else:
                window.advance = seconds
            return
        self._fail("expected a window extent (interval string or row count)")

    def _validate_window(self, window: ast.WindowClause):
        time_based = window.visible is not None or window.advance is not None
        row_based = (window.visible_rows is not None
                     or window.advance_rows is not None)
        if time_based and row_based:
            self._fail("window mixes time and row extents")
        if not time_based and not row_based:
            self._fail("empty window clause")
        # a lone VISIBLE or ADVANCE means a tumbling window
        if time_based:
            if window.visible is None:
                window.visible = window.advance
            if window.advance is None:
                if window.visible == float("inf"):
                    self._fail("UNBOUNDED window requires an ADVANCE")
                window.advance = window.visible
        else:
            if window.visible_rows is None:
                window.visible_rows = window.advance_rows
            if window.advance_rows is None:
                window.advance_rows = window.visible_rows

    # -- CREATE -------------------------------------------------------------

    def _create(self):
        self._expect_word("CREATE")
        if self._accept_word("TABLE"):
            if_not_exists = self._if_not_exists()
            name = self._expect_ident()
            if self._accept_word("AS"):
                return ast.CreateTableAs(name, self._select(), if_not_exists)
            columns = self._column_defs()
            return ast.CreateTable(columns, name, if_not_exists)
        if self._accept_word("STREAM"):
            if_not_exists = self._if_not_exists()
            name = self._expect_ident()
            if self._accept_word("AS"):
                query = self._select()
                return ast.CreateDerivedStream(name, query)
            columns = self._column_defs()
            watermark_bound = None
            if self._accept_word("WATERMARK"):
                watermark_bound = self._duration("WATERMARK")
            partition_by = None
            if self._accept_word("PARTITION"):
                self._expect_word("BY")
                partition_by = self._expect_ident()
            return ast.CreateStream(columns, name, if_not_exists,
                                    watermark_bound=watermark_bound,
                                    partition_by=partition_by)
        if self._accept_word("VIEW"):
            name = self._expect_ident()
            self._expect_word("AS")
            return ast.CreateView(name, self._select())
        if self._accept_word("CHANNEL"):
            name = self._expect_ident()
            self._expect_word("FROM")
            source = self._expect_ident()
            self._expect_word("INTO")
            target = self._expect_ident()
            if self._accept_word("APPEND"):
                mode = "append"
            elif self._accept_word("REPLACE"):
                mode = "replace"
            else:
                mode = "append"
            return ast.CreateChannel(name, source, target, mode)
        unique = self._accept_word("UNIQUE")
        if self._accept_word("INDEX"):
            name = self._expect_ident()
            self._expect_word("ON")
            table = self._expect_ident()
            self._expect_op("(")
            columns = [self._expect_ident()]
            while self._accept_op(","):
                columns.append(self._expect_ident())
            self._expect_op(")")
            return ast.CreateIndex(name, table, columns, unique)
        self._fail("expected TABLE, STREAM, VIEW, CHANNEL or INDEX")

    def _if_not_exists(self) -> bool:
        if self._check_word("IF"):
            self._advance()
            self._expect_word("NOT")
            self._expect_word("EXISTS")
            return True
        return False

    def _column_defs(self):
        self._expect_op("(")
        columns = [self._column_def()]
        while self._accept_op(","):
            columns.append(self._column_def())
        self._expect_op(")")
        return columns

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_name, length = self._type_name()
        column = ast.ColumnDef(name, type_name, length)
        while True:
            if self._check_word("NOT") and self._peek(1).upper == "NULL":
                self._advance()
                self._advance()
                column.not_null = True
            elif self._check_word("PRIMARY") and self._peek(1).upper == "KEY":
                self._advance()
                self._advance()
                column.primary_key = True
                column.not_null = True
            elif self._accept_word("CQTIME"):
                if self._accept_word("USER"):
                    column.cqtime = "user"
                elif self._accept_word("SYSTEM"):
                    column.cqtime = "system"
                else:
                    column.cqtime = "user"
            elif self._accept_word("NULL"):
                pass
            else:
                return column

    def _type_name(self):
        token = self._peek()
        if token.kind != IDENT or token.upper not in _TYPE_WORDS:
            self._fail("expected a type name")
        self._advance()
        name = token.text.lower()
        if token.upper == "DOUBLE" and self._accept_word("PRECISION"):
            name = "double precision"
        elif token.upper == "CHARACTER" and self._accept_word("VARYING"):
            name = "character varying"
        length = None
        if self._accept_op("("):
            length = self._int_literal()
            # numeric(10,2): scale is parsed and ignored (floats underneath)
            if self._accept_op(","):
                self._int_literal()
                length = None
            self._expect_op(")")
            if name in ("timestamp", "interval"):
                length = None
        return name, length

    # -- DML ----------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_word("INSERT")
        self._expect_word("INTO")
        table = self._expect_ident()
        columns = None
        if self._check_op("("):
            self._advance()
            columns = [self._expect_ident()]
            while self._accept_op(","):
                columns.append(self._expect_ident())
            self._expect_op(")")
        if self._accept_word("VALUES"):
            rows = [self._value_row()]
            while self._accept_op(","):
                rows.append(self._value_row())
            return ast.Insert(table, columns, rows=rows)
        if self._check_word("SELECT"):
            return ast.Insert(table, columns, query=self._select())
        self._fail("expected VALUES or SELECT")

    def _value_row(self):
        self._expect_op("(")
        row = [self._expression()]
        while self._accept_op(","):
            row.append(self._expression())
        self._expect_op(")")
        return row

    def _update(self) -> ast.Update:
        self._expect_word("UPDATE")
        table = self._expect_ident()
        self._expect_word("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_word("WHERE"):
            where = self._expression()
        return ast.Update(table, assignments, where)

    def _assignment(self):
        column = self._expect_ident()
        self._expect_op("=")
        return column, self._expression()

    def _delete(self) -> ast.Delete:
        self._expect_word("DELETE")
        self._expect_word("FROM")
        table = self._expect_ident()
        where = None
        if self._accept_word("WHERE"):
            where = self._expression()
        return ast.Delete(table, where)

    def _drop(self) -> ast.Drop:
        self._expect_word("DROP")
        for kind in ("TABLE", "STREAM", "VIEW", "CHANNEL", "INDEX"):
            if self._accept_word(kind):
                if_exists = False
                if self._check_word("IF"):
                    self._advance()
                    self._expect_word("EXISTS")
                    if_exists = True
                name = self._expect_ident()
                return ast.Drop(kind.lower(), name, if_exists)
        self._fail("expected TABLE, STREAM, VIEW, CHANNEL or INDEX")

    # -- expressions --------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept_word("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._accept_word("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self):
        if self._accept_word("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        while True:
            token = self._peek()
            if token.kind == OP and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
                self._advance()
                op = "<>" if token.text == "!=" else token.text
                left = ast.BinaryOp(op, left, self._additive())
                continue
            if self._check_word("IS"):
                self._advance()
                negated = self._accept_word("NOT")
                self._expect_word("NULL")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            if (self._check_word("NOT")
                    and self._peek(1).upper in ("LIKE", "ILIKE", "IN", "BETWEEN")):
                self._advance()
                negated = True
            if self._accept_word("LIKE"):
                left = ast.Like(left, self._additive(), negated, False)
                continue
            if self._accept_word("ILIKE"):
                left = ast.Like(left, self._additive(), negated, True)
                continue
            if self._accept_word("IN"):
                self._expect_op("(")
                if self._check_word("SELECT"):
                    query = self._select()
                    self._expect_op(")")
                    left = ast.InSubquery(left, query, negated)
                    continue
                items = [self._expression()]
                while self._accept_op(","):
                    items.append(self._expression())
                self._expect_op(")")
                left = ast.InList(left, items, negated)
                continue
            if self._accept_word("BETWEEN"):
                low = self._additive()
                self._expect_word("AND")
                high = self._additive()
                left = ast.Between(left, low, high, negated)
                continue
            if negated:
                self._fail("dangling NOT")
            return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self._check_op("+") or self._check_op("-") or self._check_op("||"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            if self._check_op("*") or self._check_op("/") or self._check_op("%"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self):
        if self._check_op("-"):
            self._advance()
            return ast.UnaryOp("-", self._unary())
        if self._check_op("+"):
            self._advance()
            return self._unary()
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while self._accept_op("::"):
            type_name, length = self._type_name()
            expr = ast.Cast(expr, type_name, length)
        return expr

    def _primary(self) -> ast.Expr:
        token = self._peek()

        if token.kind == NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == STRING:
            self._advance()
            return ast.Literal(token.text)
        if self._check_op("?"):
            self._advance()
            parameter = ast.Parameter(self.parameter_count)
            self.parameter_count += 1
            return parameter
        if self._check_op("("):
            self._advance()
            if self._check_word("SELECT"):
                query = self._select()
                self._expect_op(")")
                return ast.ScalarSubquery(query)
            expr = self._expression()
            self._expect_op(")")
            return expr

        if token.kind != IDENT:
            self._fail("expected an expression")

        word = token.upper
        if word == "EXISTS" and self._peek(1).kind == OP \
                and self._peek(1).text == "(":
            self._advance()
            self._expect_op("(")
            query = self._select()
            self._expect_op(")")
            return ast.Exists(query)
        if word == "NULL":
            self._advance()
            return ast.Literal(None)
        if word == "TRUE":
            self._advance()
            return ast.Literal(True)
        if word == "FALSE":
            self._advance()
            return ast.Literal(False)
        if word == "CASE":
            return self._case_expr()
        if word == "CAST":
            self._advance()
            self._expect_op("(")
            operand = self._expression()
            self._expect_word("AS")
            type_name, length = self._type_name()
            self._expect_op(")")
            return ast.Cast(operand, type_name, length)
        if word == "INTERVAL" and self._peek(1).kind == STRING:
            self._advance()
            literal = self._advance()
            return ast.Cast(ast.Literal(literal.text), "interval")
        if word == "TIMESTAMP" and self._peek(1).kind == STRING:
            self._advance()
            literal = self._advance()
            return ast.Cast(ast.Literal(literal.text), "timestamp")

        # identifier: column ref, qualified ref, star-qualified, or call
        self._advance()
        name = token.text
        if self._check_op("("):
            return self._function_call(name)
        if self._check_op("."):
            self._advance()
            if self._check_op("*"):
                self._advance()
                return ast.Star(table=name)
            column = self._expect_ident()
            if self._check_op("("):
                self._fail("qualified function calls are not supported")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _function_call(self, name: str) -> ast.FunctionCall:
        self._expect_op("(")
        distinct = False
        args = []
        if self._check_op("*"):
            self._advance()
            args.append(ast.Star())
        elif not self._check_op(")"):
            if self._accept_word("DISTINCT"):
                distinct = True
            args.append(self._expression())
            while self._accept_op(","):
                args.append(self._expression())
        self._expect_op(")")
        return ast.FunctionCall(name.lower(), args, distinct)

    def _case_expr(self) -> ast.CaseExpr:
        self._expect_word("CASE")
        operand = None
        if not self._check_word("WHEN"):
            operand = self._expression()
        branches = []
        while self._accept_word("WHEN"):
            when = self._expression()
            self._expect_word("THEN")
            then = self._expression()
            branches.append((when, then))
        if not branches:
            self._fail("CASE requires at least one WHEN branch")
        default = None
        if self._accept_word("ELSE"):
            default = self._expression()
        self._expect_word("END")
        return ast.CaseExpr(operand, branches, default)


def parse_statement(source: str):
    """Parse a single statement from ``source``."""
    return Parser(source).parse_statement()


def parse_script(source: str):
    """Parse a ``;``-separated script into a list of statements."""
    return Parser(source).parse_script()
