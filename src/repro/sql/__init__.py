"""The TruSQL front end: lexer, AST, and recursive-descent parser.

TruSQL is the paper's minimally-extended SQL dialect (Section 3): standard
SQL plus ``CREATE STREAM`` (with a ``CQTIME`` ordering column), window
clauses on stream references (``<VISIBLE '5 minutes' ADVANCE '1 minute'>``),
derived streams (``CREATE STREAM ... AS SELECT``), and channels
(``CREATE CHANNEL ... FROM ... INTO ... APPEND|REPLACE``).
"""

from repro.sql.lexer import Lexer, Token, tokenize
from repro.sql.parser import Parser, parse_script, parse_statement

__all__ = [
    "Lexer",
    "Token",
    "tokenize",
    "Parser",
    "parse_statement",
    "parse_script",
]
