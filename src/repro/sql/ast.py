"""Abstract syntax tree for TruSQL statements and expressions.

All nodes are plain dataclasses; the planner walks them.  Expression
nodes live alongside statement nodes because the dialect is small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    """Base class for AST nodes (statements and expressions)."""


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, or NULL."""

    value: object

    def __repr__(self):
        return f"Literal({self.value!r})"


@dataclass
class ColumnRef(Expr):
    """A possibly-qualified column reference (``t.col`` or ``col``)."""

    name: str
    table: Optional[str] = None

    def __repr__(self):
        if self.table:
            return f"ColumnRef({self.table}.{self.name})"
        return f"ColumnRef({self.name})"


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list or ``count(*)``."""

    table: Optional[str] = None


@dataclass
class Parameter(Expr):
    """A ``?`` placeholder, bound positionally at execution time."""

    index: int


@dataclass
class BinaryOp(Expr):
    """Arithmetic/comparison/logical binary operator."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """``NOT x``, ``-x``, ``+x``."""

    op: str
    operand: Expr


@dataclass
class IsNull(Expr):
    """``x IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    """``x [NOT] LIKE/ILIKE pattern``."""

    operand: Expr
    pattern: Expr
    negated: bool = False
    case_insensitive: bool = False


@dataclass
class InList(Expr):
    """``x [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: List[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass
class Between(Expr):
    """``x [NOT] BETWEEN lo AND hi``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class Cast(Expr):
    """``expr::type`` or ``CAST(expr AS type)``."""

    operand: Expr
    type_name: str
    length: Optional[int] = None


@dataclass
class FunctionCall(Expr):
    """A function or aggregate call; ``count(*)`` has a single Star arg."""

    name: str
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False


@dataclass
class CaseExpr(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expr]
    branches: List[Tuple[Expr, Expr]] = field(default_factory=list)
    default: Optional[Expr] = None


@dataclass
class InSubquery(Expr):
    """``x [NOT] IN (SELECT ...)`` — uncorrelated."""

    operand: Expr
    query: "Select"
    negated: bool = False


@dataclass
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)`` — uncorrelated."""

    query: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    """``(SELECT ...)`` used as a value — uncorrelated, must be 1x1."""

    query: "Select"


# ---------------------------------------------------------------------------
# FROM clause items and window specifications
# ---------------------------------------------------------------------------


@dataclass
class WindowClause(Node):
    """A TruSQL window clause attached to a stream reference.

    Exactly one of the three shapes is populated:

    - time window:  ``visible``/``advance`` in seconds,
    - row window:   ``visible_rows``/``advance_rows`` counts,
    - window-count: ``slices_windows`` (Example 5: ``<slices 1 windows>``).
    """

    visible: Optional[float] = None
    advance: Optional[float] = None
    visible_rows: Optional[int] = None
    advance_rows: Optional[int] = None
    slices_windows: Optional[int] = None

    def is_row_based(self) -> bool:
        return self.visible_rows is not None

    def is_window_count(self) -> bool:
        return self.slices_windows is not None


@dataclass
class TableRef(Node):
    """A named table or stream in FROM, with optional window and alias."""

    name: str
    alias: Optional[str] = None
    window: Optional[WindowClause] = None


@dataclass
class SubqueryRef(Node):
    """A derived table ``(SELECT ...) AS alias`` in FROM."""

    query: "Select"
    alias: str
    window: Optional[WindowClause] = None


@dataclass
class Join(Node):
    """A binary join in FROM; ``kind`` is INNER/LEFT/CROSS."""

    kind: str
    left: Node
    right: Node
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for executable statements."""


@dataclass
class SelectItem(Node):
    """One projection in the select list."""

    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False


@dataclass
class EmitClause(Node):
    """Event-time emission control on a continuous SELECT.

    ``EMIT ON WATERMARK`` (final results when the watermark passes the
    boundary), ``EMIT ON CHANGE`` (speculative early output on every
    change), or ``EMIT EVERY '<dur>'`` (periodic early output), each
    optionally followed by ``ALLOW LATENESS '<dur>'
    DROP | DEAD LETTER | RETRACT``.
    """

    mode: str                           # 'watermark' | 'change' | 'every'
    every: Optional[float] = None       # seconds, for EMIT EVERY
    lateness: Optional[float] = None    # ALLOW LATENESS bound, seconds
    late_policy: Optional[str] = None   # 'drop' | 'dead_letter' | 'retract'


@dataclass
class Select(Statement):
    """A SELECT statement (snapshot or continuous, decided at bind time)."""

    items: List[SelectItem] = field(default_factory=list)
    from_clause: Optional[Node] = None
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    emit: Optional[EmitClause] = None


@dataclass
class SetOp(Statement):
    """``left UNION [ALL] / EXCEPT / INTERSECT right``.

    ORDER BY / LIMIT / OFFSET written after the compound apply to the
    whole result and live here, not on the branches.
    """

    op: str                      # 'union' | 'except' | 'intersect'
    all: bool
    left: Statement              # Select or nested SetOp
    right: Statement
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass
class ColumnDef(Node):
    """A column in CREATE TABLE / CREATE STREAM."""

    name: str
    type_name: str
    length: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False
    cqtime: Optional[str] = None  # 'user' | 'system' (streams only)


@dataclass
class CreateTable(Statement):
    columns: List[ColumnDef]
    name: str
    if_not_exists: bool = False


@dataclass
class CreateTableAs(Statement):
    """``CREATE TABLE name AS SELECT ...`` (schema inferred, rows copied)."""

    name: str
    query: Statement  # Select or SetOp
    if_not_exists: bool = False


@dataclass
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <select | name>`` — the physical plan as text.

    ``query`` holds an inline statement; ``target`` names a running CQ,
    derived stream or channel instead.  With ``analyze`` the rendering
    carries live per-operator row counts and timings: accumulated since
    CQ start for a named target, measured by one instrumented execution
    for an inline snapshot query.
    """

    query: Optional[Statement] = None
    analyze: bool = False
    target: Optional[str] = None


@dataclass
class Analyze(Statement):
    """``ANALYZE [table]`` — collect planner statistics."""

    name: Optional[str] = None


@dataclass
class CreateStream(Statement):
    """``CREATE STREAM name (cols) [WATERMARK '<dur>'] [PARTITION BY col]``
    — a raw (base) stream; a watermark bound declares it event-time:
    rows may arrive out of order and windows assign/close by the CQTIME
    column's event time under a bounded-out-of-orderness watermark.  A
    partition key declares how a partitioned engine shards the stream's
    rows across workers (ignored by the single-process engine)."""

    columns: List[ColumnDef]
    name: str
    if_not_exists: bool = False
    watermark_bound: Optional[float] = None  # seconds
    partition_by: Optional[str] = None       # column name


@dataclass
class CreateDerivedStream(Statement):
    """``CREATE STREAM name AS SELECT ...`` — an always-on CQ (Example 3)."""

    name: str
    query: Select


@dataclass
class CreateView(Statement):
    """``CREATE VIEW name AS SELECT ...`` (streaming view if CQ inside)."""

    name: str
    query: Select


@dataclass
class CreateChannel(Statement):
    """``CREATE CHANNEL name FROM stream INTO table APPEND|REPLACE``."""

    name: str
    source: str
    target: str
    mode: str  # 'append' | 'replace'


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: List[str]
    unique: bool = False


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]] = None
    rows: Optional[List[List[Expr]]] = None
    query: Optional[Select] = None


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass
class Truncate(Statement):
    """``TRUNCATE [TABLE] name`` — delete all visible rows."""

    table: str


@dataclass
class Drop(Statement):
    kind: str  # 'table' | 'stream' | 'view' | 'channel' | 'index'
    name: str
    if_exists: bool = False


@dataclass
class Begin(Statement):
    pass


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass


@dataclass
class SetOption(Statement):
    """``SET name [=|TO] value`` — session option (supervision,
    backpressure, fault injection and supervisor policy knobs)."""

    name: str
    value: object


@dataclass
class ShowOption(Statement):
    """``SHOW name`` / ``SHOW ALL`` — read session option(s) back."""

    name: str  # lower-cased; 'all' lists everything


def walk_expr(expr):
    """Yield ``expr`` and all its sub-expressions, depth-first."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, IsNull):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Like):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.pattern)
    elif isinstance(expr, InList):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, Between):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, Cast):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, CaseExpr):
        if expr.operand is not None:
            yield from walk_expr(expr.operand)
        for when, then in expr.branches:
            yield from walk_expr(when)
            yield from walk_expr(then)
        if expr.default is not None:
            yield from walk_expr(expr.default)
    elif isinstance(expr, InSubquery):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, (Exists, ScalarSubquery)):
        # the inner query is a separate scope; don't descend into it
        pass
    else:
        # executor-defined nodes (e.g. PlannedSubquery) expose their
        # outer-scope operand, if any, via .operand
        operand = getattr(expr, "operand", None)
        if isinstance(operand, Expr):
            yield from walk_expr(operand)
