"""Tokenizer for TruSQL.

Produces a flat list of :class:`Token` objects.  Keywords are not
distinguished from identifiers here — the parser decides contextually,
which keeps words like ``visible`` usable as column names outside window
clauses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

# token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
EOF = "EOF"

#: multi-character operators, longest first so the scanner is greedy
_MULTI_OPS = ("::", "<>", "!=", "<=", ">=", "||")
_SINGLE_OPS = set("+-*/%(),.;=<>[]?")


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is IDENT/NUMBER/STRING/OP/EOF."""

    kind: str
    text: str
    position: int
    line: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


class Lexer:
    """Single-pass scanner over SQL source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1

    def tokens(self):
        """Scan the whole input; always ends with one EOF token."""
        out = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                out.append(Token(EOF, "", self.pos, self.line))
                return out
            out.append(self._next_token())

    def _skip_whitespace_and_comments(self):
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch.isspace():
                self.pos += 1
            elif src.startswith("--", self.pos):
                end = src.find("\n", self.pos)
                self.pos = len(src) if end < 0 else end
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise LexerError("unterminated block comment", self.pos, self.line)
                self.line += src.count("\n", self.pos, end)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        src = self.source
        start = self.pos
        ch = src[start]

        if ch == "'":
            return self._string(start)
        if ch == '"':
            return self._quoted_identifier(start)
        if ch.isdigit() or (ch == "." and start + 1 < len(src) and src[start + 1].isdigit()):
            return self._number(start)
        if ch.isalpha() or ch == "_":
            return self._identifier(start)

        for op in _MULTI_OPS:
            if src.startswith(op, start):
                self.pos = start + len(op)
                return Token(OP, op, start, self.line)
        if ch in _SINGLE_OPS:
            self.pos = start + 1
            return Token(OP, ch, start, self.line)
        raise LexerError(f"unexpected character {ch!r}", start, self.line)

    def _string(self, start: int) -> Token:
        src = self.source
        i = start + 1
        chunks = []
        while i < len(src):
            ch = src[i]
            if ch == "'":
                # '' is an escaped quote inside a string literal
                if i + 1 < len(src) and src[i + 1] == "'":
                    chunks.append("'")
                    i += 2
                    continue
                self.pos = i + 1
                return Token(STRING, "".join(chunks), start, self.line)
            if ch == "\n":
                self.line += 1
            chunks.append(ch)
            i += 1
        raise LexerError("unterminated string literal", start, self.line)

    def _quoted_identifier(self, start: int) -> Token:
        src = self.source
        end = src.find('"', start + 1)
        if end < 0:
            raise LexerError("unterminated quoted identifier", start, self.line)
        self.pos = end + 1
        return Token(IDENT, src[start + 1:end], start, self.line)

    def _number(self, start: int) -> Token:
        src = self.source
        i = start
        seen_dot = False
        seen_exp = False
        while i < len(src):
            ch = src[i]
            if ch.isdigit():
                i += 1
            elif ch == "." and not seen_dot and not seen_exp:
                # a trailing ".." would be range syntax; we don't support it
                seen_dot = True
                i += 1
            elif ch in "eE" and not seen_exp and i > start:
                nxt = src[i + 1] if i + 1 < len(src) else ""
                if nxt.isdigit() or (nxt in "+-" and i + 2 < len(src) and src[i + 2].isdigit()):
                    seen_exp = True
                    i += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        self.pos = i
        return Token(NUMBER, src[start:i], start, self.line)

    def _identifier(self, start: int) -> Token:
        src = self.source
        i = start
        while i < len(src) and (src[i].isalnum() or src[i] == "_"):
            i += 1
        self.pos = i
        return Token(IDENT, src[start:i], start, self.line)


def tokenize(source: str):
    """Convenience wrapper returning the token list for ``source``."""
    return Lexer(source).tokens()
