"""Rendering ASTs back to TruSQL text.

Used for debugging, for the CLI's ``\\d`` output, and — most importantly
— for the property-based parser test: for any AST we can generate,
``parse(render(ast)) == ast`` must hold.  The renderer parenthesizes
operators conservatively; redundant parentheses do not change the parsed
tree.
"""

from __future__ import annotations

from repro.sql import ast


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def render_expr(expr: ast.Expr) -> str:
    """Render one expression."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            return _quote_string(value)
        return repr(value)
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return f"{expr.table}.{expr.name}"
        return expr.name
    if isinstance(expr, ast.Parameter):
        return "?"
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        return (f"({render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)})")
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {render_expr(expr.operand)})"
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        negation = " NOT" if expr.negated else ""
        return f"({render_expr(expr.operand)} IS{negation} NULL)"
    if isinstance(expr, ast.Like):
        keyword = "ILIKE" if expr.case_insensitive else "LIKE"
        negation = "NOT " if expr.negated else ""
        return (f"({render_expr(expr.operand)} {negation}{keyword} "
                f"{render_expr(expr.pattern)})")
    if isinstance(expr, ast.InList):
        negation = "NOT " if expr.negated else ""
        items = ", ".join(render_expr(i) for i in expr.items)
        return f"({render_expr(expr.operand)} {negation}IN ({items}))"
    if isinstance(expr, ast.Between):
        negation = "NOT " if expr.negated else ""
        return (f"({render_expr(expr.operand)} {negation}BETWEEN "
                f"{render_expr(expr.low)} AND {render_expr(expr.high)})")
    if isinstance(expr, ast.Cast):
        spelled = expr.type_name
        if expr.length is not None:
            spelled += f"({expr.length})"
        return f"CAST({render_expr(expr.operand)} AS {spelled})"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(render_expr(a) for a in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expr(expr.operand))
        for when, then in expr.branches:
            parts.append(f"WHEN {render_expr(when)} THEN {render_expr(then)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.InSubquery):
        negation = "NOT " if expr.negated else ""
        return (f"({render_expr(expr.operand)} {negation}IN "
                f"({render_statement(expr.query)}))")
    if isinstance(expr, ast.Exists):
        rendered = f"EXISTS ({render_statement(expr.query)})"
        return f"(NOT {rendered})" if expr.negated else rendered
    if isinstance(expr, ast.ScalarSubquery):
        return f"({render_statement(expr.query)})"
    raise ValueError(f"cannot render expression {expr!r}")


def _render_window(window: ast.WindowClause) -> str:
    if window.is_window_count():
        return f"<SLICES {window.slices_windows} WINDOWS>"
    if window.is_row_based():
        return (f"<VISIBLE {window.visible_rows} ROWS "
                f"ADVANCE {window.advance_rows} ROWS>")
    if window.visible == float("inf"):
        visible = "UNBOUNDED"
    else:
        visible = _quote_string(f"{window.visible} seconds")
    return (f"<VISIBLE {visible} "
            f"ADVANCE {_quote_string(f'{window.advance} seconds')}>")


def _render_from(node) -> str:
    if isinstance(node, ast.TableRef):
        out = node.name
        if node.window is not None:
            out += f" {_render_window(node.window)}"
        if node.alias:
            out += f" AS {node.alias}"
        return out
    if isinstance(node, ast.SubqueryRef):
        out = f"({render_statement(node.query)})"
        if node.window is not None:
            out += f" {_render_window(node.window)}"
        return f"{out} AS {node.alias}"
    if isinstance(node, ast.Join):
        left = _render_from(node.left)
        right = _render_from(node.right)
        if node.kind == "CROSS" and node.condition is None:
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if node.kind == "LEFT" else "JOIN"
        return f"{left} {keyword} {right} ON {render_expr(node.condition)}"
    raise ValueError(f"cannot render FROM item {node!r}")


def _render_tail(node) -> str:
    parts = []
    if node.order_by:
        keys = []
        for order in node.order_by:
            key = render_expr(order.expr)
            if order.descending:
                key += " DESC"
            keys.append(key)
        parts.append("ORDER BY " + ", ".join(keys))
    if node.limit is not None:
        parts.append(f"LIMIT {node.limit}")
    if node.offset is not None:
        parts.append(f"OFFSET {node.offset}")
    return " ".join(parts)


def render_statement(node) -> str:
    """Render a SELECT or set-operation tree."""
    if isinstance(node, ast.SetOp):
        keyword = node.op.upper() + (" ALL" if node.all else "")
        out = (f"{render_statement(node.left)} {keyword} "
               f"{render_statement(node.right)}")
        tail = _render_tail(node)
        return f"{out} {tail}" if tail else out

    if isinstance(node, ast.Explain):
        head = "EXPLAIN ANALYZE" if node.analyze else "EXPLAIN"
        if node.target is not None:
            return f"{head} {node.target}"
        return f"{head} {render_statement(node.query)}"

    if not isinstance(node, ast.Select):
        raise ValueError(f"cannot render statement {node!r}")

    parts = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    items = []
    for item in node.items:
        rendered = render_expr(item.expr)
        if item.alias:
            rendered += f" AS {item.alias}"
        items.append(rendered)
    parts.append(", ".join(items))
    if node.from_clause is not None:
        parts.append("FROM " + _render_from(node.from_clause))
    if node.where is not None:
        parts.append("WHERE " + render_expr(node.where))
    if node.group_by:
        parts.append("GROUP BY "
                     + ", ".join(render_expr(g) for g in node.group_by))
    if node.having is not None:
        parts.append("HAVING " + render_expr(node.having))
    if getattr(node, "emit", None) is not None:
        parts.append(_render_emit(node.emit))
    tail = _render_tail(node)
    if tail:
        parts.append(tail)
    return " ".join(parts)


def _render_emit(emit: ast.EmitClause) -> str:
    if emit.mode == "every":
        out = f"EMIT EVERY {_quote_string(f'{emit.every} seconds')}"
    else:
        out = f"EMIT ON {emit.mode.upper()}"
    if emit.lateness is not None:
        policy = {"drop": "DROP", "dead_letter": "DEAD LETTER",
                  "retract": "RETRACT"}.get(emit.late_policy, "DROP")
        out += (f" ALLOW LATENESS "
                f"{_quote_string(f'{emit.lateness} seconds')} {policy}")
    return out
