"""The Database facade: a full stream-relational database in one object.

This is the paper's thesis made concrete (Sections 2.3, 3): one system,
one SQL dialect, tables and streams side by side.  ``execute`` parses a
TruSQL statement and dispatches:

- DDL creates tables, streams, derived streams, views, channels, indexes;
- DML runs transactionally under MVCC;
- a SELECT over tables runs once (snapshot query);
- a SELECT touching a stream becomes a continuous query and returns a
  :class:`~repro.core.results.Subscription`.

Typical use::

    db = Database()
    db.execute("CREATE STREAM url_stream (url varchar(1024), "
               "atime timestamp CQTIME USER, client_ip varchar(50))")
    sub = db.execute("SELECT url, count(*) c FROM url_stream "
                     "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url")
    db.insert_stream("url_stream", [("/home", 30.0, "10.0.0.1")])
    db.advance_streams(120.0)
    for window in sub.poll():
        print(window.close_time, window.rows)
"""

from __future__ import annotations

from typing import List, Optional

from repro.catalog import catalog as cat
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, Schema
from repro.errors import (
    ExecutionError,
    PlanningError,
    StreamingError,
    TransactionError,
    UnknownObjectError,
)
from repro.exec.expressions import RowLayout, compile_expr
from repro.exec.planner import PlanContext, Planner
from repro.sql import ast, parse_script, parse_statement
from repro.storage.manager import StorageManager
from repro.streaming.runtime import StreamingRuntime
from repro.streaming.views import StreamingView
from repro.txn.mvcc import TransactionManager
from repro.types.datatypes import TimestampType, type_from_name
from repro.core.results import ResultSet, Subscription


class Database:
    """An embedded stream-relational database instance."""

    def __init__(self, buffer_pages: int = 256, share_slices: bool = False,
                 emit_empty_windows: bool = True,
                 stream_retention: Optional[float] = None,
                 disorder_policy: str = "raise",
                 stream_slack: float = 0.0,
                 supervised: bool = False,
                 fault_injector=None,
                 backpressure_policy: Optional[str] = None,
                 high_water_mark: Optional[int] = None,
                 wal_path: Optional[str] = None,
                 wal_segment_bytes: Optional[int] = None,
                 wal_archive_dir: Optional[str] = None,
                 replication_logging: bool = True,
                 observability: bool = True,
                 trace_sample_rate: float = 0.01,
                 vectorize: bool = True,
                 clock=None):
        from repro.admission import AdmissionController
        from repro.clock import SYSTEM_CLOCK
        from repro.obs import Observability
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.faults = fault_injector
        self.obs = Observability(enabled=observability,
                                 sample_rate=trace_sample_rate)
        self.storage = StorageManager(buffer_pages, faults=fault_injector,
                                      wal_path=wal_path,
                                      wal_segment_bytes=wal_segment_bytes,
                                      wal_archive_dir=wal_archive_dir)
        self.obs.bind_storage(self.storage)
        self.txn_manager = TransactionManager(self.storage.wal)
        self.catalog = Catalog()
        self.runtime = StreamingRuntime(
            self.catalog, self.txn_manager,
            share_slices=share_slices,
            emit_empty_windows=emit_empty_windows,
            default_retention=stream_retention,
            disorder_policy=disorder_policy,
            default_slack=stream_slack,
            backpressure_policy=backpressure_policy,
            high_water_mark=high_water_mark,
            vectorize=vectorize,
        )
        self.runtime.faults = fault_injector
        self.runtime.obs = self.obs if self.obs.enabled else None
        self.supervisor = None
        if supervised:
            self.enable_supervision()
        self._session_txn = None
        self._current_params = None
        # True while boot recovery / standby apply replays logged DDL:
        # suppresses re-logging so the log stays duplicate-free
        self._recovering = False
        # set by the network server (repro.server): a zero-argument
        # callable returning one row per live client connection, exposed
        # through the repro_connections system view
        self.connection_registry = None
        # set by the replication layer: a zero-argument callable
        # returning rows for the repro_replication_status system view
        self.replication_registry = None
        # set by the partitioned engine (repro.partition): a zero-argument
        # callable returning rows for the repro_partitions system view
        self.partition_registry = None
        # admission control: tenants, quotas, and the ingest dedup index.
        # Created disabled; SET admission = on (or the server) turns the
        # rate/quota/tier checks on, dedup works regardless.
        self.admission = AdmissionController(clock=self.clock,
                                             faults=fault_injector)
        # WAL lifecycle: compaction, online backup, scrubbing.  Always
        # created; a no-op (or typed error) unless the WAL is segmented.
        from repro.storage.lifecycle import WalLifecycle
        self.wal_lifecycle = WalLifecycle(self)
        self.obs.bind_wal_lifecycle(self.wal_lifecycle)
        from repro.core.system_views import install_system_views
        install_system_views(self)
        self.obs.bind_admission(self.admission)
        if wal_path is not None and replication_logging:
            # file-backed logs carry streaming DDL and the stream tail,
            # not just table rows — log those from the start.  A standby
            # passes replication_logging=False: its WAL must stay a
            # verbatim prefix of the primary's, so nothing may append to
            # it locally until promotion.
            self.enable_replication_logging()

    def enable_replication_logging(self) -> None:
        """Start logging stream traffic and streaming DDL into the WAL.

        Base-stream tuples and heartbeats become ``stream_insert`` /
        ``stream_advance`` records, and every CREATE/DROP of a streaming
        object becomes a ``ddl_obj`` record — the extra record kinds a
        WAL-shipping standby (or a crash-consistent restart) needs to
        mirror runtime state, not just durable tables.  Idempotent.
        """
        if self.runtime.stream_logger is not None:
            return
        wal = self.storage.wal

        def logger(name, kind, row, event_time):
            # rows applied inside an idempotent ingest batch carry that
            # batch's (sender, seq) as their rid, so recovery can discard
            # them when the batch's dedup marker never became durable
            wal.append(0, "stream_" + kind, name,
                       rid=self.runtime.current_batch,
                       after=row, payload=event_time)

        self.runtime.stream_logger = logger
        from repro.streaming.supervisor import DEAD_LETTER_STREAM
        for name, stream in self.catalog.relations(cat.STREAM):
            if name != DEAD_LETTER_STREAM:
                stream.replication_log = logger
        self._backfill_ddl_log()

    def _backfill_ddl_log(self) -> None:
        """Log ``ddl_obj`` records for objects that predate logging.

        Recovery applies creates idempotently, so re-logging an object
        that is already on record is harmless; what matters is that no
        live object is *missing* from the log when a standby attaches.
        """
        from repro.core.dump import _column_spec
        from repro.sql.render import render_statement
        from repro.streaming.supervisor import DEAD_LETTER_STREAM
        for name, stream in self.catalog.relations(cat.STREAM):
            if name == DEAD_LETTER_STREAM:
                continue
            self._log_ddl({
                "op": "create", "kind": "stream", "name": name,
                "columns": [_column_spec(c) for c in stream.schema],
                "retention": stream.retention, "slack": stream.slack,
                "disorder_policy": stream.disorder_policy,
                "watermark_bound": stream.watermark_bound,
                "partition_by": stream.partition_by,
            })
        for name, view in self.catalog.relations(cat.VIEW):
            self._log_ddl({
                "op": "create", "kind": "view", "name": name,
                "query": render_statement(view.query),
            })
        for name, derived in self.catalog.relations(cat.DERIVED_STREAM):
            self._log_ddl({
                "op": "create", "kind": "derived_stream", "name": name,
                "query": render_statement(derived.cq.select),
            })
        for name, channel in self.catalog.channels():
            self._log_ddl({
                "op": "create", "kind": "channel", "name": name,
                "source": channel.source.name,
                "target": channel.table.name, "mode": channel.mode,
            })
        for name, index in self.catalog.indexes():
            self._log_ddl({
                "op": "create", "kind": "index", "name": name,
                "table": index.table_name,
                "columns": list(index.column_names),
                "unique": index.unique,
            })

    def _log_ddl(self, payload: dict) -> None:
        """Durably log one streaming-DDL action as a ``ddl_obj`` record.

        A no-op until :meth:`enable_replication_logging` turns the extra
        record kinds on — a plain embedded database keeps the seed WAL
        byte-for-byte (and the seeded chaos fault schedule with it).
        """
        if self._recovering or self.runtime.stream_logger is None:
            return
        self.storage.wal.append(0, "ddl_obj", payload.get("name"),
                                payload=payload)
        self.storage.wal.flush()

    def enable_supervision(self, policy=None):
        """Switch the runtime to supervised mode: every CQ, channel and
        base stream — existing and future — gets per-window error
        isolation, dead-letter quarantine, channel-write retry and
        automatic restart.  Idempotent; returns the supervisor."""
        if self.supervisor is not None:
            return self.supervisor
        from repro.streaming.supervisor import (
            CQSupervisor,
            DEAD_LETTER_STREAM,
        )
        supervisor = CQSupervisor(self.runtime, wal=self.storage.wal,
                                  policy=policy)
        self.supervisor = supervisor
        self.runtime.supervisor = supervisor
        supervisor.dead_letter_stream()  # queryable from the start
        for name, stream in self.catalog.relations(cat.STREAM):
            if name != DEAD_LETTER_STREAM:
                supervisor.adopt_stream(stream)
        for cq in self.runtime.cqs().values():
            supervisor.adopt_cq(cq)
        for _name, channel in self.catalog.channels():
            supervisor.adopt_channel(channel)
        return supervisor

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str, params=None):
        """Run one TruSQL statement.

        ``params`` binds ``?`` placeholders positionally::

            db.execute("SELECT * FROM t WHERE a = ? AND b < ?", (1, 9.5))

        Returns a :class:`ResultSet` for snapshot queries, DML and DDL,
        or a :class:`Subscription` for continuous queries (placeholder
        values stay bound for the CQ's lifetime).
        """
        statement = parse_statement(sql)
        previous = self._current_params
        self._current_params = tuple(params) if params is not None else None
        try:
            return self._dispatch(statement)
        finally:
            self._current_params = previous

    def execute_script(self, sql: str) -> list:
        """Run a ``;``-separated script; returns one result per statement."""
        return [self._dispatch(s) for s in parse_script(sql)]

    def query(self, sql: str, params=None) -> ResultSet:
        """Run a statement that must be a snapshot query."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise PlanningError(
                "query() got a continuous query; use subscribe()")
        return result

    def subscribe(self, sql: str, params=None) -> Subscription:
        """Run a statement that must be a continuous query."""
        result = self.execute(sql, params)
        if not isinstance(result, Subscription):
            raise PlanningError(
                "subscribe() got a snapshot statement; use query()")
        return result

    def _dispatch(self, statement: ast.Statement):
        if isinstance(statement, (ast.Select, ast.SetOp)):
            return self._execute_select(statement)
        if isinstance(statement, ast.Explain):
            return self._explain_statement(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateStream):
            return self._create_stream(statement)
        if isinstance(statement, ast.CreateDerivedStream):
            return self._create_derived_stream(statement)
        if isinstance(statement, ast.CreateView):
            return self._create_view(statement)
        if isinstance(statement, ast.CreateChannel):
            return self._create_channel(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._create_index(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.Truncate):
            table = self.catalog.get_relation(statement.table, cat.TABLE)
            return _count(self._with_txn(table.truncate))
        if isinstance(statement, ast.Analyze):
            return self._analyze(statement)
        if isinstance(statement, ast.Drop):
            return self._drop(statement)
        if isinstance(statement, ast.Begin):
            return self._begin()
        if isinstance(statement, ast.Commit):
            return self._commit()
        if isinstance(statement, ast.Rollback):
            return self._rollback()
        if isinstance(statement, ast.SetOption):
            return self._set_option(statement)
        if isinstance(statement, ast.ShowOption):
            return self._show_option(statement)
        raise ExecutionError(f"unhandled statement {statement!r}")

    # ------------------------------------------------------------------
    # session options (SET / SHOW)
    # ------------------------------------------------------------------

    _POLICY_OPTIONS = ("channel_retry_limit", "backoff_base",
                       "backoff_factor", "restart_limit", "max_restarts",
                       "dead_letter_capacity")

    def _set_option(self, statement: ast.SetOption) -> ResultSet:
        name, value = statement.name, statement.value
        if name == "supervision":
            if value is True:
                self.enable_supervision()
            elif self.supervisor is not None:
                raise ExecutionError(
                    "supervision cannot be disabled once enabled")
            return _ok()
        if name == "backpressure_policy":
            from repro.streaming.streams import BACKPRESSURE_POLICIES
            if value is False:
                value = None
            elif value not in BACKPRESSURE_POLICIES:
                raise ExecutionError(
                    f"unknown backpressure policy {value!r}; choose one "
                    f"of {', '.join(BACKPRESSURE_POLICIES)}"
                )
            self.runtime.backpressure_policy = value
            for _name, stream in self.catalog.relations(cat.STREAM):
                stream.backpressure_policy = value
            return _ok()
        if name == "high_water_mark":
            if value is False:
                value = None
            elif not isinstance(value, int) or value <= 0:
                raise ExecutionError(
                    "high_water_mark must be a positive integer (or OFF)")
            self.runtime.high_water_mark = value
            for _name, stream in self.catalog.relations(cat.STREAM):
                stream.high_water_mark = value
            return _ok()
        if name == "fault_seed":
            if not isinstance(value, int):
                raise ExecutionError("fault_seed must be an integer")
            from repro.faults import FaultInjector
            self.set_fault_injector(FaultInjector(seed=value))
            return _ok()
        if name == "slow_window_ms":
            if value is False:
                self.obs.slow_window_ms = None
            elif isinstance(value, (int, float)) \
                    and not isinstance(value, bool) and value >= 0:
                self.obs.slow_window_ms = float(value)
            else:
                raise ExecutionError(
                    "slow_window_ms takes a non-negative number (or OFF)")
            return _ok()
        if name == "trace_sample_rate":
            if value is False:
                value = 0.0
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)) \
                    or not 0.0 <= value <= 1.0:
                raise ExecutionError(
                    "trace_sample_rate must be a number between 0 and 1")
            self.obs.tracer.set_rate(float(value))
            self.obs.retune_streams()
            return _ok()
        if name == "admission":
            if not isinstance(value, bool):
                raise ExecutionError("admission takes on/off")
            self.admission.enabled = value
            return _ok()
        if name in ("tenant_rate_limit", "tenant_burst",
                    "tenant_row_quota", "tenant_byte_quota",
                    "tenant_weight"):
            if value is False:
                value = None
            elif isinstance(value, bool) \
                    or not isinstance(value, (int, float)) or value <= 0:
                raise ExecutionError(
                    f"{name} takes a positive number (or OFF)")
            key = name[len("tenant_"):]
            if key == "weight" and value is None:
                value = 1.0
            try:
                self.admission.set_default(key, value)
            except ValueError as exc:
                raise ExecutionError(str(exc))
            return _ok()
        if name in ("admission_soft_depth", "admission_hard_depth"):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ExecutionError(f"{name} must be a positive integer")
            attr = "soft_depth" if name == "admission_soft_depth" \
                else "hard_depth"
            setattr(self.admission, attr, value)
            return _ok()
        if name == "dedup_window":
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ExecutionError(
                    "dedup_window must be a positive integer")
            self.admission.dedup.window = value
            return _ok()
        if name in self._POLICY_OPTIONS:
            if self.supervisor is None:
                raise ExecutionError(
                    f"option {name!r} needs supervision; "
                    "run SET supervision = on first"
                )
            if not isinstance(value, (int, float)) or value is True:
                raise ExecutionError(f"option {name!r} takes a number")
            current = getattr(self.supervisor.policy, name)
            setattr(self.supervisor.policy, name, type(current)(value))
            return _ok()
        raise ExecutionError(f"unknown session option {name!r}")

    def _show_option(self, statement: ast.ShowOption) -> ResultSet:
        options = {
            "supervision": self.supervisor is not None,
            "backpressure_policy": self.runtime.backpressure_policy,
            "high_water_mark": self.runtime.high_water_mark,
            "fault_seed": getattr(self.faults, "seed", None),
            "observability": self.obs.enabled,
            "slow_window_ms": self.obs.slow_window_ms,
            "trace_sample_rate": self.obs.tracer.sample_rate,
            "admission": self.admission.enabled,
            "tenant_rate_limit": self.admission.defaults["rate_limit"],
            "tenant_burst": self.admission.defaults["burst"],
            "tenant_row_quota": self.admission.defaults["row_quota"],
            "tenant_byte_quota": self.admission.defaults["byte_quota"],
            "tenant_weight": self.admission.defaults["weight"],
            "admission_soft_depth": self.admission.soft_depth,
            "admission_hard_depth": self.admission.hard_depth,
            "dedup_window": self.admission.dedup.window,
        }
        if self.supervisor is not None:
            for key in self._POLICY_OPTIONS:
                options[key] = getattr(self.supervisor.policy, key)
        if statement.name == "all":
            rows = [(key, _option_text(value))
                    for key, value in sorted(options.items())]
            return ResultSet(["name", "setting"], rows)
        if statement.name not in options:
            raise ExecutionError(
                f"unknown session option {statement.name!r}")
        return ResultSet([statement.name],
                         [(_option_text(options[statement.name]),)])

    def set_fault_injector(self, injector) -> None:
        """Install (or replace) the fault injector on every layer:
        storage, WAL, buffer pool, and all current streams, CQs and
        channels.  Future objects inherit it through the runtime."""
        self.faults = injector
        self.storage.disk.faults = injector
        self.storage.pool.faults = injector
        self.storage.wal.faults = injector
        self.runtime.faults = injector
        for _name, stream in self.catalog.relations(cat.STREAM):
            stream.faults = injector
        for cq in self.runtime.cqs().values():
            cq.faults = injector
        for _name, channel in self.catalog.channels():
            channel.faults = injector

    # ------------------------------------------------------------------
    # SELECT: snapshot vs continuous
    # ------------------------------------------------------------------

    def _execute_select(self, select):
        if self._query_references_streams(select):
            if isinstance(select, ast.SetOp):
                raise PlanningError(
                    "set operations over streams are not supported; stage "
                    "the branches through derived streams instead"
                )
            cq = self.runtime.create_cq(select, params=self._current_params)
            return Subscription(cq, self.runtime)
        plan = self._plan_snapshot(select)
        rows = list(plan.execute(self._execution_ctx()))
        return ResultSet(plan.column_names, rows)

    def _execution_ctx(self) -> dict:
        ctx = {}
        if self._current_params is not None:
            ctx["params"] = self._current_params
        return ctx

    def _plan_snapshot(self, select):
        ctx = PlanContext(
            self.catalog,
            self.txn_manager,
            snapshot_fn=self._statement_snapshot_fn(),
            own_txid_fn=self._own_txid_fn(),
        )
        return Planner(ctx).plan_query(select)

    def explain(self, sql: str) -> str:
        """The physical plan of a snapshot query (or of a CQ's per-window
        plan) as indented text.  ``sql`` may be a bare SELECT or a full
        ``EXPLAIN [ANALYZE] ...`` statement."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Explain):
            if not isinstance(statement, (ast.Select, ast.SetOp)):
                raise PlanningError(
                    "EXPLAIN supports SELECT statements only")
            statement = ast.Explain(query=statement)
        result = self._explain_statement(statement)
        return "\n".join(row[0] for row in result.rows)

    def _explain_statement(self, statement: ast.Explain) -> ResultSet:
        analyze = statement.analyze
        if statement.target is not None:
            text = self._explain_target(statement.target).explain(
                analyze=analyze)
        elif self._query_references_streams(statement.query):
            # prefer a running CQ with the same plan so ANALYZE shows
            # live numbers; otherwise plan a transient one
            cq = self._find_running_cq(statement.query) \
                or self.runtime._make_cq(statement.query)
            text = cq.explain(analyze=analyze)
        else:
            plan = self._plan_snapshot(statement.query)
            if analyze:
                plan.instrument()
                list(plan.execute(self._execution_ctx()))
            text = plan.explain(analyze=analyze)
        return ResultSet(["QUERY PLAN"], [(line,) for line in text.split("\n")])

    def _explain_target(self, name: str):
        """Resolve an ``EXPLAIN <name>`` target to a running CQ: by CQ
        name, derived-stream name, or channel name (via its source)."""
        cqs = self.runtime.cqs()
        for key in (name, f"derived:{name}"):
            if key in cqs:
                return cqs[key]
        channel = dict(self.catalog.channels()).get(name)
        if channel is not None:
            key = f"derived:{channel.source.name}"
            if key in cqs:
                return cqs[key]
        raise ExecutionError(
            f"no running CQ, derived stream or channel named {name!r}")

    def _find_running_cq(self, query):
        for cq in self.runtime.cqs().values():
            if getattr(cq, "select", None) == query:
                return cq
        return None

    def _query_references_streams(self, node) -> bool:
        if isinstance(node, ast.SetOp):
            return (self._query_references_streams(node.left)
                    or self._query_references_streams(node.right))
        if isinstance(node, ast.Select):
            return self._references_streams(node.from_clause)
        return False

    def _references_streams(self, node) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.TableRef):
            kind = self.catalog.relation_kind(node.name)
            if kind in (cat.STREAM, cat.DERIVED_STREAM):
                return True
            if kind == cat.VIEW:
                view = self.catalog.get_relation(node.name)
                return bool(getattr(view, "references_streams", False))
            return False
        if isinstance(node, ast.SubqueryRef):
            return self._query_references_streams(node.query)
        if isinstance(node, ast.Join):
            return (self._references_streams(node.left)
                    or self._references_streams(node.right))
        return False

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> ResultSet:
        if statement.if_not_exists and self.catalog.has_relation(statement.name):
            return _ok()
        schema = _schema_from_defs(statement.columns, for_stream=False)
        self._register_table(statement.name, schema)
        return _ok()

    def _register_table(self, name: str, schema: Schema):
        """Create a table and log its DDL durably, so
        :meth:`recover_from_wal` can rebuild the schema after a crash."""
        table = self.storage.create_table(name, schema)
        self.catalog.add_relation(name, cat.TABLE, table)
        if not self._recovering:
            from repro.core.dump import _column_spec
            self.storage.wal.append(
                0, "ddl", name,
                payload=[_column_spec(c) for c in schema])
            self.storage.wal.flush()
        return table

    def _create_stream(self, statement: ast.CreateStream) -> ResultSet:
        if statement.if_not_exists and self.catalog.has_relation(statement.name):
            return _ok()
        schema = _schema_from_defs(statement.columns, for_stream=True)
        stream = self.runtime.create_base_stream(
            statement.name, schema,
            watermark_bound=statement.watermark_bound,
            partition_by=statement.partition_by)
        from repro.core.dump import _column_spec
        self._log_ddl({
            "op": "create", "kind": "stream", "name": statement.name,
            "columns": [_column_spec(c) for c in schema],
            "retention": stream.retention, "slack": stream.slack,
            "disorder_policy": stream.disorder_policy,
            "watermark_bound": stream.watermark_bound,
            "partition_by": stream.partition_by,
        })
        return _ok()

    def _create_derived_stream(
            self, statement: ast.CreateDerivedStream) -> ResultSet:
        from repro.sql.render import render_statement
        self.runtime.create_derived_stream(statement.name, statement.query)
        self._log_ddl({
            "op": "create", "kind": "derived_stream",
            "name": statement.name,
            "query": render_statement(statement.query),
        })
        return _ok()

    def _create_view(self, statement: ast.CreateView) -> ResultSet:
        references = self._query_references_streams(statement.query)
        view = StreamingView(statement.name, statement.query, references)
        self.catalog.add_relation(statement.name, cat.VIEW, view)
        from repro.sql.render import render_statement
        self._log_ddl({
            "op": "create", "kind": "view", "name": statement.name,
            "query": render_statement(statement.query),
        })
        return _ok()

    def _create_table_as(self, statement: ast.CreateTableAs) -> ResultSet:
        """CREATE TABLE ... AS SELECT: infer the schema, copy the rows."""
        if statement.if_not_exists and \
                self.catalog.has_relation(statement.name):
            return _ok()
        if self._query_references_streams(statement.query):
            raise PlanningError(
                "CREATE TABLE AS over a stream is continuous by nature; "
                "use CREATE STREAM ... AS plus a channel instead"
            )
        plan = self._plan_snapshot(statement.query)
        rows = list(plan.execute({}))
        table = self._register_table(statement.name, plan.output_schema())
        self._with_txn(lambda txn: _insert_all(table, txn, rows))
        return _count(len(rows))

    def _create_channel(self, statement: ast.CreateChannel) -> ResultSet:
        table = self.catalog.get_relation(statement.target, cat.TABLE)
        self.runtime.create_channel(
            statement.name, statement.source, table, statement.mode)
        self._log_ddl({
            "op": "create", "kind": "channel", "name": statement.name,
            "source": statement.source, "target": statement.target,
            "mode": statement.mode,
        })
        return _ok()

    def _create_index(self, statement: ast.CreateIndex) -> ResultSet:
        table = self.catalog.get_relation(statement.table, cat.TABLE)
        index = self.storage.create_index(
            statement.name, table, statement.columns, statement.unique)
        self.catalog.add_index(statement.name, index)
        self._log_ddl({
            "op": "create", "kind": "index", "name": statement.name,
            "table": statement.table, "columns": list(statement.columns),
            "unique": statement.unique,
        })
        return _ok()

    def _analyze(self, statement: ast.Analyze) -> ResultSet:
        """Collect planner statistics for one table or all tables."""
        if statement.name is not None:
            tables = [(statement.name,
                       self.catalog.get_relation(statement.name, cat.TABLE))]
        else:
            tables = list(self.catalog.relations(cat.TABLE))
        snapshot = self.txn_manager.take_snapshot()
        rows = []
        for name, table in tables:
            stats = table.analyze(snapshot, self.txn_manager)
            rows.append((name, stats.row_count, stats.page_count))
        return ResultSet(["table_name", "row_count", "pages"], rows)

    def _drop(self, statement: ast.Drop) -> ResultSet:
        name, kind = statement.name, statement.kind
        try:
            if kind == "table":
                for channel_name, channel in list(self.catalog.channels()):
                    if channel.table.name.lower() == name.lower():
                        raise ExecutionError(
                            f"channel {channel_name!r} writes into "
                            f"{name!r}; drop the channel first"
                        )
                table = self.catalog.drop_relation(name, cat.TABLE)
                self.storage.drop_table_storage(table)
            elif kind == "stream":
                self.runtime.drop_stream(name)
                self.admission.dedup.forget_stream(name)
            elif kind == "view":
                self.catalog.drop_relation(name, cat.VIEW)
            elif kind == "channel":
                self.runtime.drop_channel(name)
            elif kind == "index":
                index = self.catalog.drop_index(name)
                table = self.catalog.get_relation(index.table_name, cat.TABLE)
                table.detach_index(index)
        except UnknownObjectError:
            if statement.if_exists:
                return _ok()
            raise
        if kind in ("stream", "view", "channel", "index"):
            self._log_ddl({"op": "drop", "kind": kind, "name": name})
        return _ok()

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert(self, statement: ast.Insert) -> ResultSet:
        kind = self.catalog.relation_kind(statement.table)
        if kind == cat.STREAM:
            return self._insert_into_stream(statement)
        table = self.catalog.get_relation(statement.table, cat.TABLE)
        rows = self._insert_rows(statement, table.schema)
        count = self._with_txn(
            lambda txn: _insert_all(table, txn, rows))
        return _count(count)

    def _insert_rows(self, statement: ast.Insert, schema: Schema) -> list:
        if statement.query is not None:
            plan = self._plan_snapshot(statement.query)
            produced = list(plan.execute(self._execution_ctx()))
        else:
            empty = RowLayout([])
            produced = [
                tuple(compile_expr(e, empty)(None, self._execution_ctx())
                      for e in row)
                for row in statement.rows
            ]
        if statement.columns is None:
            return produced
        positions = [schema.index_of(c) for c in statement.columns]
        out = []
        for row in produced:
            if len(row) != len(positions):
                raise ExecutionError(
                    f"INSERT has {len(row)} values for "
                    f"{len(positions)} columns"
                )
            full = [None] * len(schema)
            for position, value in zip(positions, row):
                full[position] = value
            out.append(tuple(full))
        return out

    def _insert_into_stream(self, statement: ast.Insert) -> ResultSet:
        stream = self.runtime.get_stream(statement.table)
        rows = self._insert_rows(statement, stream.schema)
        accepted = stream.insert_many(rows)
        return _count(accepted)

    def _update(self, statement: ast.Update) -> ResultSet:
        table = self.catalog.get_relation(statement.table, cat.TABLE)
        layout = _table_layout(table)
        predicate = (compile_expr(statement.where, layout)
                     if statement.where is not None else None)
        assignment_fns = [
            (table.schema.index_of(column), compile_expr(expr, layout))
            for column, expr in statement.assignments
        ]
        ctx = self._execution_ctx()

        def run(txn):
            matches = [
                (rid, version)
                for rid, version in table.heap.scan(table._pool)
                if self.txn_manager.visible(version, txn.snapshot, txn.txid)
                and (predicate is None
                     or predicate(version.values, ctx) is True)
            ]
            for rid, version in matches:
                new_values = list(version.values)
                for position, fn in assignment_fns:
                    new_values[position] = fn(version.values, ctx)
                table.update_version(txn, rid, version, tuple(new_values))
            return len(matches)

        return _count(self._with_txn(run))

    def _delete(self, statement: ast.Delete) -> ResultSet:
        table = self.catalog.get_relation(statement.table, cat.TABLE)
        layout = _table_layout(table)
        predicate = (compile_expr(statement.where, layout)
                     if statement.where is not None else None)
        ctx = self._execution_ctx()

        def run(txn):
            matches = [
                (rid, version)
                for rid, version in table.heap.scan(table._pool)
                if self.txn_manager.visible(version, txn.snapshot, txn.txid)
                and (predicate is None
                     or predicate(version.values, ctx) is True)
            ]
            for rid, version in matches:
                table.delete_version(txn, rid, version)
            return len(matches)

        return _count(self._with_txn(run))

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def _begin(self) -> ResultSet:
        if self._session_txn is not None:
            raise TransactionError("a transaction is already in progress")
        self._session_txn = self.txn_manager.begin()
        return _ok()

    def _commit(self) -> ResultSet:
        if self._session_txn is None:
            raise TransactionError("no transaction in progress")
        self._session_txn.commit()
        self._session_txn = None
        return _ok()

    def _rollback(self) -> ResultSet:
        if self._session_txn is None:
            raise TransactionError("no transaction in progress")
        self._session_txn.abort()
        self._session_txn = None
        return _ok()

    def _with_txn(self, fn):
        """Run ``fn(txn)`` in the session txn or a fresh autocommit one."""
        if self._session_txn is not None:
            return fn(self._session_txn)
        txn = self.txn_manager.begin()
        try:
            result = fn(txn)
        except Exception:
            if txn.is_active():
                txn.abort()
            raise
        txn.commit()
        return result

    def _statement_snapshot_fn(self):
        if self._session_txn is not None:
            txn = self._session_txn
            return lambda: txn.snapshot
        snapshot = self.txn_manager.take_snapshot()
        return lambda: snapshot

    def _own_txid_fn(self):
        if self._session_txn is not None:
            txn = self._session_txn
            return lambda: txn.txid
        return None

    # ------------------------------------------------------------------
    # convenience API (benchmarks, workload generators, examples)
    # ------------------------------------------------------------------

    def insert_table(self, name: str, rows) -> int:
        """Bulk insert Python tuples into a table (bypasses SQL parsing)."""
        table = self.catalog.get_relation(name, cat.TABLE)
        return self._with_txn(lambda txn: _insert_all(table, txn, rows))

    def insert_stream(self, name: str, rows, at: Optional[float] = None) -> int:
        """Push Python tuples into a base stream."""
        stream = self.runtime.get_stream(name)
        return stream.insert_many(rows, at)

    def ingest_batch(self, name: str, rows, at: Optional[float] = None,
                     sender: Optional[str] = None,
                     seq: Optional[int] = None,
                     watermark: Optional[float] = None) -> dict:
        """Apply one ingest batch; returns counted results
        ``{"accepted", "shed", "duplicate"}``.

        With ``(sender, seq)`` the batch is idempotent: a sequence number
        already recorded for this stream+sender is recognised as a replay
        and skipped whole.  Applied rows are WAL-logged tagged with the
        batch id, then one ``stream_dedup`` marker is appended and the
        log is flushed — rows and marker become durable together, so
        recovery treats the batch atomically: marker durable means the
        rows count and a retry is a duplicate; marker lost means the
        rows are discarded and the retry is accepted fresh.

        ``watermark`` piggybacks an explicit watermark injection on the
        batch (event-time streams): after the rows land, the stream's
        watermark is advanced to at least that value and made durable.
        For event-time streams the result carries the stream's watermark
        after the batch under ``"watermark"`` — the ingest ack, so
        sources can observe their own completeness claims.
        """
        stream = self.runtime.get_stream(name)
        idempotent = sender is not None and seq is not None
        if idempotent:
            sender = str(sender)
            seq = int(seq)
            if self.admission.dedup.seen(stream.name, sender, seq):
                counts = {"accepted": 0, "shed": 0, "dropped": 0,
                          "duplicate": len(list(rows))}
                if stream.tracker is not None:
                    counts["watermark"] = stream.watermark
                return counts
            self.runtime.current_batch = (sender, seq)
        try:
            counts = stream.insert_many_counted(rows, at)
        finally:
            self.runtime.current_batch = None
        if idempotent:
            self._persist_dedup_marker(stream.name, sender, seq)
        if watermark is not None:
            self.inject_watermark(name, watermark)
        if stream.tracker is not None:
            counts["watermark"] = stream.watermark
        counts["duplicate"] = 0
        return counts

    def inject_watermark(self, name: str, watermark: float) -> float:
        """Explicitly advance a stream's watermark and make it durable.

        The injection closes any windows the new watermark passes, is
        appended to the WAL as a ``stream_advance`` record, and the log
        is flushed so the watermark survives a crash — recovery and
        standby promotion land it exactly where it was (crashpoint
        ``eventtime.watermark_persist`` sits between the advance and the
        flush that makes it durable).  Returns the stream's watermark
        after the injection, which may exceed the requested value (the
        watermark never regresses).
        """
        stream = self.runtime.get_stream(name)
        stream.advance_to(watermark)
        faults = self.faults
        if faults is not None and faults.armed:
            faults.check("eventtime.watermark_persist",
                         f"{name}:{watermark}")
        if self.runtime.stream_logger is not None:
            self.storage.wal.flush()
        return stream.watermark

    def _persist_dedup_marker(self, stream_name: str, sender: str,
                              seq: int) -> None:
        """Make an applied batch's dedup marker durable (and remembered).

        The in-memory record happens even when the persist step dies
        (crashpoint ``admission.dedup_persist``): the rows *were* applied
        in this process, so an in-process retry must be recognised as a
        duplicate.  After a real crash the lost marker means recovery
        discards the batch's rid-tagged rows, and the client's retry is
        accepted fresh — either way, exactly once.
        """
        faults = self.faults
        wal = self.storage.wal
        try:
            if faults is not None and faults.armed:
                faults.check("admission.dedup_persist",
                             f"{stream_name}:{sender}:{seq}")
            if self.runtime.stream_logger is not None:
                wal.append(0, "stream_dedup", stream_name,
                           rid=(sender, seq))
                wal.flush()
        finally:
            self.admission.dedup.record(stream_name, sender, seq)

    def advance_streams(self, event_time: float) -> None:
        """Heartbeat every base stream to ``event_time`` (closes windows)."""
        self.runtime.heartbeat_all(event_time)

    def flush_streams(self) -> None:
        """End-of-input: force all pending windows out."""
        self.runtime.flush_all()

    def get_table(self, name: str):
        """The :class:`~repro.storage.table.Table` object behind ``name``."""
        return self.catalog.get_relation(name, cat.TABLE)

    def get_stream(self, name: str):
        """The :class:`~repro.streaming.streams.BaseStream` named ``name``."""
        return self.runtime.get_stream(name)

    def table_rows(self, name: str) -> List[tuple]:
        """All visible rows of a table, via a fresh snapshot."""
        table = self.catalog.get_relation(name, cat.TABLE)
        snapshot = self.txn_manager.take_snapshot()
        return [values for _rid, values in
                table.scan(snapshot, self.txn_manager)]

    # -- I/O cost accounting (used by every benchmark) ---------------------

    @property
    def disk(self):
        return self.storage.disk

    def io_snapshot(self):
        """Copy of the simulated disk's counters (interval accounting)."""
        return self.storage.disk.snapshot()

    def simulated_seconds(self, since=None) -> float:
        """Simulated elapsed disk time (optionally since a snapshot)."""
        if since is None:
            return self.storage.disk.elapsed_seconds()
        delta = self.storage.disk.snapshot() - since
        return self.storage.disk.elapsed_seconds(delta)

    def reset_io(self) -> None:
        """Zero the simulated disk counters (between benchmark trials)."""
        self.storage.disk.reset()

    def drop_caches(self) -> None:
        """Simulate a cold start: empty the buffer pool."""
        self.storage.pool.clear()

    def backup(self, dest: str) -> dict:
        """Take an online backup of the WAL into ``dest``.

        Requires a segmented (data-dir) WAL; see
        :meth:`~repro.storage.lifecycle.WalLifecycle.backup`.
        """
        return self.wal_lifecycle.backup(dest)

    def compact_wal(self) -> dict:
        """Run one checkpoint-anchored compaction pass (see
        :meth:`~repro.storage.lifecycle.WalLifecycle.compact`)."""
        return self.wal_lifecycle.compact()

    def scrub_wal(self) -> dict:
        """Run one integrity-scrub pass over sealed segments and heap
        pages (see :meth:`~repro.storage.lifecycle.WalLifecycle.scrub`)."""
        return self.wal_lifecycle.scrub()

    def close(self) -> None:
        """Shut down the streaming side: stop every CQ (including those
        behind derived streams) and detach every channel.  Tables and
        the WAL remain readable; the object can still serve snapshot
        queries but no longer reacts to stream input."""
        for name, _channel in list(self.catalog.channels()):
            self.runtime.drop_channel(name)
        for _name, cq in list(self.runtime.cqs().items()):
            self.runtime.stop_cq(cq)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- dump / restore -----------------------------------------------------

    def dump(self, path: str) -> dict:
        """Write the whole database (schema + data + pipelines) to a
        file; returns a manifest of object counts.  See
        :mod:`repro.core.dump` for what is and is not preserved."""
        from repro.core.dump import dump_database
        return dump_database(self, path)

    @classmethod
    def restore(cls, path: str, **options) -> "Database":
        """Create a new database from a dump file (options as in the
        constructor)."""
        from repro.core.dump import restore_database
        db = cls(**options)
        restore_database(db, path)
        return db

    @classmethod
    def recover_from_wal(cls, wal, **options) -> "Database":
        """Rebuild durable table state from a surviving write-ahead log.

        The crash model of the paper's Section 4: "all in-flight
        transactions are deemed aborted on failure" — only durably
        logged, committed work is reconstructed.  Streams, views,
        channels and CQ runtime state are *not* in the WAL; rebuild those
        from a dump and the streaming recovery strategies.
        """
        from repro.catalog.schema import Column, Schema
        from repro.core.dump import _type_from_sql_name

        db = cls(**options)
        for record in wal.durable_records():
            if record.kind == "ddl" and record.payload is not None \
                    and not db.catalog.has_relation(record.table):
                schema = Schema([
                    Column(spec["name"], _type_from_sql_name(spec["type"]),
                           not_null=spec["not_null"],
                           primary_key=spec["primary_key"])
                    for spec in record.payload
                ])
                db._register_table(record.table, schema)
        for name, rows in wal.replay().items():
            if db.catalog.has_relation(name):
                db.insert_table(name, rows)
        return db

    def vacuum(self, table_name: Optional[str] = None) -> int:
        """Reclaim dead MVCC versions; returns how many were removed.

        REPLACE-mode channels in particular churn versions fast (each
        window deletes the previous result); run this periodically in a
        long-lived process.
        """
        if table_name is not None:
            table = self.catalog.get_relation(table_name, cat.TABLE)
            return table.vacuum(self.txn_manager)
        removed = 0
        for _name, table in self.catalog.relations(cat.TABLE):
            removed += table.vacuum(self.txn_manager)
        return removed


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _ok() -> ResultSet:
    return ResultSet([], [], rowcount=0)


def _option_text(value) -> str:
    """SHOW renders options the way psql does: on/off, or the value."""
    if value is True:
        return "on"
    if value is False or value is None:
        return "off"
    return str(value)


def _count(n: int) -> ResultSet:
    return ResultSet([], [], rowcount=n)


def _insert_all(table, txn, rows) -> int:
    count = 0
    for row in rows:
        table.insert(txn, row)
        count += 1
    return count


def _table_layout(table) -> RowLayout:
    return RowLayout([
        (table.name, c.name, c.datatype) for c in table.schema
    ])


def _schema_from_defs(defs: List[ast.ColumnDef], for_stream: bool) -> Schema:
    columns = []
    for definition in defs:
        datatype = type_from_name(definition.type_name, definition.length)
        columns.append(Column(
            definition.name, datatype,
            not_null=definition.not_null,
            primary_key=definition.primary_key,
            cqtime=definition.cqtime if for_stream else None,
        ))
    if for_stream and not any(c.cqtime for c in columns):
        # convenience default: the first timestamp column orders the stream
        for column in columns:
            if isinstance(column.datatype, TimestampType):
                column.cqtime = "user"
                break
        else:
            raise StreamingError(
                "a stream needs a CQTIME column (or at least one "
                "timestamp column)"
            )
    return Schema(columns)
