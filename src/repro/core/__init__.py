"""The stream-relational core: the public :class:`Database` facade.

``Database.execute`` takes TruSQL text and dispatches exactly as the
paper specifies (Section 3.1): queries over tables are *snapshot queries*
returning a :class:`~repro.core.results.ResultSet`; queries touching a
stream are *continuous queries* returning a
:class:`~repro.core.results.Subscription` that yields results window by
window until closed.
"""

from repro.core.database import Database
from repro.core.results import ResultSet, Subscription, WindowResult

__all__ = ["Database", "ResultSet", "Subscription", "WindowResult"]
