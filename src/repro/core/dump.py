"""Dump and restore: a database's catalog and contents as one JSON file.

Analogous to ``pg_dump``: DDL for every object plus table contents, in
dependency order (streams → tables → views → derived streams → channels
→ indexes), so a restored database has the same schema, the same stored
data, and the same always-on pipelines.  What is *not* restored, by
design: in-flight window state (that is what the recovery strategies in
:mod:`repro.streaming.recovery` are for) and client subscriptions.

::

    db.dump("analytics.json")
    db2 = Database.restore("analytics.json")
"""

from __future__ import annotations

import json

from repro.catalog import catalog as cat
from repro.errors import TruvisoError
from repro.sql.render import render_statement
from repro.types.datatypes import type_from_name

FORMAT_VERSION = 1


def _column_spec(column) -> dict:
    return {
        "name": column.name,
        "type": column.datatype.sql_name(),
        "not_null": column.not_null,
        "primary_key": column.primary_key,
        "cqtime": column.cqtime,
    }


def _type_from_sql_name(spelled: str):
    if "(" in spelled:
        base, rest = spelled.split("(", 1)
        length = int(rest.rstrip(")"))
        return type_from_name(base, length)
    return type_from_name(spelled)


def dump_database(db, path: str) -> dict:
    """Serialize ``db`` to ``path``; returns the manifest (counts)."""
    snapshot = db.txn_manager.take_snapshot()

    streams = []
    for name, stream in db.catalog.relations(cat.STREAM):
        streams.append({
            "name": name,
            "columns": [_column_spec(c) for c in stream.schema],
            "retention": stream.retention,
            "slack": stream.slack,
            "disorder_policy": stream.disorder_policy,
            "partition_by": stream.partition_by,
        })

    tables = []
    for name, table in db.catalog.relations(cat.TABLE):
        rows = [list(values) for _rid, values in
                table.scan(snapshot, db.txn_manager)]
        tables.append({
            "name": name,
            "columns": [_column_spec(c) for c in table.schema],
            "rows": rows,
        })

    views = []
    for name, view in db.catalog.relations(cat.VIEW):
        views.append({"name": name,
                      "query": render_statement(view.query)})

    derived = []
    for name, stream in db.catalog.relations(cat.DERIVED_STREAM):
        derived.append({"name": name,
                        "query": render_statement(stream.cq.select)})

    channels = []
    for name, channel in db.catalog.channels():
        channels.append({
            "name": name,
            "source": channel.source.name,
            "target": channel.table.name,
            "mode": channel.mode,
        })

    indexes = []
    for name, index in db.catalog.indexes():
        indexes.append({
            "name": name,
            "table": index.table_name,
            "columns": list(index.column_names),
            "unique": index.unique,
        })

    payload = {
        "format_version": FORMAT_VERSION,
        "streams": streams,
        "tables": tables,
        "views": views,
        "derived_streams": derived,
        "channels": channels,
        "indexes": indexes,
    }
    with open(path, "w") as f:
        json.dump(payload, f)
    return {
        "streams": len(streams), "tables": len(tables),
        "views": len(views), "derived_streams": len(derived),
        "channels": len(channels), "indexes": len(indexes),
    }


def restore_database(db, path: str) -> None:
    """Load a dump into a fresh ``db`` (its catalog must be empty of
    user objects)."""
    from repro.catalog.schema import Column, Schema

    with open(path) as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise TruvisoError(
            f"dump format version {version!r} is not supported")

    def build_schema(specs) -> Schema:
        return Schema([
            Column(spec["name"], _type_from_sql_name(spec["type"]),
                   not_null=spec["not_null"],
                   primary_key=spec["primary_key"],
                   cqtime=spec["cqtime"])
            for spec in specs
        ])

    for spec in payload["streams"]:
        stream = db.runtime.create_base_stream(
            spec["name"], build_schema(spec["columns"]),
            retention=spec["retention"],
            slack=spec["slack"] or 0.0,
            partition_by=spec.get("partition_by"),
        )
        stream.disorder_policy = spec["disorder_policy"]

    for spec in payload["tables"]:
        db._register_table(spec["name"], build_schema(spec["columns"]))
        db.insert_table(spec["name"], [tuple(row) for row in spec["rows"]])

    for spec in payload["views"]:
        db.execute(f"CREATE VIEW {spec['name']} AS {spec['query']}")

    for spec in payload["derived_streams"]:
        db.execute(f"CREATE STREAM {spec['name']} AS {spec['query']}")

    for spec in payload["channels"]:
        db.execute(
            f"CREATE CHANNEL {spec['name']} FROM {spec['source']} "
            f"INTO {spec['target']} {spec['mode'].upper()}"
        )

    for spec in payload["indexes"]:
        unique = "UNIQUE " if spec["unique"] else ""
        columns = ", ".join(spec["columns"])
        db.execute(f"CREATE {unique}INDEX {spec['name']} "
                   f"ON {spec['table']} ({columns})")
