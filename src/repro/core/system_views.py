"""System views: the engine's own state as queryable relations.

In the spirit of the paper's "stored data is simply streaming data that
has been entered into persistent structures", the runtime itself is
exposed through ordinary SQL::

    SELECT name, tuples_in, watermark FROM repro_streams;
    SELECT name, batches, rows_written FROM repro_channels;

Each view is a :class:`VirtualTable`: a schema plus a zero-argument rows
callable evaluated at query time, planned as a plain row source.
"""

from __future__ import annotations

from typing import Callable, List

from repro.catalog import catalog as cat
from repro.catalog.schema import Column, Schema
from repro.types.datatypes import (
    BooleanType,
    DoubleType,
    IntegerType,
    TimestampType,
    VarcharType,
)

SYSTEM = "system view"


class VirtualTable:
    """A read-only relation computed on demand."""

    def __init__(self, name: str, schema: Schema, rows_fn: Callable):
        self.name = name
        self.schema = schema
        self._rows_fn = rows_fn

    def rows(self) -> List[tuple]:
        return [self.schema.coerce_row(row) for row in self._rows_fn()]

    def __repr__(self):
        return f"VirtualTable({self.name})"


def _text(name):
    return Column(name, VarcharType(None, "text"))


def _int(name):
    return Column(name, IntegerType("bigint"))


def install_system_views(db) -> None:
    """Register the repro_* views in ``db``'s catalog."""

    def streams_rows():
        out = []
        for name, stream in db.catalog.relations(cat.STREAM):
            watermark = stream.watermark
            out.append((
                name, "base", stream.tuples_in, stream.tuples_dropped,
                None if watermark == float("-inf") else watermark,
                len(stream.consumers),
            ))
        for name, derived in db.catalog.relations(cat.DERIVED_STREAM):
            out.append((
                name, "derived", derived.tuples_out, 0,
                derived.cq.stats.last_close if derived.cq else None,
                len(derived.consumers),
            ))
        return out

    streams = VirtualTable("repro_streams", Schema([
        _text("name"), _text("kind"), _int("tuples"), _int("dropped"),
        Column("watermark", TimestampType()), _int("consumers"),
    ]), streams_rows)

    def channels_rows():
        out = []
        for name, channel in db.catalog.channels():
            out.append((
                name, channel.source.name, channel.table.name, channel.mode,
                channel.stats.batches, channel.stats.rows_written,
                channel.stats.last_close,
            ))
        return out

    channels = VirtualTable("repro_channels", Schema([
        _text("name"), _text("source"), _text("target"), _text("mode"),
        _int("batches"), _int("rows_written"),
        Column("last_close", TimestampType()),
    ]), channels_rows)

    def tables_rows():
        out = []
        for name, table in db.catalog.relations(cat.TABLE):
            out.append((
                name, table.heap.page_count, table.heap.row_count,
                len(table.indexes()),
            ))
        return out

    tables = VirtualTable("repro_tables", Schema([
        _text("name"), _int("pages"), _int("row_slots"), _int("indexes"),
    ]), tables_rows)

    def indexes_rows():
        out = []
        for name, index in db.catalog.indexes():
            out.append((
                name, index.table_name, ",".join(index.column_names),
                index.unique, index.entry_count,
            ))
        return out

    indexes = VirtualTable("repro_indexes", Schema([
        _text("name"), _text("table_name"), _text("columns"),
        Column("is_unique", BooleanType()), _int("entries"),
    ]), indexes_rows)

    def cqs_rows():
        out = []
        for name, cq in db.runtime.cqs().items():
            out.append((
                name, bool(getattr(cq, "shared", False)),
                cq.stats.windows_evaluated, cq.stats.rows_out,
                cq.stats.last_close,
            ))
        return out

    cqs = VirtualTable("repro_cqs", Schema([
        _text("name"), Column("shared", BooleanType()),
        _int("windows"), _int("rows_out"),
        Column("last_close", TimestampType()),
    ]), cqs_rows)

    def io_rows():
        stats = db.disk.stats
        return [(
            stats.pages_read, stats.pages_written, stats.seeks,
            db.disk.elapsed_seconds(),
            db.storage.pool.hits, db.storage.pool.misses,
        )]

    io = VirtualTable("repro_io", Schema([
        _int("pages_read"), _int("pages_written"), _int("seeks"),
        Column("sim_seconds", DoubleType()),
        _int("buffer_hits"), _int("buffer_misses"),
    ]), io_rows)

    def stats_rows():
        out = []
        for name, table in db.catalog.relations(cat.TABLE):
            if table.stats is None:
                continue
            for column, (n_distinct, null_frac) in table.stats.columns.items():
                out.append((name, column, n_distinct, null_frac))
        return out

    stats = VirtualTable("repro_stats", Schema([
        _text("table_name"), _text("column_name"), _int("n_distinct"),
        Column("null_frac", DoubleType()),
    ]), stats_rows)

    def supervisor_rows():
        if db.supervisor is None:
            return []
        return db.supervisor.status_rows()

    supervisor = VirtualTable("repro_supervisor_status", Schema([
        _text("name"), _text("kind"), _text("state"), _int("failures"),
        _int("consecutive_failures"), _int("restarts"), _int("retries"),
        Column("backoff_seconds", DoubleType()), _int("dead_letters"),
        _text("last_error"),
    ]), supervisor_rows)

    def dead_letter_rows():
        if db.supervisor is None:
            return []
        return db.supervisor.dead_letter_rows()

    dead_letters = VirtualTable("repro_dead_letters", Schema([
        _int("seq"), _text("source"), _text("kind"), _text("reason"),
        _int("rowcount"), _text("payload"),
        Column("open_time", TimestampType()),
        Column("close_time", TimestampType()),
    ]), dead_letter_rows)

    def connections_rows():
        provider = getattr(db, "connection_registry", None)
        if provider is None:
            return []
        return provider()

    connections = VirtualTable("repro_connections", Schema([
        _int("session_id"), _text("peer"), _text("tenant"),
        _text("state"),
        _int("statements"), _int("rows_ingested"), _int("subscriptions"),
        _int("windows_pushed"), _int("tuples_pushed"), _int("sheds"),
        Column("connected_seconds", DoubleType()),
        Column("idle_seconds", DoubleType()),
        # wall-clock only here in the view; the reaper and the idle
        # computation use the monotonic clock internally
        Column("last_seen", TimestampType()),
    ]), connections_rows)

    def replication_rows():
        provider = getattr(db, "replication_registry", None)
        if provider is not None:
            return provider()
        # standalone: no peers, but the local WAL head is still useful
        return [("standalone", None, "standalone",
                 db.storage.wal.head_lsn, None, None, None, None)]

    replication = VirtualTable("repro_replication_status", Schema([
        _text("role"), _text("peer"), _text("state"),
        _int("shipped_lsn"), _int("applied_lsn"), _int("acked_lsn"),
        _int("lag"), _text("last_error"),
    ]), replication_rows)

    def crashpoint_rows():
        if db.faults is None:
            from repro.faults import CRASHPOINTS
            return [(name, False, None, 0, 0) for name in sorted(CRASHPOINTS)]
        return db.faults.stats_rows()

    crashpoints = VirtualTable("repro_crashpoints", Schema([
        _text("crashpoint"), Column("armed", BooleanType()),
        Column("probability", DoubleType()),
        _int("evaluations"), _int("fires"),
    ]), crashpoint_rows)

    def metrics_rows():
        return db.obs.registry.snapshot_rows()

    metrics = VirtualTable("repro_metrics", Schema([
        _text("name"), _text("kind"), Column("value", DoubleType()),
        _int("count"), Column("sum", DoubleType()),
        Column("p50", DoubleType()), Column("p95", DoubleType()),
        Column("p99", DoubleType()), Column("max", DoubleType()),
    ]), metrics_rows)

    def cq_stats_rows():
        out = []
        for name, cq in db.runtime.cqs().items():
            st = cq.stats
            windows = st.windows_evaluated
            out.append((
                name, bool(getattr(cq, "shared", False)),
                st.tuples_in, windows, st.rows_scanned, st.rows_out,
                st.last_close,
                round(st.last_window_seconds * 1000.0, 6),
                round(st.total_window_seconds * 1000.0 / windows, 6)
                if windows else 0.0,
                round(st.max_window_seconds * 1000.0, 6),
                st.slow_windows,
            ))
        return out

    cq_stats = VirtualTable("repro_cq_stats", Schema([
        _text("name"), Column("shared", BooleanType()),
        _int("tuples_in"), _int("windows"), _int("rows_scanned"),
        _int("rows_out"), Column("last_close", TimestampType()),
        Column("last_window_ms", DoubleType()),
        Column("avg_window_ms", DoubleType()),
        Column("max_window_ms", DoubleType()),
        _int("slow_windows"),
    ]), cq_stats_rows)

    def operator_stats_rows():
        from repro.obs.service import walk_operators
        out = []
        for name, cq in db.runtime.cqs().items():
            root = getattr(cq, "_post_plan", None)
            plan = getattr(cq, "_plan", None)
            if plan is not None:
                root = plan.root
            if root is None:
                continue
            for index, (op, depth, parent) in \
                    enumerate(walk_operators(root)):
                st = op.stats
                out.append((
                    name, index, parent, depth, op._describe(),
                    st.tuples_out if st else None,
                    st.calls if st else None,
                    round(st.wall_seconds * 1000.0, 6) if st else None,
                    op.mode,
                    st.batch_rows if st else None,
                ))
        return out

    # tuples_out/calls/time_ms cover the sampled (timed) evaluations:
    # CQs arm per-operator instrumentation on every Nth window; mode
    # says whether the operator ran vectorized (batch) or row-at-a-time
    operator_stats = VirtualTable("repro_operator_stats", Schema([
        _text("cq"), _int("op_id"), _int("parent_id"), _int("depth"),
        _text("operator"), _int("tuples_out"), _int("calls"),
        Column("time_ms", DoubleType()),
        _text("mode"), _int("batch_rows"),
    ]), operator_stats_rows)

    def tenants_rows():
        return db.admission.tenants_rows()

    tenants = VirtualTable("repro_tenants", Schema([
        _text("name"), _int("sessions"),
        Column("weight", DoubleType()),
        Column("rate_limit", DoubleType()), Column("burst", DoubleType()),
        _int("row_quota"), _int("byte_quota"),
        _int("rows_ingested"), _int("bytes_ingested"),
        _int("batches_admitted"), _int("batches_rejected"),
        _int("batches_shed"), _int("rows_rejected"), _int("rows_shed"),
        _int("duplicates"),
    ]), tenants_rows)

    def admission_rows():
        return db.admission.admission_rows()

    admission = VirtualTable("repro_admission", Schema([
        Column("enabled", BooleanType()), _int("queue_depth"),
        _int("tier"), _int("soft_depth"), _int("hard_depth"),
        _int("bulk_rows"), _int("tenants"),
        _int("batches_admitted"), _int("batches_rejected"),
        _int("batches_shed"), _int("rows_admitted"),
        _int("rows_rejected"), _int("rows_shed"),
        _int("duplicates"), _int("dedup_senders"),
    ]), admission_rows)

    def watermarks_rows():
        neg_inf = float("-inf")

        def _t(value):
            return None if value == neg_inf else value

        out = []
        for name, stream in db.catalog.relations(cat.STREAM):
            tracker = stream.tracker
            if tracker is None:
                out.append((name, "arrival", None,
                            _t(stream.watermark), None, None, 0, 0))
                continue
            out.append((
                name, "event", tracker.bound, _t(tracker.watermark),
                _t(tracker.max_event_time), tracker.lag(),
                tracker.late_rows, tracker.injections,
            ))
        return out

    watermarks = VirtualTable("repro_watermarks", Schema([
        _text("stream"), _text("mode"),
        Column("bound_seconds", DoubleType()),
        Column("watermark", TimestampType()),
        Column("max_event_time", TimestampType()),
        Column("lag_seconds", DoubleType()),
        _int("late_rows"), _int("injections"),
    ]), watermarks_rows)

    def storage_rows():
        lifecycle = getattr(db, "wal_lifecycle", None)
        if lifecycle is None:
            return []
        return [lifecycle.status_row()]

    storage = VirtualTable("repro_storage", Schema([
        _text("mode"), _int("live_segments"), _int("live_bytes"),
        _int("archive_segments"), _int("archive_bytes"),
        _int("archived_total"), _int("head_lsn"), _int("low_water_lsn"),
        _int("last_backup_lsn"), _int("backups"), _int("scrubs"),
        Column("last_scrub", TimestampType()), _int("scrub_errors"),
        _int("quarantined"),
    ]), storage_rows)

    def partitions_rows():
        provider = getattr(db, "partition_registry", None)
        if provider is None:
            return []
        return provider()

    # one row per partition worker, provided by the coordinating
    # PartitionedEngine (repro.partition); empty when this database is
    # not a partition coordinator
    partitions = VirtualTable("repro_partitions", Schema([
        _int("worker"), _int("pid"), _text("state"), _text("transport"),
        _int("streams"), _int("rows_routed"), _int("batches"),
        _int("spill_rows"), Column("watermark", TimestampType()),
        Column("lag_seconds", DoubleType()), _int("restarts"),
        _int("replayed_batches"),
    ]), partitions_rows)

    def traces_rows():
        return db.obs.tracer.rows()

    traces = VirtualTable("repro_traces", Schema([
        _int("trace_id"), _int("span_id"), _int("parent_id"),
        _text("name"), Column("start_time", TimestampType()),
        Column("duration_ms", DoubleType()),
    ]), traces_rows)

    for view in (streams, channels, tables, indexes, cqs, io, stats,
                 supervisor, dead_letters, crashpoints, connections,
                 replication, metrics, cq_stats, operator_stats, traces,
                 tenants, admission, watermarks, storage, partitions):
        db.catalog.add_relation(view.name, SYSTEM, view)
