"""Result objects: snapshot result sets and CQ subscriptions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.types.temporal import format_timestamp


class ResultSet:
    """The answer to a snapshot query (or the row count of DML).

    "SQ's produce an answer and terminate" — Section 3.1.
    """

    def __init__(self, columns: List[str], rows: List[tuple],
                 rowcount: Optional[int] = None):
        self.columns = list(columns)
        self.rows = list(rows)
        self.rowcount = rowcount if rowcount is not None else len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def __bool__(self):
        return True

    def scalar(self):
        """The single value of a 1x1 result (raises otherwise)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def to_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, max_rows: int = 20) -> str:
        """A fixed-width text rendering (for examples and debugging)."""
        shown = self.rows[:max_rows]
        cells = [[_render(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self):
        return f"ResultSet({len(self.rows)} rows)"


def _render(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float) and value > 1e8:
        # heuristically a timestamp; render readably
        try:
            return format_timestamp(value)
        except Exception:
            return repr(value)
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass
class WindowResult:
    """One window's worth of CQ output.

    ``kind`` types event-time records: ``"window"`` is a final result;
    ``"retract"`` withdraws a previously delivered window, ``"correct"``
    replaces it (a late row re-opened the window under the ``RETRACT``
    lateness policy), and ``"early"`` is speculative output ahead of the
    watermark (``EMIT ON CHANGE`` / ``EMIT EVERY``).  ``watermark`` is
    the source stream's event-time watermark at delivery, when known.
    """

    rows: List[tuple]
    open_time: float
    close_time: float
    kind: str = "window"
    watermark: Optional[float] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


class Subscription:
    """A handle on a running continuous query.

    "CQ's produce answers incrementally and run until they are explicitly
    terminated" — Section 3.1.  Results accumulate as windows close;
    :meth:`poll` drains them.
    """

    def __init__(self, cq, runtime):
        self._cq = cq
        self._runtime = runtime
        self._pending: List[WindowResult] = []
        self.closed = False
        cq.add_sink(self._on_window)
        probe = getattr(cq, "is_event_time", None)
        if probe is not None and cq.is_event_time():
            cq.add_correction_sink(self._on_correction)

    @property
    def columns(self) -> List[str]:
        return list(self._cq.output_names)

    @property
    def cq(self):
        return self._cq

    @property
    def stats(self):
        return self._cq.stats

    def _on_window(self, rows, open_time, close_time):
        self._pending.append(WindowResult(list(rows), open_time, close_time,
                                          watermark=self._watermark()))

    def _on_correction(self, kind, rows, open_time, close_time):
        self._pending.append(WindowResult(list(rows), open_time, close_time,
                                          kind=kind,
                                          watermark=self._watermark()))

    def _watermark(self) -> Optional[float]:
        stream = getattr(self._cq, "stream", None)
        if stream is not None and getattr(stream, "tracker", None) is not None:
            return stream.watermark
        return None

    def listen(self, callback) -> None:
        """Push mode: call ``callback(WindowResult)`` at every window
        close, instead of (or in addition to) polling."""
        self._cq.add_sink(
            lambda rows, open_time, close_time: callback(
                WindowResult(list(rows), open_time, close_time)))

    def stream_to(self, sink) -> None:
        """Switch to pure push mode: stop buffering windows for
        :meth:`poll` and deliver every window to
        ``sink(rows, open_time, close_time)`` instead.  Long-lived
        forwarders (the network server) use this so an unpolled
        subscription does not accumulate windows forever."""
        self._cq.remove_sink(self._on_window)
        remove_correction = getattr(self._cq, "remove_correction_sink", None)
        if remove_correction is not None:
            remove_correction(self._on_correction)
        self._pending.clear()
        self._cq.add_sink(sink)

    def poll(self) -> List[WindowResult]:
        """Drain and return the windows that closed since the last poll."""
        drained, self._pending = self._pending, []
        return drained

    def rows(self) -> List[tuple]:
        """Drain pending windows and return their rows, flattened."""
        out = []
        for window in self.poll():
            out.extend(window.rows)
        return out

    def latest(self) -> Optional[WindowResult]:
        """Drain and return only the most recent window (None if none)."""
        drained = self.poll()
        return drained[-1] if drained else None

    def close(self) -> None:
        """Terminate the CQ."""
        if not self.closed:
            self._runtime.stop_cq(self._cq)
            self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self.closed else "open"
        return f"Subscription({self._cq.name}, {state}, {len(self._pending)} pending)"
