"""Column and row-schema descriptions shared by tables, streams and plans."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import BindError, ConstraintError
from repro.types.datatypes import DataType

#: value types ``DataType.coerce`` returns unchanged, per type class;
#: keyed by class name so bigint/smallint (IntegerType instances) share
#: the entry.  int is not canonical for double/timestamp (coerce
#: converts to float) and bool is never canonical for int/float.
_CANONICAL_TYPES = {
    "IntegerType": frozenset((int,)),
    "DoubleType": frozenset((float,)),
    "TimestampType": frozenset((float,)),
    "BooleanType": frozenset((bool,)),
    "VarcharType": frozenset((str,)),
}


class Column:
    """One column: a name, a declared type, and constraints.

    ``cqtime`` marks the ordering attribute of a stream (Example 1 in the
    paper: ``atime timestamp CQTIME USER``); it is ``None`` for ordinary
    columns, ``'user'`` when event time is supplied by the tuple, and
    ``'system'`` when the engine stamps arrival time.
    """

    __slots__ = ("name", "datatype", "not_null", "primary_key", "cqtime")

    def __init__(self, name: str, datatype: DataType, not_null: bool = False,
                 primary_key: bool = False, cqtime: Optional[str] = None):
        self.name = name
        self.datatype = datatype
        self.not_null = not_null
        self.primary_key = primary_key
        self.cqtime = cqtime

    def __repr__(self):
        return f"Column({self.name} {self.datatype.sql_name()})"


class Schema:
    """An ordered list of columns with fast name lookup.

    Plan nodes carry a ``Schema`` describing the rows they produce, so the
    same machinery types both stored tables and intermediate results.
    """

    def __init__(self, columns: List[Column]):
        self.columns = list(columns)
        self._index = {}
        for i, column in enumerate(self.columns):
            # first occurrence wins for duplicate names (SQL allows dups
            # in intermediate results; unqualified lookup is ambiguous)
            self._index.setdefault(column.name.lower(), i)

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def names(self) -> List[str]:
        return [column.name for column in self.columns]

    def index_of(self, name: str) -> int:
        """Position of ``name`` (case-insensitive); raises BindError."""
        i = self._index.get(name.lower())
        if i is None:
            raise BindError(f"column {name!r} does not exist")
        return i

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def cqtime_index(self) -> Optional[int]:
        """Index of the CQTIME ordering column, or None."""
        for i, column in enumerate(self.columns):
            if column.cqtime is not None:
                return i
        return None

    def coerce_row(self, values) -> tuple:
        """Validate and coerce a full row to this schema.

        Raises :class:`ConstraintError` on arity or NOT NULL violations.
        """
        if len(values) != len(self.columns):
            raise ConstraintError(
                f"row has {len(values)} values, schema has {len(self.columns)}"
            )
        out = []
        for column, value in zip(self.columns, values):
            coerced = column.datatype.coerce(value)
            if coerced is None and column.not_null:
                raise ConstraintError(
                    f"null value in column {column.name!r} violates NOT NULL"
                )
            out.append(coerced)
        return tuple(out)

    def coerce_rows(self, rows) -> list:
        """Bulk :meth:`coerce_row`, column at a time.

        A column whose values are already in canonical Python form
        (the exact type ``coerce`` would return unchanged) is passed
        through after one C-level type scan instead of a Python-level
        coercion call per value — the dominant case for programmatic
        ingest, where this is ~5x cheaper than mapping ``coerce_row``.
        Any column that fails the scan falls back to per-value
        coercion, so semantics and error behaviour match exactly.
        """
        columns = self.columns
        ncols = len(columns)
        for values in rows:
            if len(values) != ncols:
                raise ConstraintError(
                    f"row has {len(values)} values, schema has {ncols}")
        if not rows:
            return []
        cols = zip(*rows)
        out_cols = []
        rebuilt = False
        for column, values in zip(columns, cols):
            datatype = column.datatype
            kinds = set(map(type, values))
            has_none = type(None) in kinds
            if has_none:
                kinds.discard(type(None))
            fast = False
            if not (has_none and column.not_null):
                canonical = _CANONICAL_TYPES.get(type(datatype).__name__)
                if canonical is not None and kinds <= canonical:
                    length = getattr(datatype, "length", None)
                    if length is None:
                        fast = True
                    elif kinds:  # varchar(n): one C-level length scan
                        fast = max(map(len, (v for v in values
                                             if v is not None))) <= length
                    else:
                        fast = True  # all-NULL column
            if fast:
                out_cols.append(values)
                continue
            rebuilt = True
            coerce = datatype.coerce
            coerced = []
            for value in values:
                value = coerce(value)
                if value is None and column.not_null:
                    raise ConstraintError(
                        f"null value in column {column.name!r} "
                        f"violates NOT NULL")
                coerced.append(value)
            out_cols.append(coerced)
        if not rebuilt:
            # every column was canonical: the rows pass through as-is
            return list(map(tuple, rows))
        return list(zip(*out_cols))

    def project(self, names) -> "Schema":
        """A new schema with just the named columns, in the given order."""
        return Schema([self.columns[self.index_of(name)] for name in names])

    def rename(self, new_names) -> "Schema":
        """A copy with columns renamed positionally."""
        if len(new_names) != len(self.columns):
            raise BindError("rename arity mismatch")
        return Schema([
            Column(name, col.datatype, col.not_null, col.primary_key, col.cqtime)
            for name, col in zip(new_names, self.columns)
        ])

    def __repr__(self):
        inner = ", ".join(f"{c.name} {c.datatype.sql_name()}" for c in self.columns)
        return f"Schema({inner})"
