"""Catalog: schemas and the registry of tables, streams, views, channels."""

from repro.catalog.schema import Column, Schema
from repro.catalog.catalog import Catalog

__all__ = ["Column", "Schema", "Catalog"]
