"""The system catalog: registry of every named object in a database.

The paper's core principle (Section 2.3) is that "stored data is simply
streaming data that has been entered into persistent structures", so the
catalog holds tables and streams side by side, plus the glue objects:
views, derived streams, channels and indexes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DuplicateObjectError, UnknownObjectError

TABLE = "table"
STREAM = "stream"
DERIVED_STREAM = "derived stream"
VIEW = "view"
CHANNEL = "channel"
INDEX = "index"


class Catalog:
    """Name → object registry with a single namespace for relations.

    Tables, streams, derived streams and views share one namespace (as in
    PostgreSQL); channels and indexes have their own.
    """

    def __init__(self):
        self._relations: Dict[str, tuple] = {}   # name -> (kind, object)
        self._channels: Dict[str, object] = {}
        self._indexes: Dict[str, object] = {}

    # -- relations ----------------------------------------------------------

    def add_relation(self, name: str, kind: str, obj) -> None:
        key = name.lower()
        if key in self._relations:
            raise DuplicateObjectError(f"relation {name!r} already exists")
        self._relations[key] = (kind, obj)

    def relation_kind(self, name: str) -> Optional[str]:
        entry = self._relations.get(name.lower())
        return entry[0] if entry else None

    def get_relation(self, name: str, kind: Optional[str] = None):
        entry = self._relations.get(name.lower())
        if entry is None:
            raise UnknownObjectError(f"relation {name!r} does not exist")
        found_kind, obj = entry
        if kind is not None and found_kind != kind:
            raise UnknownObjectError(
                f"{name!r} is a {found_kind}, not a {kind}"
            )
        return obj

    def has_relation(self, name: str) -> bool:
        return name.lower() in self._relations

    def drop_relation(self, name: str, kind: Optional[str] = None):
        obj = self.get_relation(name, kind)
        del self._relations[name.lower()]
        return obj

    def relations(self, kind: Optional[str] = None):
        """Iterate (name, object) pairs, optionally filtered by kind."""
        for name, (found_kind, obj) in self._relations.items():
            if kind is None or found_kind == kind:
                yield name, obj

    # -- channels -----------------------------------------------------------

    def add_channel(self, name: str, channel) -> None:
        key = name.lower()
        if key in self._channels:
            raise DuplicateObjectError(f"channel {name!r} already exists")
        self._channels[key] = channel

    def get_channel(self, name: str):
        channel = self._channels.get(name.lower())
        if channel is None:
            raise UnknownObjectError(f"channel {name!r} does not exist")
        return channel

    def has_channel(self, name: str) -> bool:
        return name.lower() in self._channels

    def drop_channel(self, name: str):
        channel = self.get_channel(name)
        del self._channels[name.lower()]
        return channel

    def channels(self):
        return self._channels.items()

    # -- indexes ------------------------------------------------------------

    def add_index(self, name: str, index) -> None:
        key = name.lower()
        if key in self._indexes:
            raise DuplicateObjectError(f"index {name!r} already exists")
        self._indexes[key] = index

    def get_index(self, name: str):
        index = self._indexes.get(name.lower())
        if index is None:
            raise UnknownObjectError(f"index {name!r} does not exist")
        return index

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indexes

    def drop_index(self, name: str):
        index = self.get_index(name)
        del self._indexes[name.lower()]
        return index

    def indexes_on(self, table_name: str):
        """All index objects whose table matches ``table_name``."""
        table_name = table_name.lower()
        return [
            index for index in self._indexes.values()
            if index.table_name.lower() == table_name
        ]

    def indexes(self):
        return self._indexes.items()
