"""A synchronous TruSQL client with automatic failover.

The blocking counterpart of :mod:`repro.server`: one TCP connection,
the length-prefixed JSON frame protocol, and an API that mirrors the
embedded :class:`~repro.core.database.Database` so code moves between
embedded and client/server mode with minimal edits::

    import repro.client

    with repro.client.connect("127.0.0.1", 5433) as conn:
        conn.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = conn.subscribe("totals")
        conn.ingest("s", [(7, 5.0)])
        conn.advance(60.0)
        for window in sub.poll(timeout=2.0):
            print(window.close_time, window.rows)

Window/tuple pushes arrive whenever the socket is read; the connection
routes them to their :class:`RemoteSubscription` while it waits for
request responses, so a second subscription never blocks the first.

**Failover.** Give the connection ``failover_targets`` (or ``SET
failover_targets = 'host:port,...'``) and a dropped socket triggers
reconnection — to the original server first, then each target in turn,
with exponential backoff capped at ``reconnect_max_backoff`` — until a
server answering ``role: primary`` is found (a standby mid-promotion is
retried, not accepted).  Named subscriptions made with
:meth:`Connection.subscribe` are *resumable*: each tracks the last
window close (or tuple time) it delivered, and re-subscribes with
``since=`` so the promoted primary replays exactly the missed windows —
no gap, and a close-time guard drops any overlap, so no duplicate.
Ad-hoc CQ subscriptions (from ``execute``) cannot be resumed and are
closed with reason ``failover``.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clock import SYSTEM_CLOCK
from repro.core.results import ResultSet, WindowResult
from repro.errors import (
    AdmissionError,
    ConnectionTimeoutError,
    ProtocolError,
    RemoteError,
    ReplicationGapError,
)
from repro.server.protocol import FrameDecoder, encode_frame

#: SET/SHOW options the client handles locally, never sent to a server
CLIENT_OPTIONS = ("failover_targets", "reconnect_max_backoff")


def connect(host: str = "127.0.0.1", port: int = 5433,
            timeout: float = 10.0,
            connect_timeout: Optional[float] = None,
            failover_targets=None,
            reconnect_max_backoff: float = 5.0,
            tenant: Optional[str] = None,
            clock=None) -> "Connection":
    """Open a client connection and perform the hello handshake.

    ``tenant`` binds the session to a named admission-control tenant
    (quotas, rate limits and fair scheduling are per tenant); ``clock``
    injects a :class:`~repro.clock.Clock` so tests drive retry backoff
    and failover waits with a ManualClock instead of sleeping.
    """
    return Connection(host, port, timeout,
                      connect_timeout=connect_timeout,
                      failover_targets=failover_targets,
                      reconnect_max_backoff=reconnect_max_backoff,
                      tenant=tenant, clock=clock)


class IngestAck(int):
    """The counted ingest acknowledgement.

    Compares and arithmetics as ``accepted`` (so existing callers doing
    ``conn.ingest(...) == n`` keep working) while carrying the full
    accounting: ``accepted + shed + dropped + duplicate`` covers every
    row of the batch.
    """

    def __new__(cls, accepted: int, shed: int = 0, dropped: int = 0,
                duplicate: int = 0, watermark: Optional[float] = None):
        self = super().__new__(cls, accepted)
        self.accepted = int(accepted)
        self.shed = int(shed)
        self.dropped = int(dropped)
        self.duplicate = int(duplicate)
        #: event-time streams ack their watermark after the batch;
        #: None for arrival-time streams
        self.watermark = watermark
        return self

    def __repr__(self):
        wm = (f", watermark={self.watermark}"
              if self.watermark is not None else "")
        return (f"IngestAck(accepted={self.accepted}, shed={self.shed}, "
                f"dropped={self.dropped}, duplicate={self.duplicate}{wm})")


def _parse_targets(value) -> List[Tuple[str, int]]:
    """Accept ``[(host, port), ...]``, ``["host:port", ...]``, or a
    comma-separated string."""
    if value is None:
        return []
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",") if part.strip()]
    out = []
    for item in value:
        if isinstance(item, (tuple, list)) and len(item) == 2:
            out.append((str(item[0]), int(item[1])))
            continue
        host, _, port = str(item).rpartition(":")
        if not host or not port.isdigit():
            raise ProtocolError(
                f"failover target must be HOST:PORT, got {item!r}")
        out.append((host, int(port)))
    return out


@dataclass
class ReplayedTuple:
    """One tuple pushed for a base-stream subscription."""

    time: float
    row: tuple
    replayed: bool = False


class RemoteSubscription:
    """A handle on a server-side subscription.

    Mirrors :class:`~repro.core.results.Subscription`: window results
    accumulate as the server pushes them; :meth:`poll` drains.  Base-
    stream subscriptions receive per-tuple pushes instead — drain those
    with :meth:`tuples`.
    """

    def __init__(self, connection: "Connection", sub_id: int, name: str,
                 columns, kind: str, since: Optional[float] = None):
        self._connection = connection
        self.sub = sub_id
        self.name = name
        self.columns = list(columns)
        self.kind = kind              # 'stream' | 'derived' | 'cq' | 'query'
        self.closed = False
        self.close_reason: Optional[str] = None
        self.sheds = 0
        #: the user's original ``since=`` (inclusive) — resume fallback
        #: when nothing has been delivered yet.
        self._since = since
        #: resume cursor: last delivered window close / tuple time.
        #: Survives failover — the re-subscribe sends it as ``since=``
        #: and anything at or before it is dropped as a duplicate.
        self.last_close: Optional[float] = None
        self.last_time: Optional[float] = None
        #: last push sequence number seen (per-subscription, assigned by
        #: the server); a replayed or re-ordered frame arrives with a
        #: smaller-or-equal seq and is dropped.  Reset on failover — the
        #: new primary numbers from 1 again.
        self.last_seq: Optional[int] = None
        #: (open, close) of a retraction awaiting its paired correction.
        #: Event-time retract/correct records must arrive adjacently and
        #: in order; anything else after a failover replay would apply
        #: corrections against the wrong state.
        self._pending_retract: Optional[tuple] = None
        self._windows = deque()
        self._tuples = deque()

    @property
    def resumable(self) -> bool:
        """Named subscriptions resume across failover; ad-hoc CQs from
        ``execute`` don't (their CQ died with the old server)."""
        return self.kind in ("stream", "derived", "cq")

    # -- push routing (called by the connection) ---------------------------

    def _on_push(self, frame: dict) -> None:
        kind = frame.get("push")
        if kind == "window":
            seq = frame.get("seq")
            if seq is not None and self.last_seq is not None:
                if seq <= self.last_seq:
                    return  # re-delivered frame (resume overlap)
                if seq > self.last_seq + 1:
                    # frames were shed between these two: any half-open
                    # retraction pair can no longer be trusted
                    self._pending_retract = None
            if seq is not None:
                self.last_seq = seq
            close = frame["close"]
            record_kind = frame.get("kind", "window")
            if record_kind == "window":
                if self.last_close is not None \
                        and close <= self.last_close + 1e-9:
                    return  # duplicate from a resume overlap
                if self._pending_retract is not None:
                    raise ProtocolError(
                        f"subscription {self.name!r}: retraction of "
                        f"window {self._pending_retract} was not followed "
                        "by its correction (out-of-order delivery)")
                self.last_close = close
            elif record_kind == "retract":
                if self._pending_retract is not None:
                    raise ProtocolError(
                        f"subscription {self.name!r}: retraction of "
                        f"window {self._pending_retract} was not followed "
                        "by its correction (out-of-order delivery)")
                self._pending_retract = (frame["open"], close)
            elif record_kind == "correct":
                pending = self._pending_retract
                if pending is not None \
                        and pending != (frame["open"], close):
                    raise ProtocolError(
                        f"subscription {self.name!r}: correction for "
                        f"window ({frame['open']}, {close}) arrived while "
                        f"retraction of {pending} was pending")
                self._pending_retract = None
            # corrections and early output never advance last_close:
            # the resume cursor tracks *final* windows only, so a
            # failover replay re-derives state from finals
            self._windows.append(WindowResult(
                [tuple(row) for row in frame["rows"]],
                frame["open"], close, kind=record_kind,
                watermark=frame.get("watermark")))
        elif kind == "tuple":
            when = frame["time"]
            if frame.get("replayed") and self.last_time is not None \
                    and when <= self.last_time:
                return  # already delivered before the failover
            if self.last_time is None or when > self.last_time:
                self.last_time = when
            self._tuples.append(ReplayedTuple(
                when, tuple(frame["row"]), bool(frame.get("replayed"))))
        elif kind == "shed":
            self.sheds += frame.get("count", 0)
        elif kind == "sub_closed":
            self.closed = True
            self.close_reason = frame.get("reason")

    # -- draining ----------------------------------------------------------

    def poll(self, timeout: float = 0.0) -> List[WindowResult]:
        """Drain windows pushed since the last poll, reading the socket
        for up to ``timeout`` seconds while none are pending."""
        self._connection._pump_until(
            lambda: self._windows or self.closed, timeout)
        drained = list(self._windows)
        self._windows.clear()
        return drained

    def tuples(self, timeout: float = 0.0) -> List[ReplayedTuple]:
        """Drain tuple pushes (base-stream subscriptions)."""
        self._connection._pump_until(
            lambda: self._tuples or self.closed, timeout)
        drained = list(self._tuples)
        self._tuples.clear()
        return drained

    def wait_windows(self, count: int = 1,
                     timeout: float = 5.0) -> List[WindowResult]:
        """Block until ``count`` windows arrived (or raise on timeout)."""
        self._connection._pump_until(
            lambda: len(self._windows) >= count or self.closed, timeout)
        if len(self._windows) < count and not self.closed:
            raise TimeoutError(
                f"subscription {self.name!r}: {len(self._windows)} of "
                f"{count} windows after {timeout}s")
        drained = list(self._windows)
        self._windows.clear()
        return drained

    def unsubscribe(self) -> None:
        if not self.closed:
            self._connection._request("unsubscribe", sub=self.sub)
            self.closed = True
            self.close_reason = "unsubscribed"

    def __repr__(self):
        state = "closed" if self.closed else "open"
        return (f"RemoteSubscription({self.name}, {state}, "
                f"{len(self._windows)} windows pending)")


class Connection:
    """One synchronous client connection to a TruSQL server."""

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 connect_timeout: Optional[float] = None,
                 failover_targets=None,
                 reconnect_max_backoff: float = 5.0,
                 tenant: Optional[str] = None,
                 clock=None):
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.failover_targets = _parse_targets(failover_targets)
        self.reconnect_max_backoff = float(reconnect_max_backoff)
        self.tenant = tenant
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self.failovers = 0
        self.role: Optional[str] = None
        self._address = (host, port)
        self._rng = random.Random()
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._request_counter = 0
        self._responses = {}
        self._subs = {}
        self._orphans = {}   # pushes for a sub id not registered yet
        self.closed = True
        self.server_goodbye: Optional[str] = None
        self._connect_to(host, port)

    # ------------------------------------------------------------------
    # connection establishment / failover
    # ------------------------------------------------------------------

    def _connect_to(self, host: str, port: int) -> None:
        """Dial and handshake; on *any* failure the socket is closed
        before the error propagates (no descriptor leak)."""
        deadline = (self.connect_timeout if self.connect_timeout is not None
                    else self.timeout)
        try:
            sock = socket.create_connection((host, port), timeout=deadline)
        except socket.timeout:
            raise ConnectionTimeoutError(
                f"connect to {host}:{port} timed out after {deadline}s",
                host=host, port=port) from None
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._decoder = FrameDecoder()
            self._responses = {}
            self.server_goodbye = None
            self.closed = False
            self._address = (host, port)
            hello_fields = {"client": "repro.client"}
            if self.tenant is not None:
                hello_fields["tenant"] = self.tenant
            hello = self._request("hello", **hello_fields)
        except BaseException:
            self.closed = True
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass
            raise
        self.session_id = hello.get("session")
        self.protocol_version = hello.get("protocol")
        self.role = hello.get("role", "primary")
        self.tenant = hello.get("tenant", self.tenant)

    def _failover(self) -> None:
        """Reconnect to the first target answering as a *primary*, then
        resume every named subscription from its cursor."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.closed = True
        candidates = [self._address] + [
            t for t in self.failover_targets if t != self._address]
        overall = self._clock.monotonic() + max(self.timeout, 10.0)
        backoff = 0.1
        last_error: Optional[Exception] = None
        while self._clock.monotonic() < overall:
            for host, port in candidates:
                try:
                    self._connect_to(host, port)
                except (ConnectionError, ConnectionTimeoutError,
                        ProtocolError, OSError) as exc:
                    last_error = exc
                    continue
                if self.role != "primary":
                    # a standby mid-promotion: close, give it time
                    last_error = ProtocolError(
                        f"{host}:{port} is a {self.role}, not a primary")
                    self.close()
                    self.closed = True
                    continue
                self.failovers += 1
                self._resume_subscriptions()
                return
            self._clock.sleep(backoff * (1.0 + self._rng.random() * 0.25))
            backoff = min(backoff * 2, self.reconnect_max_backoff)
        raise ConnectionError(
            f"failover exhausted: no primary among "
            f"{['%s:%s' % c for c in candidates]} ({last_error})")

    def _resume_subscriptions(self) -> None:
        """Re-attach surviving subscriptions on the new primary."""
        old_subs = list(self._subs.values())
        self._subs = {}
        self._orphans = {}
        for sub in old_subs:
            if sub.closed:
                continue
            if not sub.resumable:
                sub.closed = True
                sub.close_reason = "failover"
                continue
            cursor = (sub.last_time if sub.kind == "stream"
                      else sub.last_close)
            since = cursor if cursor is not None else sub._since
            fields = {"name": sub.name}
            if since is not None:
                fields["since"] = since
            response = self._request("subscribe", **fields)
            sub.sub = response["subscription"]["sub"]
            # new server, new per-subscription sequence space; any
            # half-open retraction pair died with the old primary
            sub.last_seq = None
            sub._pending_retract = None
            self._subs[sub.sub] = sub
            for frame in self._orphans.pop(sub.sub, []):
                sub._on_push(frame)

    # ------------------------------------------------------------------
    # Database-shaped API
    # ------------------------------------------------------------------

    def execute(self, sql: str, params=None):
        """Run one TruSQL statement remotely.

        Returns a :class:`ResultSet` for snapshot queries/DML/DDL, or a
        :class:`RemoteSubscription` when the statement is a continuous
        query.  Engine errors raise :class:`RemoteError` carrying the
        server-side exception type name.
        """
        local = self._try_client_option(sql)
        if local is not None:
            return local
        fields = {"sql": sql}
        if params is not None:
            fields["params"] = list(params)
        response = self._request("execute", **fields)
        return self._materialize(response)

    def _try_client_option(self, sql: str) -> Optional[ResultSet]:
        """SET/SHOW of a *client* option (failover_targets,
        reconnect_max_backoff) never touches the server."""
        try:
            from repro.sql import ast, parse_statement
            statement = parse_statement(sql)
        except Exception:
            return None
        if isinstance(statement, ast.SetOption) \
                and statement.name in CLIENT_OPTIONS:
            if statement.name == "failover_targets":
                self.failover_targets = _parse_targets(statement.value)
            else:
                value = statement.value
                if not isinstance(value, (int, float)) \
                        or value is True or value <= 0:
                    raise ProtocolError(
                        "reconnect_max_backoff takes seconds > 0")
                self.reconnect_max_backoff = float(value)
            return ResultSet([], [], None)
        if isinstance(statement, ast.ShowOption) \
                and statement.name in CLIENT_OPTIONS:
            if statement.name == "failover_targets":
                rendered = ",".join(
                    f"{h}:{p}" for h, p in self.failover_targets) or "off"
            else:
                rendered = str(self.reconnect_max_backoff)
            return ResultSet([statement.name], [(rendered,)], 1)
        return None

    def query(self, sql: str, params=None) -> ResultSet:
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise RemoteError(
                "query() got a continuous query; use subscribe()",
                "PlanningError")
        return result

    def subscribe(self, name: str,
                  since: Optional[float] = None) -> RemoteSubscription:
        """Attach to a named stream, derived stream or running CQ.

        ``since`` asks for a replay of what the source retained from
        that event time on before live delivery begins (late-subscriber
        catch-up).  The returned subscription is resumable: it survives
        a server failover by re-subscribing from its last delivered
        position.
        """
        fields = {"name": name}
        if since is not None:
            fields["since"] = since
        response = self._request("subscribe", **fields)
        return self._materialize(response, since=since)

    def ingest(self, stream: str, rows,
               at: Optional[float] = None,
               sender: Optional[str] = None,
               seq: Optional[int] = None,
               retry: bool = True,
               watermark: Optional[float] = None) -> IngestAck:
        """Micro-batched bulk ingest: one frame, many rows.

        Returns an :class:`IngestAck` — an int equal to how many rows
        the stream actually accepted, additionally carrying ``shed``,
        ``dropped`` and ``duplicate`` counts.

        ``(sender, seq)`` makes the batch idempotent: the server
        remembers applied sequence numbers per stream+sender, so a
        retry of the same batch — after a lost ack, a crash, or a
        failover — acks ``duplicate`` and applies nothing.

        Throttled requests (a retryable :class:`AdmissionError` carrying
        ``retry_after_ms``) are retried here with the server's hint plus
        jitter, within this connection's ``timeout`` budget; pass
        ``retry=False`` to surface them instead.  Durable quota
        exhaustion (``retry_after_ms`` null) always raises.

        ``watermark`` piggybacks an explicit event-time watermark
        injection on the batch: the source asserts it will send nothing
        earlier.  Event-time streams ack their watermark back on
        :attr:`IngestAck.watermark`.
        """
        fields = {"stream": stream, "rows": [list(row) for row in rows]}
        if at is not None:
            fields["at"] = at
        if watermark is not None:
            fields["watermark"] = watermark
        if (sender is None) != (seq is None):
            raise ProtocolError(
                "idempotent ingest needs both sender and seq")
        if sender is not None:
            fields["sender"] = str(sender)
            fields["seq"] = int(seq)
        deadline = self._clock.monotonic() + self.timeout
        while True:
            try:
                response = self._request("ingest", **fields)
            except AdmissionError as exc:
                if not retry or not exc.retryable:
                    raise
                wait = (exc.retry_after_ms / 1000.0) \
                    * (1.0 + self._rng.random() * 0.25)
                if self._clock.monotonic() + wait > deadline:
                    raise
                self._clock.sleep(wait)
                continue
            return IngestAck(
                response["accepted"], response.get("shed", 0),
                response.get("dropped", 0), response.get("duplicate", 0),
                response.get("watermark"))

    def advance(self, event_time: float) -> None:
        """Heartbeat every stream to ``event_time`` (closes windows)."""
        self._request("advance", time=event_time)

    def flush(self) -> None:
        """End-of-input: force all pending windows out."""
        self._request("flush")

    def ping(self) -> bool:
        self._request("ping")
        return True

    def promote(self, reason: str = "") -> dict:
        """Ask a standby server to promote itself to primary."""
        response = self._request("promote", reason=reason)
        return response.get("promotion", {})

    def backup(self, dest: str) -> dict:
        """Take an online backup into ``dest`` on the *server's*
        filesystem; returns the backup manifest summary."""
        response = self._request("backup", dest=dest)
        return response.get("backup", {})

    def replication_status(self) -> ResultSet:
        return self.query("SELECT * FROM repro_replication_status")

    def metrics(self) -> dict:
        """Scrape the server's observability surfaces in one round trip.

        Returns ``{view_name: ResultSet}`` for ``repro_metrics``,
        ``repro_cq_stats``, ``repro_operator_stats`` and
        ``repro_traces`` — the same rows a local session would read
        from those system views.
        """
        response = self._request("metrics")
        out = {}
        for name, section in (response.get("metrics") or {}).items():
            out[name] = ResultSet(
                list(section.get("columns", [])),
                [tuple(row) for row in section.get("rows", [])])
        return out

    def shutdown_server(self) -> None:
        """Ask the server to shut down gracefully."""
        self._request("shutdown")

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._request("goodbye", _no_failover=True)
        except (ConnectionError, ProtocolError, OSError):
            pass
        self.closed = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # wire mechanics
    # ------------------------------------------------------------------

    def _request(self, op: str, _no_failover: bool = False,
                 **fields) -> dict:
        if self.closed:
            raise ProtocolError("connection is closed")
        try:
            return self._request_once(op, fields)
        except (ConnectionError, OSError):
            if _no_failover or op == "hello" or not self.failover_targets:
                raise
            self._failover()
            return self._request_once(op, fields)

    def _request_once(self, op: str, fields: dict) -> dict:
        self._request_counter += 1
        request_id = self._request_counter
        frame = {"id": request_id, "op": op}
        frame.update(fields)
        self._sock.sendall(encode_frame(frame))
        deadline = time.monotonic() + self.timeout
        while request_id not in self._responses:
            if self.closed:
                detail = (f" (server said goodbye: {self.server_goodbye})"
                          if self.server_goodbye else "")
                raise ConnectionError(
                    f"connection lost awaiting {op!r} response{detail}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProtocolError(
                    f"no response to {op!r} within {self.timeout}s")
            self._read_some(remaining)
        response = self._responses.pop(request_id)
        if not response.get("ok", False):
            error = response.get("error") or {}
            message = error.get("message", "unknown server error")
            if error.get("type") == "AdmissionError":
                # rebuild the typed error so callers can branch on
                # retryable vs durable refusals without string matching
                raise AdmissionError(
                    message,
                    retry_after_ms=error.get("retry_after_ms"),
                    tenant=error.get("tenant", ""),
                    reason=error.get("reason", ""))
            if error.get("type") == "ReplicationGapError":
                # typed so a standby can log / react to the exact
                # missing range instead of parsing the message
                raise ReplicationGapError(
                    message,
                    missing_from=error.get("missing_from", 0),
                    missing_to=error.get("missing_to", 0))
            raise RemoteError(message, error.get("type", "TruvisoError"))
        return response

    def _materialize(self, response: dict, since: Optional[float] = None):
        subscription = response.get("subscription")
        if subscription is not None:
            sub = RemoteSubscription(
                self, subscription["sub"], subscription["name"],
                subscription["columns"], subscription["kind"],
                since=since)
            self._subs[sub.sub] = sub
            for frame in self._orphans.pop(sub.sub, []):
                sub._on_push(frame)
            return sub
        result = response.get("result") or {}
        return ResultSet(
            result.get("columns", []),
            [tuple(row) for row in result.get("rows", [])],
            result.get("rowcount"))

    def _read_some(self, timeout: float) -> bool:
        """Read one chunk off the socket (blocking up to ``timeout``)
        and dispatch whatever frames completed.  Returns False when the
        wait timed out with nothing read."""
        self._sock.settimeout(max(timeout, 0.001))
        try:
            data = self._sock.recv(65536)
        except socket.timeout:
            return False
        except OSError as exc:
            raise ConnectionError(f"socket error: {exc}") from None
        if not data:
            self.closed = True
            if self.server_goodbye is None:
                raise ConnectionError("server closed the connection")
            return False
        for frame in self._decoder.feed(data):
            self._dispatch(frame)
        return True

    def _dispatch(self, frame: dict) -> None:
        if "push" in frame:
            if frame["push"] == "goodbye":
                self.server_goodbye = frame.get("reason", "goodbye")
                return
            sub = self._subs.get(frame.get("sub"))
            if sub is not None:
                sub._on_push(frame)
            else:
                self._orphans.setdefault(
                    frame.get("sub"), []).append(frame)
            return
        if "id" in frame:
            self._responses[frame["id"]] = frame
            return
        raise ProtocolError(f"unroutable frame: {frame!r}")

    def _pump_until(self, ready, timeout: float) -> None:
        """Read pushes until ``ready()`` or the timeout lapses.  A zero
        timeout still drains whatever already sits in the socket.  A
        dead socket triggers failover (when targets are configured) so
        a subscriber blocked in ``poll`` rides through a primary crash.
        """
        deadline = time.monotonic() + timeout
        while True:
            if ready():
                # drain anything else already buffered, without blocking
                try:
                    while not self.closed and self._read_some(0.001):
                        pass
                except ConnectionError:
                    self._maybe_failover()
                return
            if self.closed:
                if not self._maybe_failover():
                    return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if timeout > 0:
                    return
                remaining = 0.001
            try:
                got = self._read_some(min(remaining, 0.25)
                                      if timeout > 0 else remaining)
            except ConnectionError:
                if not self._maybe_failover():
                    return
                got = False
            if timeout <= 0 and not got:
                return

    def _maybe_failover(self) -> bool:
        """Failover from inside the pump; False when not possible."""
        if not self.failover_targets or self.server_goodbye is not None:
            return False
        try:
            self._failover()
            return True
        except (ConnectionError, ProtocolError, OSError):
            return False
