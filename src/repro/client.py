"""A synchronous TruSQL client.

The blocking counterpart of :mod:`repro.server`: one TCP connection,
the length-prefixed JSON frame protocol, and an API that mirrors the
embedded :class:`~repro.core.database.Database` so code moves between
embedded and client/server mode with minimal edits::

    import repro.client

    with repro.client.connect("127.0.0.1", 5433) as conn:
        conn.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        sub = conn.execute("SELECT count(*) c FROM s <VISIBLE '1 minute'>")
        conn.ingest("s", [(7, 5.0)])
        conn.advance(60.0)
        for window in sub.poll(timeout=2.0):
            print(window.close_time, window.rows)

Window/tuple pushes arrive whenever the socket is read; the connection
routes them to their :class:`RemoteSubscription` while it waits for
request responses, so a second subscription never blocks the first.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro.core.results import ResultSet, WindowResult
from repro.errors import ProtocolError, RemoteError
from repro.server.protocol import FrameDecoder, encode_frame


def connect(host: str = "127.0.0.1", port: int = 5433,
            timeout: float = 10.0) -> "Connection":
    """Open a client connection and perform the hello handshake."""
    return Connection(host, port, timeout)


@dataclass
class ReplayedTuple:
    """One tuple pushed for a base-stream subscription."""

    time: float
    row: tuple
    replayed: bool = False


class RemoteSubscription:
    """A handle on a server-side subscription.

    Mirrors :class:`~repro.core.results.Subscription`: window results
    accumulate as the server pushes them; :meth:`poll` drains.  Base-
    stream subscriptions receive per-tuple pushes instead — drain those
    with :meth:`tuples`.
    """

    def __init__(self, connection: "Connection", sub_id: int, name: str,
                 columns, kind: str):
        self._connection = connection
        self.sub = sub_id
        self.name = name
        self.columns = list(columns)
        self.kind = kind
        self.closed = False
        self.close_reason: Optional[str] = None
        self.sheds = 0
        self._windows = deque()
        self._tuples = deque()

    # -- push routing (called by the connection) ---------------------------

    def _on_push(self, frame: dict) -> None:
        kind = frame.get("push")
        if kind == "window":
            self._windows.append(WindowResult(
                [tuple(row) for row in frame["rows"]],
                frame["open"], frame["close"]))
        elif kind == "tuple":
            self._tuples.append(ReplayedTuple(
                frame["time"], tuple(frame["row"]),
                bool(frame.get("replayed"))))
        elif kind == "shed":
            self.sheds += frame.get("count", 0)
        elif kind == "sub_closed":
            self.closed = True
            self.close_reason = frame.get("reason")

    # -- draining ----------------------------------------------------------

    def poll(self, timeout: float = 0.0) -> List[WindowResult]:
        """Drain windows pushed since the last poll, reading the socket
        for up to ``timeout`` seconds while none are pending."""
        self._connection._pump_until(
            lambda: self._windows or self.closed, timeout)
        drained = list(self._windows)
        self._windows.clear()
        return drained

    def tuples(self, timeout: float = 0.0) -> List[ReplayedTuple]:
        """Drain tuple pushes (base-stream subscriptions)."""
        self._connection._pump_until(
            lambda: self._tuples or self.closed, timeout)
        drained = list(self._tuples)
        self._tuples.clear()
        return drained

    def wait_windows(self, count: int = 1,
                     timeout: float = 5.0) -> List[WindowResult]:
        """Block until ``count`` windows arrived (or raise on timeout)."""
        self._connection._pump_until(
            lambda: len(self._windows) >= count or self.closed, timeout)
        if len(self._windows) < count and not self.closed:
            raise TimeoutError(
                f"subscription {self.name!r}: {len(self._windows)} of "
                f"{count} windows after {timeout}s")
        drained = list(self._windows)
        self._windows.clear()
        return drained

    def unsubscribe(self) -> None:
        if not self.closed:
            self._connection._request("unsubscribe", sub=self.sub)
            self.closed = True
            self.close_reason = "unsubscribed"

    def __repr__(self):
        state = "closed" if self.closed else "open"
        return (f"RemoteSubscription({self.name}, {state}, "
                f"{len(self._windows)} windows pending)")


class Connection:
    """One synchronous client connection to a TruSQL server."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder()
        self._request_counter = 0
        self._responses = {}
        self._subs = {}
        self._orphans = {}   # pushes for a sub id not registered yet
        self.closed = False
        self.server_goodbye: Optional[str] = None
        hello = self._request("hello", client="repro.client")
        self.session_id = hello.get("session")
        self.protocol_version = hello.get("protocol")

    # ------------------------------------------------------------------
    # Database-shaped API
    # ------------------------------------------------------------------

    def execute(self, sql: str, params=None):
        """Run one TruSQL statement remotely.

        Returns a :class:`ResultSet` for snapshot queries/DML/DDL, or a
        :class:`RemoteSubscription` when the statement is a continuous
        query.  Engine errors raise :class:`RemoteError` carrying the
        server-side exception type name.
        """
        fields = {"sql": sql}
        if params is not None:
            fields["params"] = list(params)
        response = self._request("execute", **fields)
        return self._materialize(response)

    def query(self, sql: str, params=None) -> ResultSet:
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise RemoteError(
                "query() got a continuous query; use subscribe()",
                "PlanningError")
        return result

    def subscribe(self, name: str,
                  since: Optional[float] = None) -> RemoteSubscription:
        """Attach to a named stream, derived stream or running CQ.

        ``since`` asks for a replay of the stream's retained tail from
        that event time before live delivery begins (late-subscriber
        catch-up; the stream needs ``retention`` configured).
        """
        fields = {"name": name}
        if since is not None:
            fields["since"] = since
        response = self._request("subscribe", **fields)
        return self._materialize(response)

    def ingest(self, stream: str, rows,
               at: Optional[float] = None) -> int:
        """Micro-batched bulk ingest: one frame, many rows.  Returns how
        many rows the stream actually accepted (net of load shedding)."""
        fields = {"stream": stream, "rows": [list(row) for row in rows]}
        if at is not None:
            fields["at"] = at
        response = self._request("ingest", **fields)
        return response["accepted"]

    def advance(self, event_time: float) -> None:
        """Heartbeat every stream to ``event_time`` (closes windows)."""
        self._request("advance", time=event_time)

    def flush(self) -> None:
        """End-of-input: force all pending windows out."""
        self._request("flush")

    def ping(self) -> bool:
        self._request("ping")
        return True

    def shutdown_server(self) -> None:
        """Ask the server to shut down gracefully."""
        self._request("shutdown")

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._request("goodbye")
        except (ConnectionError, ProtocolError, OSError):
            pass
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # wire mechanics
    # ------------------------------------------------------------------

    def _request(self, op: str, **fields) -> dict:
        if self.closed:
            raise ProtocolError("connection is closed")
        self._request_counter += 1
        request_id = self._request_counter
        frame = {"id": request_id, "op": op}
        frame.update(fields)
        self._sock.sendall(encode_frame(frame))
        deadline = time.monotonic() + self.timeout
        while request_id not in self._responses:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProtocolError(
                    f"no response to {op!r} within {self.timeout}s")
            self._read_some(remaining)
        response = self._responses.pop(request_id)
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise RemoteError(error.get("message", "unknown server error"),
                              error.get("type", "TruvisoError"))
        return response

    def _materialize(self, response: dict):
        subscription = response.get("subscription")
        if subscription is not None:
            sub = RemoteSubscription(
                self, subscription["sub"], subscription["name"],
                subscription["columns"], subscription["kind"])
            self._subs[sub.sub] = sub
            for frame in self._orphans.pop(sub.sub, []):
                sub._on_push(frame)
            return sub
        result = response.get("result") or {}
        return ResultSet(
            result.get("columns", []),
            [tuple(row) for row in result.get("rows", [])],
            result.get("rowcount"))

    def _read_some(self, timeout: float) -> bool:
        """Read one chunk off the socket (blocking up to ``timeout``)
        and dispatch whatever frames completed.  Returns False when the
        wait timed out with nothing read."""
        self._sock.settimeout(max(timeout, 0.001))
        try:
            data = self._sock.recv(65536)
        except socket.timeout:
            return False
        except OSError as exc:
            raise ConnectionError(f"socket error: {exc}") from None
        if not data:
            self.closed = True
            if self.server_goodbye is None:
                raise ConnectionError("server closed the connection")
            return False
        for frame in self._decoder.feed(data):
            self._dispatch(frame)
        return True

    def _dispatch(self, frame: dict) -> None:
        if "push" in frame:
            if frame["push"] == "goodbye":
                self.server_goodbye = frame.get("reason", "goodbye")
                return
            sub = self._subs.get(frame.get("sub"))
            if sub is not None:
                sub._on_push(frame)
            else:
                self._orphans.setdefault(
                    frame.get("sub"), []).append(frame)
            return
        if "id" in frame:
            self._responses[frame["id"]] = frame
            return
        raise ProtocolError(f"unroutable frame: {frame!r}")

    def _pump_until(self, ready, timeout: float) -> None:
        """Read pushes until ``ready()`` or the timeout lapses.  A zero
        timeout still drains whatever already sits in the socket."""
        deadline = time.monotonic() + timeout
        while True:
            if ready():
                # drain anything else already buffered, without blocking
                while not self.closed and self._read_some(0.001):
                    pass
                return
            if self.closed:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if timeout > 0:
                    return
                remaining = 0.001
            try:
                got = self._read_some(min(remaining, 0.25)
                                      if timeout > 0 else remaining)
            except ConnectionError:
                return
            if timeout <= 0 and not got:
                return
