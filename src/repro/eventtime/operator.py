"""Event-time window operator: watermark-driven closes, bounded
lateness, and retraction-correct slices.

Arrival-time windows (:class:`~repro.streaming.windows.TimeWindowOperator`)
close as soon as a tuple's timestamp proves the boundary passed; under
reordered traffic that silently drops or mis-assigns late rows.  This
operator keeps the same boundary arithmetic and recovery-visible state
(``_buffer`` / ``_base`` / ``_boundary_index``) but:

- **assigns** every tuple to slices by its *event time* (the stream's
  designated timestamp column), regardless of arrival order;
- **closes** windows only when the stream's watermark passes the
  boundary (delivered as heartbeats by the event-time stream), never
  on raw tuple arrival;
- **classifies** tuples below the watermark as late and applies the
  CQ's lateness policy; under ``retract`` an in-bound late tuple
  re-opens each closed slice it belonged to, recomputes it from the
  retained buffer (incremental: only the affected slices, not the
  whole history), and reports it through ``on_correction`` so the CQ
  can emit a typed retract/correct pair;
- implements ``EMIT`` control: ``ON WATERMARK`` (default — final
  results only), ``ON CHANGE`` (speculative early emission of the
  open slice on every change), and ``EVERY '<dur>'`` (periodic early
  emission by event time).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import WindowError
from repro.eventtime.lateness import DROP, LATENESS_POLICIES, RETRACT
from repro.streaming.windows import Sink, TimeWindowOperator

EMIT_ON_WATERMARK = "watermark"
EMIT_ON_CHANGE = "change"
EMIT_PERIODIC = "every"

#: on_late callback: (row, event_time, watermark, expired)
LateFn = Callable[[tuple, float, float, bool], None]
#: on_correction / on_early callback: (rows, open_time, close_time)
CorrectionFn = Callable[[list, float, float], None]


class EventTimeWindowOperator(TimeWindowOperator):
    """Time window driven by event time and watermarks.

    ``wm_fn`` returns the source stream's current watermark; closes
    happen in :meth:`on_heartbeat` (the event-time stream broadcasts a
    heartbeat whenever its watermark advances), so tuple arrival never
    closes a window by itself.
    """

    def __init__(self, visible: float, advance: float, sink: Sink,
                 emit_empty: bool = True, *,
                 wm_fn: Callable[[], float],
                 allowed_lateness: float = 0.0,
                 late_policy: str = DROP,
                 on_late: Optional[LateFn] = None,
                 on_correction: Optional[CorrectionFn] = None,
                 on_early: Optional[CorrectionFn] = None,
                 emit_mode: str = EMIT_ON_WATERMARK,
                 emit_every: Optional[float] = None):
        super().__init__(visible, advance, sink, emit_empty)
        if late_policy not in LATENESS_POLICIES:
            raise WindowError(
                f"unknown lateness policy {late_policy!r}; choose one of "
                f"{', '.join(LATENESS_POLICIES)}")
        if math.isinf(self.visible):
            raise WindowError(
                "event-time windows require a finite VISIBLE extent")
        self.wm_fn = wm_fn
        self.allowed_lateness = float(allowed_lateness)
        self.late_policy = late_policy
        self.on_late = on_late
        self.on_correction = on_correction
        self.on_early = on_early
        self.emit_mode = emit_mode
        self.emit_every = emit_every
        self.late_rows = 0           # tuples below the watermark
        self.expired_rows = 0        # late beyond allowed_lateness
        self.corrections = 0         # closed slices recomputed
        self.early_emits = 0
        self._last_early = float("-inf")
        self._flushing = False
        # under retract, closed slices stay recomputable for the
        # lateness bound; one extra ADVANCE covers the boundary that
        # closed just before the watermark the late tuple is judged by
        if late_policy == RETRACT:
            self._retain_extra = self.allowed_lateness + self.advance
        else:
            self._retain_extra = 0.0

    # -- consumer protocol ------------------------------------------------------

    def on_tuple(self, row: tuple, event_time: float) -> None:
        if self._base is None:
            self._start_at(event_time)
        elif self._boundary_index == 1 and event_time < self._base:
            # the grid started on a reordered later row; an earlier
            # on-time row pulls the first close back so its windows
            # still emit (nothing has closed yet — an on-time row is
            # never behind a closed boundary)
            self._start_at(event_time)
        watermark = self.wm_fn()
        if event_time < watermark:
            self._on_late_tuple(row, event_time, watermark)
            return
        self._buffer.append((event_time, row))
        self.tuples_in += 1
        if self.emit_mode != EMIT_ON_WATERMARK:
            self._maybe_emit_early(event_time)

    def on_heartbeat(self, event_time: float) -> None:
        # the event-time stream broadcasts every watermark advance as a
        # heartbeat — on ordered traffic that is once per tuple, so the
        # no-close case must be a single inline compare
        base = self._base
        if base is None \
                or base + self._boundary_index * self.advance > event_time:
            return
        self._close_through(event_time)

    def on_flush(self) -> None:
        self._flushing = True
        super().on_flush()

    # -- lateness ---------------------------------------------------------------

    def _on_late_tuple(self, row: tuple, event_time: float,
                       watermark: float) -> None:
        self.late_rows += 1
        if self.late_policy == RETRACT:
            if event_time >= watermark - self.allowed_lateness:
                self._buffer.append((event_time, row))
                self.tuples_in += 1
                if self.on_late is not None:
                    self.on_late(row, event_time, watermark, False)
                self._recompute_closed(event_time, watermark)
                return
            self.expired_rows += 1
            if self.on_late is not None:
                self.on_late(row, event_time, watermark, True)
            return
        if self.on_late is not None:
            self.on_late(row, event_time, watermark, False)

    def _recompute_closed(self, event_time: float,
                          watermark: float) -> None:
        """Re-open and recompute every slice the late tuple belongs to
        that the watermark has already passed: boundaries ``B`` on the
        (epoch-aligned) advance grid with ``event_time < B <=
        event_time + visible`` and ``B <= watermark``.  That covers
        both slices that closed normally and slices the watermark
        overtook before the grid started (the operator booted on a
        reordered later row) — those were never emitted, so the
        correction is their first output.  Boundaries still ahead of
        the watermark are left alone: they close later and the buffered
        row is simply part of them.  Only the affected slices are
        recomputed."""
        if self.on_correction is None:
            return
        boundary = (math.floor(event_time / self.advance) + 1) * self.advance
        while boundary <= watermark \
                and boundary - self.visible <= event_time:
            open_time = boundary - self.visible
            rows = [r for when, r in self._buffer
                    if open_time <= when < boundary]
            self.corrections += 1
            self.on_correction(rows, open_time, boundary)
            boundary += self.advance

    # -- EMIT control -----------------------------------------------------------

    def _maybe_emit_early(self, event_time: float) -> None:
        if self.on_early is None:
            return
        if self.emit_mode == EMIT_PERIODIC:
            if self.emit_every is None \
                    or event_time < self._last_early + self.emit_every:
                return
            self._last_early = event_time
        boundary = self._next_boundary()
        open_time = boundary - self.visible
        rows = [r for when, r in self._buffer
                if open_time <= when < boundary]
        self.early_emits += 1
        self.on_early(rows, open_time, boundary)

    # -- close / eviction -------------------------------------------------------

    def _close(self, boundary: float) -> None:
        open_time = boundary - self.visible
        visible_rows = [
            row for when, row in self._buffer
            if open_time <= when < boundary
        ]
        self._boundary_index += 1
        # keep closed slices recomputable for the lateness bound; the
        # buffer is arrival-ordered (not time-sorted), so only the
        # stale *prefix* is popped — rows parked behind a fresher one
        # fall out on a later close, which retains slightly longer but
        # never evicts a row a recomputation could still need
        extra = 0.0 if self._flushing else self._retain_extra
        horizon = self._next_boundary() - self.visible - extra
        while self._buffer and self._buffer[0][0] < horizon:
            self._buffer.popleft()
        self.windows_closed += 1
        self.rows_emitted += len(visible_rows)
        if visible_rows or self.emit_empty:
            self.sink(visible_rows, open_time, boundary)
