"""Per-stream watermark tracking.

A watermark is the engine's promise that no tuple with event time
below it will be accepted into open windows anymore.  The tracker
combines two sources, both monotone:

- a **bounded-out-of-orderness generator**: watermark chases
  ``max_event_time - bound`` as tuples are observed (the stream's
  ``WATERMARK '<bound>'`` DDL clause);
- **explicit injection**: an upstream source that knows its own
  completeness (ingest ``watermark=`` stamps, ``ADVANCE`` API) can
  push the watermark forward directly.

The published watermark is the max of the two and never regresses —
including across WAL replay and standby promotion, where observed
rows and injected advances are replayed through the same two entry
points.
"""

from __future__ import annotations

from typing import Optional

NEG_INF = float("-inf")


class WatermarkTracker:
    """Monotone event-time watermark for one stream."""

    __slots__ = ("bound", "max_event_time", "injected", "watermark",
                 "late_rows", "injections")

    def __init__(self, bound: float):
        if bound < 0:
            raise ValueError("watermark bound must be >= 0 seconds")
        self.bound = float(bound)
        self.max_event_time = NEG_INF   # highest event time observed
        self.injected = NEG_INF        # highest explicit injection
        self.watermark = NEG_INF       # published, monotone
        self.late_rows = 0             # observed below the watermark
        self.injections = 0

    def observe(self, event_time: float) -> Optional[float]:
        """Account one tuple's event time.  Returns the new watermark
        when this observation advanced it, else None."""
        if event_time < self.watermark:
            self.late_rows += 1
        if event_time > self.max_event_time:
            self.max_event_time = event_time
            candidate = event_time - self.bound
            if candidate > self.watermark:
                self.watermark = candidate
                return candidate
        return None

    def inject(self, watermark: float) -> Optional[float]:
        """Explicitly assert completeness through ``watermark``.
        Regression attempts are ignored (monotonicity).  Returns the
        new watermark when it advanced, else None."""
        self.injections += 1
        if watermark > self.injected:
            self.injected = watermark
        if watermark > self.watermark:
            self.watermark = watermark
            return watermark
        return None

    def is_late(self, event_time: float) -> bool:
        return event_time < self.watermark

    def lag(self) -> float:
        """How far the watermark trails the freshest data (0 when no
        data has been seen yet)."""
        if self.max_event_time == NEG_INF or self.watermark == NEG_INF:
            return 0.0
        return max(0.0, self.max_event_time - self.watermark)

    def __repr__(self):
        return (f"WatermarkTracker(bound={self.bound}, "
                f"watermark={self.watermark}, "
                f"max_event_time={self.max_event_time})")
