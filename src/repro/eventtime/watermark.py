"""Per-stream watermark tracking.

A watermark is the engine's promise that no tuple with event time
below it will be accepted into open windows anymore.  The tracker
combines two sources, both monotone:

- a **bounded-out-of-orderness generator**: watermark chases
  ``max_event_time - bound`` as tuples are observed (the stream's
  ``WATERMARK '<bound>'`` DDL clause);
- **explicit injection**: an upstream source that knows its own
  completeness (ingest ``watermark=`` stamps, ``ADVANCE`` API) can
  push the watermark forward directly.

The published watermark is the max of the two and never regresses —
including across WAL replay and standby promotion, where observed
rows and injected advances are replayed through the same two entry
points.
"""

from __future__ import annotations

from typing import Optional

NEG_INF = float("-inf")


class WatermarkTracker:
    """Monotone event-time watermark for one stream."""

    __slots__ = ("bound", "max_event_time", "injected", "watermark",
                 "late_rows", "injections")

    def __init__(self, bound: float):
        if bound < 0:
            raise ValueError("watermark bound must be >= 0 seconds")
        self.bound = float(bound)
        self.max_event_time = NEG_INF   # highest event time observed
        self.injected = NEG_INF        # highest explicit injection
        self.watermark = NEG_INF       # published, monotone
        self.late_rows = 0             # observed below the watermark
        self.injections = 0

    def observe(self, event_time: float) -> Optional[float]:
        """Account one tuple's event time.  Returns the new watermark
        when this observation advanced it, else None."""
        if event_time < self.watermark:
            self.late_rows += 1
        if event_time > self.max_event_time:
            self.max_event_time = event_time
            candidate = event_time - self.bound
            if candidate > self.watermark:
                self.watermark = candidate
                return candidate
        return None

    def inject(self, watermark: float) -> Optional[float]:
        """Explicitly assert completeness through ``watermark``.
        Regression attempts are ignored (monotonicity).  Returns the
        new watermark when it advanced, else None."""
        self.injections += 1
        if watermark > self.injected:
            self.injected = watermark
        if watermark > self.watermark:
            self.watermark = watermark
            return watermark
        return None

    def is_late(self, event_time: float) -> bool:
        return event_time < self.watermark

    def lag(self) -> float:
        """How far the watermark trails the freshest data (0 when no
        data has been seen yet)."""
        if self.max_event_time == NEG_INF or self.watermark == NEG_INF:
            return 0.0
        return max(0.0, self.max_event_time - self.watermark)

    def __repr__(self):
        return (f"WatermarkTracker(bound={self.bound}, "
                f"watermark={self.watermark}, "
                f"max_event_time={self.max_event_time})")


class WatermarkMerge:
    """Minimum-of-inputs watermark across a fixed set of named inputs.

    Used wherever one consumer fans in from several independently
    progressing producers — partition workers reporting per-shard
    watermarks, or multiple upstream streams feeding one operator.  The
    merged watermark is ``min(latest per input)``: it only moves when
    the *slowest* input moves, so a stalled input holds the merge down
    and an out-of-order (regressing) report from one input is ignored
    per-input monotonicity before the min is taken.

    Inputs that have never reported hold the merge at ``-inf``.
    """

    __slots__ = ("_inputs", "merged")

    def __init__(self, input_ids):
        ids = list(input_ids)
        if not ids:
            raise ValueError("WatermarkMerge needs at least one input")
        self._inputs = {input_id: NEG_INF for input_id in ids}
        self.merged = NEG_INF

    def update(self, input_id, watermark: float) -> Optional[float]:
        """Record ``input_id``'s latest watermark.  Returns the new
        merged watermark when this report advanced it, else None.
        Per-input regressions are ignored (each input is monotone)."""
        if input_id not in self._inputs:
            raise KeyError(f"unknown watermark input: {input_id!r}")
        if watermark > self._inputs[input_id]:
            self._inputs[input_id] = watermark
            candidate = min(self._inputs.values())
            if candidate > self.merged:
                self.merged = candidate
                return candidate
        return None

    def input_watermark(self, input_id) -> float:
        return self._inputs[input_id]

    def inputs(self):
        return dict(self._inputs)

    def __repr__(self):
        return f"WatermarkMerge(merged={self.merged}, inputs={self._inputs})"
