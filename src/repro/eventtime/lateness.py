"""Bounded-lateness policies and the structured late-event reason.

A tuple is *late* when its event time is below the stream's watermark
at arrival: some window it belonged to has already closed.  Per-CQ
policy (the ``ALLOW LATENESS`` clause) decides what happens:

- ``DROP`` — count it (``eventtime.late_rows``) and discard.
- ``DEAD LETTER`` — quarantine it on ``repro_dead_letter_stream``
  with kind :data:`LATE_EVENT` and a structured reason, so a CQ can
  watch late traffic like any other failure feed.
- ``RETRACT`` — if the tuple is within the allowed lateness bound,
  re-open the affected slices, recompute them incrementally, and flow
  retraction/correction records downstream; beyond the bound it is
  dead-lettered (expired).
"""

from __future__ import annotations

DROP = "drop"
DEAD_LETTER = "dead_letter"
RETRACT = "retract"
LATENESS_POLICIES = (DROP, DEAD_LETTER, RETRACT)

#: dead-letter kind for rows rejected by a lateness policy (joins the
#: supervisor's POISON_WINDOW / LOAD_SHED / ... constants)
LATE_EVENT = "late-event"


def late_reason(event_time: float, watermark: float,
                expired: bool = False) -> str:
    """The structured reason string carried by a late-event dead
    letter: stable ``key=value`` fields (kind, event ts, watermark at
    drop time, lateness) rather than prose, matching the supervisor's
    quarantine record shape so operators can parse it."""
    kind = "late_event_expired" if expired else "late_event"
    return (f"{kind}: event_time={event_time!r} watermark={watermark!r} "
            f"lateness={max(0.0, watermark - event_time)!r}")
