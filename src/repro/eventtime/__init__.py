"""Event-time processing: watermarks, bounded lateness, retractions.

The paper assumes perfectly ordered streams; real network-effect
traffic arrives late and out of order.  This package owns event-time
semantics end to end, following "One SQL to Rule Them All"
(Begoli/Hyde et al., PAPERS.md):

- :mod:`repro.eventtime.watermark` — per-stream
  :class:`WatermarkTracker`: a bounded-out-of-orderness watermark
  generator plus explicit injection (``ADVANCE``/ingest watermarks),
  generalizing the engine's heartbeat/punctuation machinery.
- :mod:`repro.eventtime.lateness` — the bounded-lateness policies
  (``drop`` / ``dead_letter`` / ``retract``) and the structured
  dead-letter reason for late events.
- :mod:`repro.eventtime.operator` —
  :class:`EventTimeWindowOperator`: window assignment by the
  designated event-time column instead of arrival order, closes on
  watermark, re-opens and incrementally recomputes slices for
  in-bound late rows under ``retract``, and implements ``EMIT``
  control (on watermark / on change / periodic).
"""

from repro.eventtime.lateness import (  # noqa: F401
    DEAD_LETTER,
    DROP,
    LATE_EVENT,
    LATENESS_POLICIES,
    RETRACT,
    late_reason,
)
from repro.eventtime.watermark import WatermarkTracker  # noqa: F401

_OPERATOR_EXPORTS = (
    "EMIT_ON_CHANGE",
    "EMIT_ON_WATERMARK",
    "EMIT_PERIODIC",
    "EventTimeWindowOperator",
)


def __getattr__(name):
    # repro.streaming.streams imports this package for WatermarkTracker
    # while repro.streaming is itself still initializing; the operator
    # module depends on repro.streaming.windows, so it must load lazily.
    if name in _OPERATOR_EXPORTS:
        from repro.eventtime import operator

        return getattr(operator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
