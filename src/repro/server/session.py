"""Per-connection sessions: options, subscriptions, slow-client policy.

A session owns everything one client connection can see: its session-
scoped ``SET`` options, its live subscriptions, and a bounded outbound
buffer of push frames.  Engine-side window/tuple sinks run on the
single-writer engine thread (:mod:`repro.server.engine`) and append to
that buffer; an asyncio writer task drains it to the socket.  When a
client reads slower than its subscriptions produce, the buffer hits the
session's high-water mark and the engine's backpressure vocabulary
applies (PR 1's policies, surfaced as protocol frames):

- ``shed-oldest`` — drop the oldest buffered push, tell the client with
  a ``shed`` frame, and (under supervision) quarantine the dropped
  payload as a ``slow-consumer`` dead letter;
- ``block`` — the engine thread waits (bounded by ``block_timeout``)
  for the writer to drain: real backpressure, propagated to every
  producer on the engine thread.  On timeout it degrades to shedding so
  one dead client cannot freeze the server;
- ``raise`` (alias ``error``) — the subscription is cancelled and the
  client told with a ``sub_closed`` frame.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.catalog import catalog as cat
from repro.core.results import ResultSet, Subscription
from repro.errors import (
    ExecutionError,
    StreamingError,
    UnknownObjectError,
)
from repro.server import protocol
from repro.sql import ast, parse_statement
from repro.streaming.streams import StreamConsumer

#: slow-client policies (the engine's backpressure vocabulary + an alias)
POLICY_BLOCK = "block"
POLICY_SHED = "shed-oldest"
POLICY_RAISE = "raise"
SESSION_POLICIES = (POLICY_BLOCK, POLICY_SHED, POLICY_RAISE)

#: options owned by the session, not the shared engine
SESSION_OPTIONS = ("subscribe_policy", "subscribe_high_water",
                   "block_timeout")


class SubscriptionEntry:
    """One live subscription: its sink, counters, and detach hook."""

    def __init__(self, sub_id: int, name: str, kind: str, columns):
        self.sub_id = sub_id
        self.name = name
        self.kind = kind              # 'stream' | 'derived' | 'cq' | 'query'
        self.columns = list(columns)
        self.detach: Optional[Callable[[], None]] = None
        self.sink: Optional[SessionSink] = None
        self.windows_pushed = 0
        self.tuples_pushed = 0
        self.sheds = 0
        self.broken = False
        self.close_reason: Optional[str] = None
        # per-subscription monotone push sequence: every window-shaped
        # frame (finals *and* retract/correct/early records) carries the
        # next number, so a client can detect shed or re-ordered frames
        self.push_seq = 0

    def next_seq(self) -> int:
        self.push_seq += 1
        return self.push_seq


class SessionSink(StreamConsumer):
    """The engine-side consumer that forwards to one session.

    Never raises out of a callback: a broken or slow client must not
    poison delivery to the engine's other subscribers.
    """

    def __init__(self, session: "Session", entry: SubscriptionEntry):
        self.session = session
        self.entry = entry
        # set for event-time sources: zero-arg callable returning the
        # source stream's watermark, stamped onto every window push
        self.watermark_fn = None

    def _watermark(self):
        fn = self.watermark_fn
        return fn() if fn is not None else None

    # base streams call these -------------------------------------------------

    def on_tuple(self, row, event_time) -> None:
        entry = self.entry
        if entry.broken:
            return
        entry.tuples_pushed += 1
        self.session.enqueue_push(
            entry, protocol.tuple_push(entry.sub_id, row, event_time))

    def on_heartbeat(self, event_time) -> None:  # time flows via windows
        return

    def on_flush(self) -> None:
        return

    # derived streams / CQ sinks call these -----------------------------------

    def on_batch(self, rows, open_time, close_time) -> None:
        entry = self.entry
        if entry.broken:
            return
        entry.windows_pushed += 1
        self.session.enqueue_push(
            entry,
            protocol.window_push(entry.sub_id, rows, open_time, close_time,
                                 seq=entry.next_seq(),
                                 watermark=self._watermark()))

    def on_correction(self, kind, rows, open_time, close_time) -> None:
        """A typed event-time record (retract / correct / early) —
        pushed as a window frame carrying its ``kind``, in sequence
        with the finals, so the client sees retraction pairs in the
        exact order the engine emitted them."""
        entry = self.entry
        if entry.broken:
            return
        entry.windows_pushed += 1
        self.session.enqueue_push(
            entry,
            protocol.window_push(entry.sub_id, rows, open_time, close_time,
                                 kind=kind, seq=entry.next_seq(),
                                 watermark=self._watermark()))

    def window_sink(self, rows, open_time, close_time) -> None:
        """The ``fn(rows, open, close)`` shape CQ sinks expect."""
        self.on_batch(rows, open_time, close_time)


class Session:
    """State and op handlers for one client connection.

    The async handler methods run on the event loop; anything touching
    the engine is submitted to the server's single-writer executor.
    """

    def __init__(self, session_id: int, server, peer: str):
        self.session_id = session_id
        self.server = server
        self.peer = peer
        self.state = "active"
        # the server's injectable clock: idle accounting must follow the
        # same time source the reaper reads (ManualClock in tests)
        self.clock = getattr(server, "clock", None)
        if self.clock is None:
            from repro.clock import SYSTEM_CLOCK
            self.clock = SYSTEM_CLOCK
        self.started_monotonic = self.clock.monotonic()
        # updated by the server on every inbound frame; the idle reaper
        # closes sessions whose silence exceeds the server's idle_timeout.
        # Kept on the monotonic clock so wall-clock jumps can neither
        # mass-reap nor immortalise sessions; the wall-clock twin exists
        # only for display in repro_connections.
        self.last_seen = self.started_monotonic
        self.last_seen_wall = time.time()
        # bound at hello (or left on the default tenant)
        self.tenant_name = "default"
        self._tenant_bound = False
        self._h_delivery = None  # per-tenant push-delivery histogram
        # session-scoped options
        self.options = {
            "subscribe_policy": POLICY_BLOCK,
            "subscribe_high_water": 256,
            "block_timeout": 2.0,
        }
        # counters for the repro_connections view
        self.statements = 0
        self.rows_ingested = 0
        self.subs: Dict[int, SubscriptionEntry] = {}
        self._sub_counter = 0
        # outbound push buffer: engine thread appends, writer task drains
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._out = deque()
        self._pending_detach: List[SubscriptionEntry] = []
        self.notify: Callable[[], None] = lambda: None  # set by server

    # ------------------------------------------------------------------
    # outbound buffer (engine thread side)
    # ------------------------------------------------------------------

    def enqueue_push(self, entry: SubscriptionEntry, frame: dict) -> None:
        """Called on the engine thread by sinks; applies the session's
        slow-client policy when the buffer is at its high-water mark."""
        high_water = self.options["subscribe_high_water"]
        policy = self.options["subscribe_policy"]
        # stamp enqueue time so drain_frames can observe how long pushes
        # sat in the outbound buffer (the per-tenant delivery histogram
        # the X5 overload benchmark reads); popped before serialization
        frame["_enq"] = time.perf_counter()
        with self._space:
            if len(self._out) >= high_water and policy == POLICY_BLOCK:
                deadline = time.monotonic() + self.options["block_timeout"]
                while len(self._out) >= high_water:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._space.wait(remaining):
                        break
            if len(self._out) >= high_water:
                if policy == POLICY_RAISE:
                    entry.broken = True
                    entry.close_reason = (
                        f"client too slow: {len(self._out)} frames "
                        f"buffered (subscribe_policy = raise)")
                    self._pending_detach.append(entry)
                    self._wake()
                    return
                # shed-oldest (and block's timeout fallback): drop the
                # oldest buffered push to make room for the new one
                shed = self._out.popleft()
                self._count_shed(shed)
            self._out.append(frame)
        self._wake()

    def _count_shed(self, frame: dict) -> None:
        victim = self.subs.get(frame.get("sub"))
        if victim is not None:
            victim.sheds += 1
        supervisor = self.server.db.supervisor
        if supervisor is not None:
            from repro.streaming.supervisor import SLOW_CONSUMER
            rows = frame.get("rows")
            if rows is None:
                rows = [frame.get("row")] if frame.get("row") else []
            source = (victim.name if victim is not None
                      else f"session:{self.session_id}")
            supervisor.quarantine(
                source, SLOW_CONSUMER,
                f"session {self.session_id} fell behind; frame dropped",
                rows, frame.get("open"), frame.get("close"))

    def _wake(self) -> None:
        try:
            self.notify()
        except RuntimeError:
            pass  # event loop already gone (shutdown race)

    # ------------------------------------------------------------------
    # outbound buffer (event loop side)
    # ------------------------------------------------------------------

    def drain_frames(self) -> List[dict]:
        """Take everything buffered; wakes engine threads blocked on
        the high-water mark.  Appends shed notices and sub_closed
        frames for anything that broke since the last drain."""
        with self._space:
            frames = list(self._out)
            self._out.clear()
            detached = list(self._pending_detach)
            self._pending_detach.clear()
            self._space.notify_all()
        if frames:
            histogram = self._h_delivery
            now = time.perf_counter()
            for frame in frames:
                enqueued = frame.pop("_enq", None)
                if histogram is not None and enqueued is not None:
                    histogram.observe(max(0.0, now - enqueued))
        for entry in self.subs.values():
            if entry.sheds and not getattr(entry, "_sheds_reported", 0) == \
                    entry.sheds:
                unreported = entry.sheds - getattr(entry, "_sheds_reported", 0)
                entry._sheds_reported = entry.sheds
                frames.append(protocol.shed_push(entry.sub_id, unreported))
        for entry in detached:
            frames.append(protocol.sub_closed_push(
                entry.sub_id, entry.close_reason or "cancelled"))
        if detached:
            self.server.schedule_detach(self, detached)
        return frames

    # ------------------------------------------------------------------
    # op handlers (event loop side; engine work goes through the server)
    # ------------------------------------------------------------------

    async def handle_execute(self, frame: dict) -> dict:
        sql = frame.get("sql")
        if not isinstance(sql, str):
            raise ExecutionError("execute needs a 'sql' string")
        params = frame.get("params")
        request_id = frame.get("id")
        self.statements += 1
        local = self._try_session_option(sql)
        if local is not None:
            if local.get("_show_all"):
                result = await self.server.on_engine(
                    self.server.db.query, sql)
                rows = [list(r) for r in result.rows]
                rows.extend(list(r) for r in self.session_option_rows())
                rows.sort()
                return protocol.result_response(
                    request_id, result.columns, rows, len(rows))
            return {**local, "id": request_id}
        sub_id = self._next_sub_id()
        outcome = await self.server.on_engine_fair(
            self, self._execute_on_engine, sql, params, sub_id)
        if outcome[0] == "subscription":
            entry = outcome[1]
            self.subs[entry.sub_id] = entry
            return protocol.subscription_response(
                request_id, entry.sub_id, entry.name, entry.columns,
                entry.kind)
        _tag, columns, rows, rowcount = outcome
        return protocol.result_response(request_id, columns, rows, rowcount)

    def _execute_on_engine(self, sql, params, sub_id):
        """Engine thread: run the statement; adopt a CQ if one results."""
        result = self.server.execute_entry(sql, params)
        if isinstance(result, Subscription):
            entry = SubscriptionEntry(
                sub_id, result.cq.name, "query", result.columns)
            sink = SessionSink(self, entry)
            entry.sink = sink
            result.stream_to(sink.window_sink)
            if _wire_event_time(result.cq, sink):
                result.cq.add_correction_sink(sink.on_correction)
            entry.detach = result.close  # session-owned CQ: closing stops it
            return ("subscription", entry)
        if isinstance(result, ResultSet):
            return ("result", result.columns, result.rows, result.rowcount)
        return ("result", [], [], 0)

    def _try_session_option(self, sql: str) -> Optional[dict]:
        """SET/SHOW of a *session* option is handled without touching
        the engine; returns None when the statement is engine business."""
        try:
            statement = parse_statement(sql)
        except Exception:
            return None  # let the engine produce the real error
        if isinstance(statement, ast.SetOption) \
                and statement.name in SESSION_OPTIONS:
            self._set_session_option(statement.name, statement.value)
            return protocol.ok_response(None)
        if isinstance(statement, ast.ShowOption):
            if statement.name in SESSION_OPTIONS:
                value = self.options[statement.name]
                return protocol.result_response(
                    None, [statement.name], [[_render_option(value)]], 1)
            if statement.name == "all":
                # engine's SHOW all, with the session's rows merged in
                return {"_show_all": True}
        return None

    def _set_session_option(self, name: str, value) -> None:
        if name == "subscribe_policy":
            if value == "error":
                value = POLICY_RAISE
            if value not in SESSION_POLICIES:
                raise ExecutionError(
                    f"unknown subscribe_policy {value!r}; choose one of "
                    f"{', '.join(SESSION_POLICIES)} (or 'error')")
        elif name == "subscribe_high_water":
            if not isinstance(value, int) or value <= 0:
                raise ExecutionError(
                    "subscribe_high_water must be a positive integer")
        elif name == "block_timeout":
            if not isinstance(value, (int, float)) or value is True \
                    or value < 0:
                raise ExecutionError("block_timeout takes seconds >= 0")
            value = float(value)
        with self._space:
            self.options[name] = value
            self._space.notify_all()

    async def handle_subscribe(self, frame: dict) -> dict:
        name = frame.get("name")
        if not isinstance(name, str):
            raise ExecutionError("subscribe needs a 'name' string")
        since = frame.get("since")
        if since is not None and not isinstance(since, (int, float)):
            raise ExecutionError("'since' must be an event time (seconds)")
        sub_id = self._next_sub_id()
        entry = await self.server.on_engine_fair(
            self, self._subscribe_on_engine, name, since, sub_id)
        self.subs[entry.sub_id] = entry
        return protocol.subscription_response(
            frame.get("id"), entry.sub_id, entry.name, entry.columns,
            entry.kind)

    def _subscribe_on_engine(self, name, since, sub_id) -> SubscriptionEntry:
        """Engine thread: attach a sink to a stream, derived stream or
        named CQ.  Replay (late subscriber) and live attach happen in
        one engine job, so no tuple can slip between them."""
        db = self.server.db
        kind = db.catalog.relation_kind(name)
        if kind == cat.STREAM:
            stream = db.catalog.get_relation(name)
            entry = SubscriptionEntry(
                sub_id, stream.name, "stream",
                [c.name for c in stream.schema])
            sink = SessionSink(self, entry)
            entry.sink = sink
            if since is not None:
                for when, row in stream.replay_since(since):
                    entry.tuples_pushed += 1
                    self.enqueue_push(entry, protocol.tuple_push(
                        entry.sub_id, row, when, replayed=True))
            if stream.tracker is not None:
                sink.watermark_fn = lambda: stream.watermark
            stream.subscribe(sink)
            entry.detach = lambda: stream.unsubscribe(sink)
            return entry
        if kind == cat.DERIVED_STREAM:
            derived = db.catalog.get_relation(name)
            entry = SubscriptionEntry(
                sub_id, derived.name, "derived",
                [c.name for c in derived.schema])
            sink = SessionSink(self, entry)
            entry.sink = sink
            if since is not None:
                # replay windows closed after `since` from the retained
                # window tail or the CQ's active table — a failed-over
                # client resumes with no gap and no duplicate
                from repro.replication.bootstrap import (
                    replay_derived_windows,
                )
                for open_t, close_t, rows in replay_derived_windows(
                        db, derived, float(since)):
                    entry.windows_pushed += 1
                    self.enqueue_push(entry, protocol.window_push(
                        entry.sub_id, rows, open_t, close_t,
                        seq=entry.next_seq()))
            _wire_event_time(derived.cq, sink)
            # corrections reach derived-stream subscribers through
            # DerivedStream.publish_correction (sink.on_correction)
            derived.subscribe(sink)
            entry.detach = lambda: derived.unsubscribe(sink)
            return entry
        cq = db.runtime.cqs().get(name)
        if cq is not None:
            entry = SubscriptionEntry(sub_id, cq.name, "cq", cq.output_names)
            sink = SessionSink(self, entry)
            entry.sink = sink
            cq.add_sink(sink.window_sink)
            if _wire_event_time(cq, sink):
                cq.add_correction_sink(sink.on_correction)

                def detach(cq=cq, sink=sink):
                    cq.remove_sink(sink.window_sink)
                    cq.remove_correction_sink(sink.on_correction)
                entry.detach = detach
            else:
                entry.detach = lambda: cq.remove_sink(sink.window_sink)
            return entry
        raise UnknownObjectError(
            f"nothing named {name!r} to subscribe to (expected a stream, "
            "derived stream, or running CQ)")

    async def handle_unsubscribe(self, frame: dict) -> dict:
        sub_id = frame.get("sub")
        entry = self.subs.pop(sub_id, None)
        if entry is None:
            raise UnknownObjectError(f"no subscription {sub_id!r}")
        entry.broken = True
        await self.server.on_engine_fair(self, entry.detach)
        return protocol.ok_response(frame.get("id"))

    async def handle_ingest(self, frame: dict) -> dict:
        stream_name = frame.get("stream")
        rows = frame.get("rows")
        if not isinstance(stream_name, str) or not isinstance(rows, list):
            raise ExecutionError(
                "ingest needs a 'stream' name and a 'rows' list")
        at = frame.get("at")
        sender = frame.get("sender")
        seq = frame.get("seq")
        if (sender is None) != (seq is None):
            raise ExecutionError(
                "idempotent ingest needs both 'sender' and 'seq'")
        if seq is not None and (not isinstance(seq, int)
                                or isinstance(seq, bool) or seq < 1):
            raise ExecutionError("'seq' must be an integer >= 1")
        watermark = frame.get("watermark")
        if watermark is not None and (isinstance(watermark, bool)
                                      or not isinstance(watermark,
                                                        (int, float))):
            raise ExecutionError("'watermark' must be an event time")
        nbytes = _batch_bytes(rows)
        admission = self.server.db.admission
        if sender is not None:
            # recognise replays before the admission decision: the
            # original batch already paid its quota, and refusing the
            # retry would leave the client unable to learn it landed
            stream = self.server.db.runtime.get_stream(stream_name)
            if admission.dedup.seen(stream.name, str(sender), int(seq)):
                admission.record_result(
                    self.tenant_name, 0, 0, len(rows), 0)
                ack = protocol.ok_response(
                    frame.get("id"), accepted=0, shed=0, dropped=0,
                    duplicate=len(rows))
                if stream.tracker is not None:
                    ack["watermark"] = stream.watermark
                return ack
        # the admission decision runs right here on the event loop —
        # refused work must never cost engine-thread time
        decision = admission.admit(self.tenant_name, len(rows), nbytes)
        if decision == "shed":
            self.server.quarantine_shed_batch(self, stream_name, rows)
            return protocol.ok_response(
                frame.get("id"), accepted=0, shed=len(rows), dropped=0,
                duplicate=0)
        counts = await self.server.on_engine_fair(
            self, self.server.ingest_entry, stream_name,
            [tuple(row) for row in rows], at, sender, seq,
            watermark=watermark)
        self.rows_ingested += counts["accepted"]
        # a batch the engine recognised as a replay applied nothing, so
        # it must not count against the tenant's byte quota either
        admission.record_result(
            self.tenant_name, counts["accepted"], counts.get("shed", 0),
            counts.get("duplicate", 0),
            0 if counts.get("duplicate") else nbytes)
        ack = protocol.ok_response(
            frame.get("id"), accepted=counts["accepted"],
            shed=counts.get("shed", 0), dropped=counts.get("dropped", 0),
            duplicate=counts.get("duplicate", 0))
        if "watermark" in counts:
            ack["watermark"] = counts["watermark"]
        return ack

    async def handle_advance(self, frame: dict) -> dict:
        event_time = frame.get("time")
        if not isinstance(event_time, (int, float)):
            raise StreamingError("advance needs a numeric 'time'")
        await self.server.on_engine_fair(
            self, self.server.advance_entry, float(event_time))
        return protocol.ok_response(frame.get("id"))

    async def handle_flush(self, frame: dict) -> dict:
        await self.server.on_engine_fair(self, self.server.flush_entry)
        return protocol.ok_response(frame.get("id"))

    # ------------------------------------------------------------------
    # replication ops (a standby on the other end of this session)
    # ------------------------------------------------------------------

    async def handle_replicate(self, frame: dict) -> dict:
        from_lsn = frame.get("from_lsn", 1)
        if not isinstance(from_lsn, int) or isinstance(from_lsn, bool) \
                or from_lsn < 1:
            raise ExecutionError("replicate needs an integer "
                                 "'from_lsn' >= 1")
        if self.server.role != "primary":
            raise ExecutionError(
                "this server is a standby; attach to the primary")
        sub_id = self._next_sub_id()
        entry = SubscriptionEntry(sub_id, "wal", "wal", ["lsn"])

        def attach_on_engine():
            manager = self.server.replication_manager()
            manager.attach(self, entry, from_lsn)
            entry.detach = lambda: manager.detach(sub_id)
            return self.server.db.storage.wal.head_lsn

        head = await self.server.on_engine(attach_on_engine)
        self.subs[sub_id] = entry
        return protocol.ok_response(frame.get("id"), sub=sub_id, head=head)

    async def handle_replicate_ack(self, frame: dict) -> dict:
        sub_id = frame.get("sub")
        lsn = frame.get("lsn")
        if not isinstance(sub_id, int) or not isinstance(lsn, int):
            raise ExecutionError(
                "replicate_ack needs integer 'sub' and 'lsn'")
        manager = self.server._replication
        if manager is not None:
            await self.server.on_engine(manager.ack, sub_id, lsn)
        return protocol.ok_response(frame.get("id"))

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def detach_all_on_engine(self) -> None:
        """Engine thread: drop every subscription this session holds."""
        for entry in self.subs.values():
            entry.broken = True
            if entry.detach is not None:
                try:
                    entry.detach()
                except Exception:
                    pass  # already-dropped source etc.; must not block exit
        self.subs.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _next_sub_id(self) -> int:
        self._sub_counter += 1
        return self._sub_counter

    def connection_row(self) -> tuple:
        windows = sum(e.windows_pushed for e in self.subs.values())
        tuples_out = sum(e.tuples_pushed for e in self.subs.values())
        sheds = sum(e.sheds for e in self.subs.values())
        now = self.clock.monotonic()
        return (
            self.session_id, self.peer, self.tenant_name, self.state,
            self.statements,
            self.rows_ingested, len(self.subs), windows, tuples_out,
            sheds, round(now - self.started_monotonic, 3),
            round(now - self.last_seen, 3),
            self.last_seen_wall,
        )

    def session_option_rows(self) -> List[tuple]:
        """Rows merged into a remote ``SHOW all``."""
        return [(name, _render_option(self.options[name]))
                for name in SESSION_OPTIONS]


def _wire_event_time(cq, sink: SessionSink) -> bool:
    """If ``cq`` runs event-time semantics, point the sink at its
    stream's watermark (stamped onto every push) and say so."""
    probe = getattr(cq, "is_event_time", None)
    if probe is None or not cq.is_event_time():
        return False
    stream = cq.stream
    sink.watermark_fn = lambda: stream.watermark
    return True


def _batch_bytes(rows) -> int:
    """Cheap wire-size estimate of an ingest batch (byte-quota unit)."""
    return sum(len(repr(row)) + 2 for row in rows)


def _render_option(value) -> str:
    if value is True:
        return "on"
    if value is False or value is None:
        return "off"
    return str(value)
