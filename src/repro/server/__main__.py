"""``python -m repro.server`` starts the TruSQL network server."""

import sys

from repro.server.server import main

if __name__ == "__main__":
    sys.exit(main())
