"""The network service layer: a TruSQL server over TCP.

Truviso is a client/server system — "applications interact with a
stream-relational database the way they interact with any database:
through SQL" — and this package is the reproduction's wire boundary.
An asyncio TCP server speaks a length-prefixed JSON frame protocol
(:mod:`repro.server.protocol`); every connection gets a session
(:mod:`repro.server.session`) whose statements are serialized onto the
single-threaded engine through a single-writer executor
(:mod:`repro.server.engine`).  Continuous-query results are *pushed* to
subscribed clients, with the engine's backpressure policies applied to
slow consumers.  See docs/SERVER.md for the protocol reference.
"""

from repro.server.server import ServerThread, TruSQLServer, main

__all__ = ["TruSQLServer", "ServerThread", "main"]
