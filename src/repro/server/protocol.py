"""The wire protocol: length-prefixed JSON frames.

Every frame on the socket is a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Requests carry an ``id``
(per-connection, client-chosen, monotonically increasing) and an ``op``;
the server answers each request with exactly one frame echoing the
``id``.  Server-initiated frames (window/tuple pushes, shed notices,
shutdown notices) carry a ``push`` key and no ``id``, and may arrive
between any request and its response — clients must route by shape,
not by ordering.

Request ops::

    hello        {"id", "op", "client"?, "tenant"?} -> session id + version
                 (``tenant`` binds the session to a named tenant for
                 admission control; default tenant otherwise)
    execute      {"id", "op", "sql", "params"?}   -> result | subscription
    subscribe    {"id", "op", "name", "since"?}   -> subscription
    unsubscribe  {"id", "op", "sub"}              -> ok
    ingest       {"id", "op", "stream", "rows", "at"?, "sender"?, "seq"?,
                 "watermark"?}
                 -> counted ack {"accepted", "shed", "dropped",
                 "duplicate", "watermark"?}; ``(sender, seq)`` makes the
                 batch idempotent (a replay acks duplicate=len(rows) and
                 applies nothing).  ``watermark`` injects an explicit
                 event-time watermark after the rows land; event-time
                 streams ack their watermark back.
    advance      {"id", "op", "time"}             -> ok (heartbeat)
    flush        {"id", "op"}                     -> ok (drain windows)
    ping         {"id", "op"}                     -> ok
    metrics      {"id", "op"}                     -> observability scrape
    goodbye      {"id", "op"}                     -> ok, then close
    shutdown     {"id", "op"}                     -> ok, then server stops

Push frames::

    {"push": "window", "sub", "open", "close", "rows",
     "kind"?, "seq"?, "watermark"?}
    {"push": "tuple",  "sub", "time", "row", "replayed"?}

``kind`` types event-time records ("retract" / "correct" / "early";
absent means a final window), ``seq`` is a per-subscription monotone
sequence number so a client can detect shed or re-delivered frames, and
``watermark`` carries the source stream's event-time watermark at push
time.
    {"push": "shed",   "sub", "count"}            slow-client load shed
    {"push": "sub_closed", "sub", "reason"}       subscription cancelled
    {"push": "goodbye", "reason"}                 server is closing

Error responses: ``{"id": n, "ok": false, "error": {"type", "message"}}``.
An :class:`~repro.errors.AdmissionError` additionally ships
``retry_after_ms`` (number = transient, retry after that long; null =
quota exhausted, do not retry), ``tenant`` and ``reason`` so the client
rebuilds the typed error and can back off automatically.
"""

from __future__ import annotations

import json
import struct

from repro.errors import (
    AdmissionError,
    ProtocolError,
    ReplicationGapError,
    TruvisoError,
)

#: bump when the frame vocabulary changes incompatibly
PROTOCOL_VERSION = 1

#: refuse frames larger than this (a corrupt length prefix would
#: otherwise make the reader try to allocate gigabytes)
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def _json_default(value):
    # rows occasionally carry engine-side objects (Decimal-ish wrappers,
    # dates); degrade to their text form rather than failing the frame
    return str(value)


def encode_frame(payload: dict) -> bytes:
    """One frame, ready for the socket: length prefix + JSON body."""
    body = json.dumps(payload, separators=(",", ":"),
                      default=_json_default).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


class FrameDecoder:
    """Incremental decoder for a byte stream of frames.

    Feed it whatever the transport produced; it yields complete frames
    and buffers partial ones.  Used by the synchronous client; the
    asyncio server reads exact lengths instead.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return frames
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"incoming frame claims {length} bytes "
                    f"(limit {MAX_FRAME_BYTES}); stream is corrupt")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            frames.append(decode_body(body))

    def pending_bytes(self) -> int:
        return len(self._buffer)


async def read_frame(reader) -> dict:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a truncated or oversized frame.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_body(body)


# ---------------------------------------------------------------------------
# frame constructors (the single place response shapes are defined)
# ---------------------------------------------------------------------------


def ok_response(request_id, **fields) -> dict:
    frame = {"id": request_id, "ok": True}
    frame.update(fields)
    return frame


def error_response(request_id, exc: BaseException) -> dict:
    remote_type = (type(exc).__name__ if isinstance(exc, TruvisoError)
                   else "ExecutionError")
    error = {"type": remote_type,
             "message": str(exc) or type(exc).__name__}
    if isinstance(exc, AdmissionError):
        error["retry_after_ms"] = exc.retry_after_ms
        error["tenant"] = exc.tenant
        error["reason"] = exc.reason
    if isinstance(exc, ReplicationGapError):
        error["missing_from"] = exc.missing_from
        error["missing_to"] = exc.missing_to
    return {"id": request_id, "ok": False, "error": error}


def result_response(request_id, columns, rows, rowcount) -> dict:
    return ok_response(request_id, result={
        "columns": list(columns),
        "rows": [list(row) for row in rows],
        "rowcount": rowcount,
    })


def subscription_response(request_id, sub_id, name, columns,
                          kind: str) -> dict:
    return ok_response(request_id, subscription={
        "sub": sub_id, "name": name,
        "columns": list(columns), "kind": kind,
    })


def window_push(sub_id, rows, open_time, close_time, kind: str = "window",
                seq=None, watermark=None) -> dict:
    frame = {"push": "window", "sub": sub_id,
             "open": open_time, "close": close_time,
             "rows": [list(row) for row in rows]}
    if kind != "window":
        frame["kind"] = kind
    if seq is not None:
        frame["seq"] = seq
    if watermark is not None:
        frame["watermark"] = watermark
    return frame


def tuple_push(sub_id, row, event_time, replayed: bool = False) -> dict:
    frame = {"push": "tuple", "sub": sub_id,
             "time": event_time, "row": list(row)}
    if replayed:
        frame["replayed"] = True
    return frame


def shed_push(sub_id, count) -> dict:
    return {"push": "shed", "sub": sub_id, "count": count}


def sub_closed_push(sub_id, reason) -> dict:
    return {"push": "sub_closed", "sub": sub_id, "reason": reason}


def goodbye_push(reason) -> dict:
    return {"push": "goodbye", "reason": reason}
