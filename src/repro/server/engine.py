"""The single-writer executor: many connections, one engine thread.

The embedded :class:`~repro.core.database.Database` is single-threaded
by construction — MVCC bookkeeping, the buffer pool and the streaming
runtime all assume one caller at a time.  Rather than sprinkle locks
through the engine, the server funnels *every* engine touch (statements,
ingest batches, heartbeats, subscription attach/detach) through one
dedicated worker thread.  Connections submit closures and await the
result; the queue is the serialization point, so the engine sees the
same world it sees embedded.

The queue is a :class:`~repro.admission.scheduler.WeightedFairQueue`:
tenanted session work goes through :meth:`SingleWriterExecutor.submit_fair`
onto a per-tenant lane and lanes are stride-scheduled by weight, so one
tenant's burst cannot monopolise the engine thread.  Untenanted work
(:meth:`submit` — replication apply, detach, the shutdown flush) rides
the strict-priority system lane and is never starved by client load.

This is also where subscription pushes originate: window sinks fire on
the engine thread during ingest/advance, hand their frames to the
owning session's outbound buffer, and wake that session's asyncio
writer with ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Optional

from repro.admission.scheduler import WeightedFairQueue


class EngineClosed(RuntimeError):
    """Submit was called after the executor shut down."""


class SingleWriterExecutor:
    """A one-thread job queue with Future-based results."""

    def __init__(self, name: str = "repro-engine"):
        self._jobs = WeightedFairQueue()
        self._closed = False
        self.jobs_run = 0
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True)
        self._thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, fn, *args, **kwargs) -> Future:
        """Queue ``fn(*args, **kwargs)`` on the system lane; the returned
        Future resolves with its result or exception."""
        if self._closed:
            raise EngineClosed("engine executor is shut down")
        future = Future()
        self._jobs.put((fn, args, kwargs, future))
        return future

    def submit_fair(self, lane: Optional[str], weight: float,
                    fn, *args, **kwargs) -> Future:
        """Queue on a tenant lane (``None`` lane = system lane)."""
        if self._closed:
            raise EngineClosed("engine executor is shut down")
        future = Future()
        self._jobs.put_fair(lane, weight, (fn, args, kwargs, future))
        return future

    def run_sync(self, fn, *args, timeout: float = 30.0, **kwargs):
        """Submit and block for the result (tests, synchronous callers)."""
        return self.submit(fn, *args, **kwargs).result(timeout)

    def depth(self) -> int:
        """Jobs waiting (the admission controller's pressure signal)."""
        return self._jobs.qsize()

    def lane_depths(self) -> Dict[str, int]:
        """Queued jobs per tenant lane (observability)."""
        return self._jobs.lane_depths()

    def lane_served(self) -> Dict[str, int]:
        """Jobs served per tenant lane since startup (fairness tests)."""
        return self._jobs.lane_served()

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:  # closed and fully drained
                return
            fn, args, kwargs, future = job
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)
            self.jobs_run += 1

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain what was already queued, join.

        Draining (rather than discarding) matters for graceful server
        shutdown: the final flush job must actually run so in-flight
        windows reach their subscribers before sockets close.
        """
        if self._closed:
            return
        self._closed = True
        self._jobs.close()
        self._thread.join(timeout)
