"""The asyncio TCP server: accept loop, dispatch, graceful shutdown.

One :class:`TruSQLServer` owns one embedded
:class:`~repro.core.database.Database`, one single-writer engine
executor, and any number of client sessions.  The event loop only ever
parses frames and shuttles bytes; every engine touch crosses into the
engine thread through :meth:`TruSQLServer.on_engine`.

Run standalone::

    python -m repro.server --host 127.0.0.1 --port 5433

or embed in tests with :class:`ServerThread`, which runs the whole
server (loop included) on a background thread and blocks until it is
accepting connections.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
from typing import Dict, Optional

from repro.core.database import Database
from repro.errors import ProtocolError, TruvisoError
from repro.server import protocol
from repro.server.engine import SingleWriterExecutor
from repro.server.session import Session

_BANNER = "repro-server listening on {host}:{port}"


class TruSQLServer:
    """A TruSQL server bound to one embedded Database."""

    def __init__(self, db: Optional[Database] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 **db_options):
        self.db = db if db is not None else Database(**db_options)
        self.requested_host = host
        self.requested_port = port
        self.executor = SingleWriterExecutor()
        self.sessions: Dict[int, Session] = {}
        self._session_counter = 0
        self._handlers = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._stopped = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.db.connection_registry = self.connection_rows

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.requested_host, self.requested_port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (safe from any thread)."""
        if self._loop is None or self._shutdown_event is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._shutdown_event.set)
        except RuntimeError:
            pass  # loop already closed: nothing left to stop

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`, then shut down cleanly."""
        await self._shutdown_event.wait()
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful stop: no new connections, drain in-flight windows
        (a final engine flush pushes pending windows through derived
        streams and channels to every subscriber), flush each session's
        outbound buffer, say goodbye, then close sockets and the engine.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self.sessions:
            try:
                await self.on_engine(self.db.flush_streams)
            except Exception:
                pass  # a poisoned stream must not wedge shutdown
        for session in list(self.sessions.values()):
            session.state = "closing"
            writer = getattr(session, "_writer", None)
            if writer is None:
                continue
            try:
                for frame in session.drain_frames():
                    writer.write(protocol.encode_frame(frame))
                writer.write(protocol.encode_frame(
                    protocol.goodbye_push("server shutdown")))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            writer.close()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self.executor.shutdown()

    # ------------------------------------------------------------------
    # engine bridge
    # ------------------------------------------------------------------

    async def on_engine(self, fn, *args, **kwargs):
        """Run ``fn`` on the single-writer engine thread and await it."""
        return await asyncio.wrap_future(
            self.executor.submit(fn, *args, **kwargs))

    def schedule_detach(self, session: Session, entries) -> None:
        """Fire-and-forget detach of broken subscriptions (raise policy).
        Submitted, not awaited: callers sit on the writer path."""
        def detach_all():
            for entry in entries:
                session.subs.pop(entry.sub_id, None)
                if entry.detach is not None:
                    try:
                        entry.detach()
                    except Exception:
                        pass
        try:
            self.executor.submit(detach_all)
        except Exception:
            pass

    def connection_rows(self):
        """Rows of the ``repro_connections`` system view."""
        return [s.connection_row() for s in list(self.sessions.values())]

    # ------------------------------------------------------------------
    # per-connection handling
    # ------------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._handlers.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self._session_counter += 1
        session = Session(self._session_counter, self, peer)
        session._writer = writer
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        session.notify = lambda: loop.call_soon_threadsafe(wake.set)
        writer_task = asyncio.ensure_future(
            self._writer_loop(session, writer, wake))
        self.sessions[session.session_id] = session
        try:
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                response = await self._dispatch(session, frame)
                if response is not None:
                    writer.write(protocol.encode_frame(response))
                    await writer.drain()
                op = frame.get("op")
                if op == "goodbye" or self._stopped:
                    break
                if op == "shutdown":
                    # keep this connection open: the graceful shutdown
                    # path drains its subscriptions and says goodbye
                    self.request_shutdown()
        except (asyncio.CancelledError, ConnectionError):
            pass
        except ProtocolError as exc:
            try:
                writer.write(protocol.encode_frame(
                    protocol.error_response(None, exc)))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            session.state = "closed"
            self.sessions.pop(session.session_id, None)
            writer_task.cancel()
            try:
                await writer_task
            except (asyncio.CancelledError, ConnectionError):
                pass
            try:
                self.executor.submit(session.detach_all_on_engine)
            except Exception:
                pass
            with session._space:
                session._space.notify_all()  # unblock a waiting engine
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, session: Session, frame: dict):
        request_id = frame.get("id")
        op = frame.get("op")
        try:
            if op == "execute":
                return await session.handle_execute(frame)
            if op == "subscribe":
                return await session.handle_subscribe(frame)
            if op == "unsubscribe":
                return await session.handle_unsubscribe(frame)
            if op == "ingest":
                return await session.handle_ingest(frame)
            if op == "advance":
                return await session.handle_advance(frame)
            if op == "flush":
                return await session.handle_flush(frame)
            if op == "hello":
                return protocol.ok_response(
                    request_id, server="repro",
                    protocol=protocol.PROTOCOL_VERSION,
                    session=session.session_id)
            if op in ("ping", "goodbye"):
                return protocol.ok_response(request_id)
            if op == "shutdown":
                return protocol.ok_response(request_id, stopping=True)
            raise ProtocolError(f"unknown op {op!r}")
        except TruvisoError as exc:
            return protocol.error_response(request_id, exc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # engine bug: report, keep serving
            return protocol.error_response(request_id, exc)

    async def _writer_loop(self, session: Session, writer, wake) -> None:
        """Drains the session's outbound push buffer to the socket.
        ``writer.drain()`` is where a slow client's TCP window pushes
        back; while this coroutine waits there, the engine-side buffer
        fills and the session's slow-client policy kicks in."""
        try:
            while True:
                await wake.wait()
                wake.clear()
                frames = session.drain_frames()
                if not frames:
                    continue
                for frame in frames:
                    writer.write(protocol.encode_frame(frame))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            for entry in session.subs.values():
                entry.broken = True
            raise


class ServerThread:
    """A server on a background thread, for tests and benchmarks.

    Starts the whole asyncio world off-thread and blocks until the
    socket is listening::

        with ServerThread() as server:
            conn = repro.client.connect(server.host, server.port)
    """

    def __init__(self, db: Optional[Database] = None,
                 host: str = "127.0.0.1", port: int = 0, **db_options):
        self._db = db
        self._db_options = db_options
        self._requested = (host, port)
        self.server: Optional[TruSQLServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def db(self) -> Database:
        return self.server.db

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # startup failures surface in start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        host, port = self._requested
        self.server = TruSQLServer(
            db=self._db, host=host, port=port, **self._db_options)
        await self.server.start()
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self, timeout: float = 10.0) -> None:
        if self.server is not None:
            self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def main(argv=None) -> int:
    """Entry point of the ``repro-server`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="TruSQL network server (Continuous Analytics repro)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--init", metavar="FILE",
                        help="TruSQL script to execute before serving")
    parser.add_argument("--supervised", action="store_true",
                        help="enable the supervised runtime at boot")
    parser.add_argument("--retention", type=float, default=None,
                        help="default stream retention seconds "
                             "(enables late-subscriber replay)")
    args = parser.parse_args(argv)

    db = Database(supervised=args.supervised,
                  stream_retention=args.retention)
    if args.init:
        with open(args.init, "r", encoding="utf-8") as handle:
            db.execute_script(handle.read())

    async def amain() -> None:
        server = TruSQLServer(db=db, host=args.host, port=args.port)
        await server.start()
        print(_BANNER.format(host=server.host, port=server.port),
              flush=True)
        loop = asyncio.get_running_loop()
        try:
            import signal
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, server.request_shutdown)
        except (ImportError, NotImplementedError):  # pragma: no cover
            pass
        await server.serve_until_shutdown()

    asyncio.run(amain())
    return 0


if __name__ == "__main__":
    sys.exit(main())
