"""The asyncio TCP server: accept loop, dispatch, graceful shutdown.

One :class:`TruSQLServer` owns one embedded
:class:`~repro.core.database.Database`, one single-writer engine
executor, and any number of client sessions.  The event loop only ever
parses frames and shuttles bytes; every engine touch crosses into the
engine thread through :meth:`TruSQLServer.on_engine`.

Run standalone::

    python -m repro.server --host 127.0.0.1 --port 5433

or embed in tests with :class:`ServerThread`, which runs the whole
server (loop included) on a background thread and blocks until it is
accepting connections.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
import time
from typing import Dict, Optional, Tuple

from repro.core.database import Database
from repro.errors import ExecutionError, ProtocolError, TruvisoError
from repro.server import protocol
from repro.server.engine import SingleWriterExecutor
from repro.server.session import Session
from repro.sql import ast, parse_statement

_BANNER = "repro-server listening on {host}:{port}"

#: statement types a standby will execute (reads and session options);
#: anything that mutates state must wait for promotion
_STANDBY_SAFE = (ast.Select, ast.SetOp, ast.Explain,
                 ast.ShowOption, ast.SetOption)


def _parse_hostport(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


class TruSQLServer:
    """A TruSQL server bound to one embedded Database.

    ``data_dir`` makes the server crash-consistent: the WAL lives in a
    file there, and a restart (even after ``kill -9``) rebuilds tables,
    streams, CQ windows, and channels from it before accepting traffic.
    ``standby_of`` starts the server as a warm standby of another
    server: read-only, continuously applying the primary's shipped WAL,
    promoting itself when the primary goes quiet (or on the ``promote``
    op).
    """

    def __init__(self, db: Optional[Database] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 data_dir: Optional[str] = None,
                 standby_of: Optional[str] = None,
                 auto_promote: bool = True,
                 heartbeat_interval: float = 1.0,
                 miss_limit: int = 3,
                 idle_timeout: Optional[float] = None,
                 reap_interval: Optional[float] = None,
                 compact_interval: Optional[float] = None,
                 scrub_interval: Optional[float] = None,
                 backup_to: Optional[str] = None,
                 backup_interval: Optional[float] = None,
                 partitions: Optional[int] = None,
                 clock=None,
                 **db_options):
        from repro.clock import SYSTEM_CLOCK
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        if clock is not None and db is None:
            db_options.setdefault("clock", clock)
        self.role = "standby" if standby_of else "primary"
        self._standby_deferred = []
        if db is None:
            if standby_of is not None:
                from repro.replication.bootstrap import open_standby_database
                db, self._standby_deferred = open_standby_database(
                    data_dir=data_dir, **db_options)
            elif data_dir is not None:
                from repro.replication.bootstrap import open_database
                db = open_database(data_dir=data_dir, **db_options)
            else:
                db = Database(**db_options)
        self.db = db
        # partitioned execution: statements and ingest route through a
        # PartitionedEngine wrapping this database (worker subprocesses
        # are volatile — incompatible with standby replication)
        self.partition_engine = None
        if partitions:
            if standby_of is not None:
                raise ValueError(
                    "partitions are incompatible with standby mode")
            from repro.partition import PartitionedEngine
            self.partition_engine = PartitionedEngine(
                partitions=partitions, transport="process", db=self.db)
        self.requested_host = host
        self.requested_port = port
        self.standby_of = (_parse_hostport(standby_of)
                           if standby_of else None)
        self.auto_promote = auto_promote
        self.heartbeat_interval = heartbeat_interval
        self.miss_limit = miss_limit
        self.idle_timeout = idle_timeout
        self.reap_interval = reap_interval
        self.compact_interval = compact_interval
        self.scrub_interval = scrub_interval
        self.backup_to = backup_to
        self.backup_interval = backup_interval
        self.standby = None            # StandbyController when following
        self._replication = None       # ReplicationManager, created lazily
        self._reaper_task: Optional[asyncio.Task] = None
        self._maintenance_task: Optional[asyncio.Task] = None
        self.executor = SingleWriterExecutor()
        self.sessions: Dict[int, Session] = {}
        self._session_counter = 0
        self._handlers = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._stopped = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.db.connection_registry = self.connection_rows
        # admission control reads the engine queue depth as its pressure
        # signal; sessions feed it through handle_ingest
        self.db.admission.depth_probe = self.executor.depth
        # observability: frame counters + session gauge (null-safe)
        self._c_frames_in = None
        self._c_frames_out = None
        obs = getattr(self.db, "obs", None)
        if obs is not None:
            obs.bind_server(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.requested_host, self.requested_port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.standby_of is not None:
            from repro.replication.standby import StandbyController
            self.standby = StandbyController(
                self, self.standby_of[0], self.standby_of[1],
                heartbeat_interval=self.heartbeat_interval,
                miss_limit=self.miss_limit,
                auto_promote=self.auto_promote)
            self.standby.applier.deferred.extend(self._standby_deferred)
            self.standby.start()
        if self.idle_timeout is not None:
            self._reaper_task = asyncio.ensure_future(self._reap_idle())
        if (self.compact_interval is not None
                or self.scrub_interval is not None
                or self.backup_to is not None):
            self._maintenance_task = asyncio.ensure_future(
                self._run_maintenance())

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (safe from any thread)."""
        if self._loop is None or self._shutdown_event is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._shutdown_event.set)
        except RuntimeError:
            pass  # loop already closed: nothing left to stop

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`, then shut down cleanly."""
        await self._shutdown_event.wait()
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful stop: no new connections, drain in-flight windows
        (a final engine flush pushes pending windows through derived
        streams and channels to every subscriber), flush each session's
        outbound buffer, say goodbye, then close sockets and the engine.
        """
        if self._stopped:
            return
        self._stopped = True
        for task in (self._reaper_task, self._maintenance_task):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self.standby is not None:
            self.standby.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self.sessions:
            try:
                flush = (self.partition_engine.flush
                         if self.partition_engine is not None
                         else self.db.flush_streams)
                await self.on_engine(flush)
            except Exception:
                pass  # a poisoned stream must not wedge shutdown
        for session in list(self.sessions.values()):
            session.state = "closing"
            writer = getattr(session, "_writer", None)
            if writer is None:
                continue
            try:
                for frame in session.drain_frames():
                    writer.write(protocol.encode_frame(frame))
                writer.write(protocol.encode_frame(
                    protocol.goodbye_push("server shutdown")))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            writer.close()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self.executor.shutdown()
        if self.partition_engine is not None:
            self.partition_engine.close()

    # ------------------------------------------------------------------
    # engine bridge
    # ------------------------------------------------------------------

    def execute_entry(self, sql, params=None):
        """Statement entry point for sessions — partition-aware when
        the server was started with ``--partitions``."""
        if self.partition_engine is not None:
            return self.partition_engine.execute(sql, params)
        return self.db.execute(sql, params)

    def ingest_entry(self, name, rows, at=None, sender=None, seq=None,
                     watermark=None):
        """Ingest entry point for sessions; same counted-ack shape as
        :meth:`Database.ingest_batch` in both modes."""
        if self.partition_engine is not None:
            return self.partition_engine.ingest(
                name, rows, at=at, watermark=watermark,
                sender=sender, seq=seq)
        return self.db.ingest_batch(name, rows, at, sender, seq,
                                    watermark=watermark)

    def advance_entry(self, event_time):
        """Clock-advance entry point — fans out to worker shards so
        their windows close in step with the coordinator."""
        if self.partition_engine is not None:
            return self.partition_engine.advance(event_time)
        return self.db.advance_streams(event_time)

    def flush_entry(self):
        """Flush entry point — drains worker shards before the local
        engine so no partial is stranded in a subprocess."""
        if self.partition_engine is not None:
            return self.partition_engine.flush()
        return self.db.flush_streams()

    async def on_engine(self, fn, *args, **kwargs):
        """Run ``fn`` on the single-writer engine thread and await it.

        System-lane: replication, promotion, shutdown and other
        infrastructure work that must never queue behind client load.
        """
        return await asyncio.wrap_future(
            self.executor.submit(fn, *args, **kwargs))

    async def on_engine_fair(self, session, fn, *args, **kwargs):
        """Run ``fn`` on the engine thread via the session's tenant lane.

        Tenant lanes are stride-scheduled by weight, so concurrent
        tenants share the engine thread proportionally instead of FIFO.
        """
        tenant = getattr(session, "tenant_name", None)
        weight = self.db.admission.tenant_weight(tenant)
        return await asyncio.wrap_future(
            self.executor.submit_fair(tenant, weight, fn, *args, **kwargs))

    def quarantine_shed_batch(self, session, stream_name, rows) -> None:
        """Dead-letter accounting for a tier-2 shed ingest batch.

        Fire-and-forget on the system lane: the whole point of shedding
        is that the batch skips the engine queue, so only this one small
        bookkeeping job crosses over, and the caller never waits on it.
        """
        supervisor = self.db.supervisor
        if supervisor is None:
            return

        def quarantine():
            from repro.streaming.supervisor import SLOW_CONSUMER
            supervisor.quarantine(
                stream_name, SLOW_CONSUMER,
                f"admission shed: tenant {session.tenant_name!r} batch "
                f"dropped under overload", [tuple(r) for r in rows],
                None, None)
        try:
            self.executor.submit(quarantine)
        except Exception:
            pass

    def schedule_detach(self, session: Session, entries) -> None:
        """Fire-and-forget detach of broken subscriptions (raise policy).
        Submitted, not awaited: callers sit on the writer path."""
        def detach_all():
            for entry in entries:
                session.subs.pop(entry.sub_id, None)
                if entry.detach is not None:
                    try:
                        entry.detach()
                    except Exception:
                        pass
        try:
            self.executor.submit(detach_all)
        except Exception:
            pass

    def connection_rows(self):
        """Rows of the ``repro_connections`` system view."""
        return [s.connection_row() for s in list(self.sessions.values())]

    def _delivery_histogram(self, tenant: str):
        """Per-tenant push-delivery latency histogram (how long frames
        sit in outbound buffers) — what the X5 overload benchmark reads
        to prove an in-quota tenant's p99 survives a noisy neighbour."""
        obs = getattr(self.db, "obs", None)
        if obs is None or not obs.enabled:
            return None
        return obs.registry.histogram(f"server.delivery_seconds.{tenant}")

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------

    def replication_manager(self):
        """The primary-side WAL shipper, created on first use (engine
        thread).  Lazy so a server with no standbys pays nothing."""
        if self._replication is None:
            from repro.replication.primary import ReplicationManager
            self._replication = ReplicationManager(self.db)
        return self._replication

    def become_primary(self, reason: str = "") -> None:
        """Flip a promoted standby into a serving primary (engine
        thread, called by StandbyController.promote_on_engine)."""
        self.role = "primary"
        # from here the WAL grows locally again; future standbys of this
        # (now) primary attach through the lazy replication manager

    async def _reap_idle(self) -> None:
        """Close sessions that have been silent past ``idle_timeout``.

        A client that pings (or does anything else) within the timeout
        is never touched; a vanished one gets a goodbye frame and its
        socket closed, which releases its subscriptions and buffers.
        """
        interval = self.reap_interval
        if interval is None:
            interval = max(self.idle_timeout / 4.0, 0.05)
        while not self._stopped:
            await asyncio.sleep(interval)
            # idle ages come from the injectable clock: a test advances
            # a ManualClock instead of actually going silent for minutes
            now = self.clock.monotonic()
            for session in list(self.sessions.values()):
                if session.state != "active" \
                        or now - session.last_seen < self.idle_timeout:
                    continue
                session.state = "reaped"
                writer = getattr(session, "_writer", None)
                if writer is None:
                    continue
                try:
                    writer.write(protocol.encode_frame(
                        protocol.goodbye_push(
                            f"idle for {round(now - session.last_seen, 1)}s "
                            f"(idle_timeout={self.idle_timeout}s)")))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    pass
                try:
                    writer.close()
                except Exception:
                    pass

    async def _run_maintenance(self) -> None:
        """WAL lifecycle chores on the engine thread's system lane.

        Same shape as the idle reaper: an asyncio timer that crosses
        into the engine through :meth:`on_engine`, so compaction,
        scrubbing and periodic backups serialize with normal traffic
        instead of racing it.  Each chore runs on its own cadence; a
        failing chore is recorded on the lifecycle and retried next
        tick rather than killing the task.
        """
        lifecycle = self.db.wal_lifecycle
        jobs = []
        if self.compact_interval is not None:
            jobs.append(["compact", self.compact_interval,
                         lifecycle.compact, ()])
        if self.scrub_interval is not None:
            jobs.append(["scrub", self.scrub_interval,
                         lifecycle.scrub, ()])
        if self.backup_to is not None:
            interval = self.backup_interval
            if interval is None:
                interval = 60.0
            jobs.append(["backup", interval,
                         lifecycle.backup, (self.backup_to,)])
        if not jobs:
            return
        tick = max(0.05, min(interval for _, interval, _fn, _a in jobs))
        last = {name: 0.0 for name, _i, _fn, _a in jobs}
        while not self._stopped:
            await asyncio.sleep(tick)
            now = time.monotonic()
            for name, interval, fn, fn_args in jobs:
                if now - last[name] < interval:
                    continue
                last[name] = now
                try:
                    await self.on_engine(fn, *fn_args)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    lifecycle.last_error = f"{name}: {exc}"

    def crash(self) -> None:
        """Abrupt death for failover tests: abort every socket — no
        goodbye, no drain, no final flush.  Safe from any thread.  The
        engine thread is left to die with the process; durable state is
        whatever already reached the WAL file."""
        loop = self._loop
        if loop is None:
            return

        def _die():
            self._stopped = True
            if self._server is not None:
                self._server.close()
            for session in list(self.sessions.values()):
                session.state = "closed"
                writer = getattr(session, "_writer", None)
                transport = getattr(writer, "transport", None)
                if transport is not None:
                    try:
                        transport.abort()
                    except Exception:
                        pass
            if self.standby is not None:
                self.standby._stop.set()
            if self._shutdown_event is not None:
                self._shutdown_event.set()

        try:
            loop.call_soon_threadsafe(_die)
        except RuntimeError:
            pass

    # ------------------------------------------------------------------
    # per-connection handling
    # ------------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._handlers.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self._session_counter += 1
        session = Session(self._session_counter, self, peer)
        session._writer = writer
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        session.notify = lambda: loop.call_soon_threadsafe(wake.set)
        writer_task = asyncio.ensure_future(
            self._writer_loop(session, writer, wake))
        self.sessions[session.session_id] = session
        try:
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                session.last_seen = self.clock.monotonic()
                session.last_seen_wall = time.time()
                if self._c_frames_in is not None:
                    self._c_frames_in.inc()
                response = await self._dispatch(session, frame)
                if response is not None:
                    writer.write(protocol.encode_frame(response))
                    await writer.drain()
                    if self._c_frames_out is not None:
                        self._c_frames_out.inc()
                op = frame.get("op")
                if op == "goodbye" or self._stopped:
                    break
                if op == "shutdown":
                    # keep this connection open: the graceful shutdown
                    # path drains its subscriptions and says goodbye
                    self.request_shutdown()
        except (asyncio.CancelledError, ConnectionError):
            pass
        except ProtocolError as exc:
            try:
                writer.write(protocol.encode_frame(
                    protocol.error_response(None, exc)))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            session.state = "closed"
            self.sessions.pop(session.session_id, None)
            if session._tenant_bound:
                self.db.admission.release_session(session.tenant_name)
            writer_task.cancel()
            try:
                await writer_task
            except (asyncio.CancelledError, ConnectionError):
                pass
            try:
                self.executor.submit(session.detach_all_on_engine)
            except Exception:
                pass
            with session._space:
                session._space.notify_all()  # unblock a waiting engine
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, session: Session, frame: dict):
        request_id = frame.get("id")
        op = frame.get("op")
        try:
            if self.role == "standby" \
                    and op in ("ingest", "advance", "flush"):
                raise ExecutionError(
                    f"{op!r} rejected: this server is a standby "
                    "(read-only until promoted)")
            if op == "execute":
                if self.role == "standby":
                    self._check_standby_sql(frame.get("sql"))
                return await session.handle_execute(frame)
            if op == "subscribe":
                return await session.handle_subscribe(frame)
            if op == "unsubscribe":
                return await session.handle_unsubscribe(frame)
            if op == "ingest":
                return await session.handle_ingest(frame)
            if op == "advance":
                return await session.handle_advance(frame)
            if op == "flush":
                return await session.handle_flush(frame)
            if op == "replicate":
                return await session.handle_replicate(frame)
            if op == "replicate_ack":
                return await session.handle_replicate_ack(frame)
            if op == "promote":
                return await self._handle_promote(request_id, frame)
            if op == "backup":
                dest = frame.get("dest")
                if not isinstance(dest, str) or not dest:
                    raise ExecutionError(
                        "backup: 'dest' must be a non-empty path")
                info = await self.on_engine(
                    self.db.wal_lifecycle.backup, dest)
                return protocol.ok_response(request_id, backup=info)
            if op == "metrics":
                return await self._handle_metrics(request_id)
            if op == "hello":
                tenant = frame.get("tenant")
                if tenant is not None \
                        and (not isinstance(tenant, str) or not tenant):
                    raise ExecutionError(
                        "'tenant' must be a non-empty string")
                if session._tenant_bound:
                    # a second hello moves the session between tenants
                    self.db.admission.release_session(session.tenant_name)
                if tenant is not None:
                    session.tenant_name = tenant
                self.db.admission.bind_session(session.tenant_name)
                session._tenant_bound = True
                session._h_delivery = self._delivery_histogram(
                    session.tenant_name)
                return protocol.ok_response(
                    request_id, server="repro",
                    protocol=protocol.PROTOCOL_VERSION,
                    session=session.session_id,
                    role=self.role,
                    tenant=session.tenant_name)
            if op in ("ping", "goodbye"):
                return protocol.ok_response(request_id)
            if op == "shutdown":
                return protocol.ok_response(request_id, stopping=True)
            raise ProtocolError(f"unknown op {op!r}")
        except TruvisoError as exc:
            return protocol.error_response(request_id, exc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # engine bug: report, keep serving
            return protocol.error_response(request_id, exc)

    def _check_standby_sql(self, sql) -> None:
        """Reject mutating statements while in standby role.  Anything
        unparsable falls through so the engine reports the real error."""
        if not isinstance(sql, str):
            return
        try:
            statement = parse_statement(sql)
        except Exception:
            return
        if not isinstance(statement, _STANDBY_SAFE):
            raise ExecutionError(
                f"{type(statement).__name__} rejected: this server is a "
                "standby (read-only until promoted)")

    async def _handle_promote(self, request_id, frame: dict):
        if self.standby is None:
            raise ExecutionError(
                "promote: this server is not a standby"
                if self.role == "primary"
                else "promote: no standby controller attached")
        reason = frame.get("reason") or "requested by client"
        stats = await self.on_engine(
            self.standby.promote_on_engine, reason)
        return protocol.ok_response(request_id, role=self.role,
                                    promotion=stats)

    async def _handle_metrics(self, request_id):
        """Scrape the observability surfaces in one engine round trip."""
        def gather():
            out = {}
            for view in ("repro_metrics", "repro_cq_stats",
                         "repro_operator_stats", "repro_traces"):
                rs = self.db.query(f"SELECT * FROM {view}")
                out[view] = {"columns": list(rs.columns),
                             "rows": [list(r) for r in rs.rows]}
            return out
        payload = await self.on_engine(gather)
        return protocol.ok_response(request_id, metrics=payload)

    async def _writer_loop(self, session: Session, writer, wake) -> None:
        """Drains the session's outbound push buffer to the socket.
        ``writer.drain()`` is where a slow client's TCP window pushes
        back; while this coroutine waits there, the engine-side buffer
        fills and the session's slow-client policy kicks in."""
        try:
            while True:
                await wake.wait()
                wake.clear()
                frames = session.drain_frames()
                if not frames:
                    continue
                for frame in frames:
                    writer.write(protocol.encode_frame(frame))
                if self._c_frames_out is not None:
                    self._c_frames_out.inc(len(frames))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            for entry in session.subs.values():
                entry.broken = True
            raise


class ServerThread:
    """A server on a background thread, for tests and benchmarks.

    Starts the whole asyncio world off-thread and blocks until the
    socket is listening::

        with ServerThread() as server:
            conn = repro.client.connect(server.host, server.port)
    """

    def __init__(self, db: Optional[Database] = None,
                 host: str = "127.0.0.1", port: int = 0, **db_options):
        self._db = db
        self._db_options = db_options
        self._requested = (host, port)
        self.server: Optional[TruSQLServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def db(self) -> Database:
        return self.server.db

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # startup failures surface in start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        host, port = self._requested
        self.server = TruSQLServer(
            db=self._db, host=host, port=port, **self._db_options)
        await self.server.start()
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self, timeout: float = 10.0) -> None:
        if self.server is not None:
            self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)

    def kill(self, timeout: float = 10.0) -> None:
        """Simulate ``kill -9``: abort every socket, skip all draining.

        Clients see a reset connection, not a goodbye; unflushed windows
        are lost.  What survives is exactly the WAL file — which is the
        point for crash-consistency and failover tests."""
        if self.server is not None:
            self.server.crash()
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def main(argv=None) -> int:
    """Entry point of the ``repro-server`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="TruSQL network server (Continuous Analytics repro)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--init", metavar="FILE",
                        help="TruSQL script to execute before serving")
    parser.add_argument("--supervised", action="store_true",
                        help="enable the supervised runtime at boot")
    parser.add_argument("--retention", type=float, default=None,
                        help="default stream retention seconds "
                             "(enables late-subscriber replay)")
    parser.add_argument("--data-dir", default=None,
                        help="directory for the file-backed WAL; a "
                             "restart recovers all state from it")
    parser.add_argument("--standby-of", metavar="HOST:PORT", default=None,
                        help="start as a warm standby of that primary")
    parser.add_argument("--no-auto-promote", action="store_true",
                        help="standby only promotes on an explicit "
                             "'promote' op, never on missed heartbeats")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="standby heartbeat cadence, seconds")
    parser.add_argument("--miss-limit", type=int, default=3,
                        help="consecutive failed contacts before a "
                             "standby promotes itself")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="reap client sessions silent this long")
    parser.add_argument("--wal-segment-bytes", type=int, default=None,
                        help="roll WAL segments at this size (data-dir "
                             "mode; default 4 MiB)")
    parser.add_argument("--archive-dir", default=None,
                        help="where compaction parks sealed segments "
                             "(default: wal_archive beside the data dir)")
    parser.add_argument("--compact-interval", type=float, default=30.0,
                        help="seconds between WAL compaction passes "
                             "(0 disables)")
    parser.add_argument("--scrub-interval", type=float, default=None,
                        help="seconds between integrity scrub passes")
    parser.add_argument("--backup-to", metavar="DIR", default=None,
                        help="take periodic online backups into DIR")
    parser.add_argument("--backup-interval", type=float, default=60.0,
                        help="seconds between online backups "
                             "(with --backup-to)")
    parser.add_argument("--restore-from", metavar="DIR", default=None,
                        help="before serving, rebuild --data-dir from "
                             "this backup plus any surviving WAL")
    parser.add_argument("--until-lsn", type=int, default=None,
                        help="with --restore-from: point-in-time limit "
                             "(discard records past this LSN)")
    parser.add_argument("--partitions", type=int, default=None,
                        help="hash-partition PARTITION BY streams "
                             "across N worker subprocesses")
    args = parser.parse_args(argv)

    if args.partitions:
        if args.standby_of is not None:
            parser.error("--partitions is incompatible with --standby-of "
                         "(worker shards are not replicated)")
        if args.data_dir is not None:
            parser.error("--partitions is incompatible with --data-dir "
                         "(WAL replay would bypass the partition router)")

    if args.restore_from is not None:
        if args.data_dir is None:
            parser.error("--restore-from requires --data-dir")
        from repro.storage.lifecycle import restore_backup
        stats = restore_backup(args.restore_from, args.data_dir,
                               until_lsn=args.until_lsn)
        print(f"restored {stats['records']} records "
              f"(lsn {stats['first_lsn']}..{stats['head_lsn']}) "
              f"into {args.data_dir}", flush=True)

    async def amain() -> None:
        compact_interval = (args.compact_interval
                            if args.data_dir is not None
                            and args.compact_interval else None)
        server = TruSQLServer(
            host=args.host, port=args.port,
            data_dir=args.data_dir, standby_of=args.standby_of,
            auto_promote=not args.no_auto_promote,
            heartbeat_interval=args.heartbeat_interval,
            miss_limit=args.miss_limit, idle_timeout=args.idle_timeout,
            compact_interval=compact_interval,
            scrub_interval=args.scrub_interval,
            backup_to=args.backup_to,
            backup_interval=args.backup_interval,
            wal_segment_bytes=args.wal_segment_bytes,
            wal_archive_dir=args.archive_dir,
            supervised=args.supervised,
            partitions=args.partitions,
            stream_retention=args.retention)
        if args.init and server.role == "primary":
            with open(args.init, "r", encoding="utf-8") as handle:
                await server.on_engine(
                    server.db.execute_script, handle.read())
        await server.start()
        print(_BANNER.format(host=server.host, port=server.port),
              flush=True)
        loop = asyncio.get_running_loop()
        try:
            import signal
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, server.request_shutdown)
        except (ImportError, NotImplementedError):  # pragma: no cover
            pass
        await server.serve_until_shutdown()

    asyncio.run(amain())
    return 0


if __name__ == "__main__":
    sys.exit(main())
