"""Process-wide metrics registry: counters, gauges, streaming histograms.

Instruments are created on first use and live for the life of the
registry; names are dotted paths (``wal.flush_seconds``).  Three kinds:

* :class:`Counter` — monotonically increasing integer.
* :class:`Gauge` — a point-in-time value, either set explicitly or read
  from a callback at snapshot time (callback gauges cost nothing on the
  hot path — the engine keeps its existing counters and the registry
  merely reads them when scraped).
* :class:`Histogram` — log-bucketed streaming histogram with exact
  count/sum/min/max and approximate quantiles (p50/p95/p99).

A disabled registry hands out shared null instruments whose methods are
no-ops, so instrumented code paths need no ``if enabled`` checks.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time value; ``fn`` (if given) wins over ``set``."""

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def read(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                return float("nan")
        return self.value


def _bucket_bounds() -> List[float]:
    # geometric bounds, 4 per octave, spanning ~1 microsecond .. ~1 Ms;
    # fine enough that a quantile read off a bucket edge is within ~19%
    # of the true value, which is plenty for latency telemetry
    bounds = []
    value = 1e-6
    factor = 2.0 ** 0.25
    while value < 2e6:
        bounds.append(value)
        value *= factor
    return bounds


_BOUNDS = _bucket_bounds()
_NBUCKETS = len(_BOUNDS) + 1  # +1 overflow bucket


class Histogram:
    """Log-bucketed streaming histogram (observations must be >= 0)."""

    __slots__ = ("name", "count", "sum", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        self._buckets = [0] * _NBUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._buckets[bisect_left(_BOUNDS, value)] += 1

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 < q <= 1); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self._buckets):
            seen += n
            if seen >= rank and n:
                # clamp to the exactly-tracked extremes so single-value
                # histograms report that value, not a bucket edge
                upper = _BOUNDS[i] if i < len(_BOUNDS) else self.max
                return min(max(upper, self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on demand, snapshot as rows."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        if not self.enabled:
            return Gauge(name, fn)  # unregistered: invisible, harmless
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, fn)
            elif fn is not None:
                inst.fn = fn
            return inst

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot_rows(self) -> List[tuple]:
        """(name, kind, value, count, sum, p50, p95, p99, max) rows."""
        rows = []
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for c in counters:
            rows.append((c.name, "counter", float(c.value), c.value,
                         None, None, None, None, None))
        for g in gauges:
            rows.append((g.name, "gauge", g.read(), None,
                         None, None, None, None, None))
        for h in histograms:
            rows.append((h.name, "histogram", h.mean, h.count, h.sum,
                         h.quantile(0.50), h.quantile(0.95),
                         h.quantile(0.99), h.max if h.count else None))
        rows.sort(key=lambda r: r[0])
        return rows
