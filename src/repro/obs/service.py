"""The per-database observability facade.

``Database`` creates one :class:`Observability` and threads it through
the stack: streams call :meth:`on_ingest`, CQs call
:meth:`on_window_close` / :meth:`trace_window`, storage and server
components register callback gauges via the ``bind_*`` helpers.  When
constructed with ``enabled=False`` every hook degrades to (nearly) a
no-op and the registry hands out null instruments.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer, Trace

log = logging.getLogger("repro.obs")

#: at most this many sampled-but-unclosed tuples are parked per stream
PENDING_TRACE_CAP = 64


def walk_operators(root):
    """Preorder (operator, depth, parent_index) walk of a plan tree."""
    out = []

    def visit(op, depth, parent_index):
        index = len(out)
        out.append((op, depth, parent_index))
        for child in op._children():
            visit(child, depth + 1, index)

    visit(root, 0, None)
    return out


def instrument_plan(root) -> None:
    """Attach per-operator counters to every operator under ``root``."""
    for op, _depth, _parent in walk_operators(root):
        op.instrument()


class Observability:
    """Registry + tracer + slow-window log, bound to one Database."""

    def __init__(self, enabled: bool = True, sample_rate: float = 0.01,
                 keep_traces: int = 128, slow_window_keep: int = 256):
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(sample_rate=sample_rate if enabled else 0.0,
                             keep=keep_traces)
        #: SET slow_window_ms threshold; None = logging off
        self.slow_window_ms: Optional[float] = None
        self.slow_windows: deque = deque(maxlen=slow_window_keep)
        self._lock = threading.Lock()
        # window-side instruments, resolved once
        self._h_window = self.registry.histogram("cq.window_seconds")
        self._h_e2e = self.registry.histogram("cq.e2e_seconds")
        # streams bound via bind_stream; their tuples_in counts are
        # summed at snapshot time so ingest pays nothing for the metric
        self._streams: list = []
        if enabled:
            self.registry.gauge(
                "stream.tuples_in",
                fn=lambda: sum(s.tuples_in for s in self._streams))

    # ------------------------------------------------------------------
    # ingest side
    # ------------------------------------------------------------------
    def bind_stream(self, stream) -> None:
        """Arm a stream for sampling.  The stream keeps the every-Nth
        countdown inline (one int check per untraced tuple) and calls
        :meth:`start_trace` only when it hits zero."""
        if not self.enabled:
            return
        stream.obs = self
        stream._trace_countdown = self.tracer._interval
        self._streams.append(stream)

    def start_trace(self, stream, event_time: float) -> None:
        """The stream's countdown expired: start a trace for this tuple
        and re-arm the countdown (a rate of 0 disarms it)."""
        stream._trace_countdown = self.tracer._interval
        if not stream._trace_countdown:
            return
        trace = self.tracer.start()
        trace.add_span(f"source:{stream.name}", None, time.time(), 0.0)
        pending = stream._pending_traces
        pending.append((event_time, trace))
        if len(pending) > PENDING_TRACE_CAP:
            pending.pop(0)

    def retune_streams(self) -> None:
        """Re-arm every bound stream after a sample-rate change."""
        interval = self.tracer._interval
        for stream in self._streams:
            stream._trace_countdown = interval

    @staticmethod
    def take_traces(stream, close_time: float,
                    inclusive: bool = False) -> List[Trace]:
        """Claim parked traces whose tuples fall before ``close_time``
        (or at it, for windowless transforms with ``inclusive``)."""
        pending = getattr(stream, "_pending_traces", None)
        if not pending:
            return []
        if inclusive:
            taken = [tr for et, tr in pending if et <= close_time]
            if taken:
                stream._pending_traces = [
                    (et, tr) for et, tr in pending if et > close_time]
        else:
            taken = [tr for et, tr in pending if et < close_time]
            if taken:
                stream._pending_traces = [
                    (et, tr) for et, tr in pending if et >= close_time]
        return taken

    # ------------------------------------------------------------------
    # window side
    # ------------------------------------------------------------------
    def on_window_close(self, cq, duration: float,
                        close_time: float) -> None:
        """Record window-close latency; log if over slow_window_ms."""
        self._h_window.observe(duration)
        threshold = self.slow_window_ms
        if threshold is not None and duration * 1000.0 >= threshold:
            cq.stats.slow_windows += 1
            entry = (time.time(), cq.name, close_time,
                     round(duration * 1000.0, 3))
            with self._lock:
                self.slow_windows.append(entry)
            log.warning("slow window: cq=%s close=%s took %.3f ms "
                        "(threshold %.1f ms)", cq.name, close_time,
                        duration * 1000.0, threshold)

    def trace_window(self, cq, traces: List[Trace], plan_root,
                     op_before, start_wall: float, exec_seconds: float,
                     emit_seconds: float) -> None:
        """Close out sampled tuples that fell inside this window."""
        now_pc = time.perf_counter()
        ops_after = None
        if op_before is not None:
            ops_after = [(op, op.stats.tuples_out, op.stats.wall_seconds)
                         for op, _d, _p in walk_operators(plan_root)
                         if op.stats is not None]
        for trace in traces:
            root = trace.root_id
            window = trace.add_span(f"window:{cq.name}", root,
                                    start_wall, exec_seconds)
            if ops_after is not None:
                before = {id(op): (t, w) for op, t, w in op_before}
                for op, tuples_out, wall in ops_after:
                    t0, w0 = before.get(id(op), (0, 0.0))
                    trace.add_span(
                        f"op:{op._describe()}", window.span_id,
                        start_wall, max(0.0, wall - w0))
            trace.add_span(f"emit:{cq.name}", window.span_id,
                           start_wall + exec_seconds, emit_seconds)
            self._h_e2e.observe(max(0.0, now_pc - trace.ingest_pc))
            self.tracer.finish(trace)

    # ------------------------------------------------------------------
    # component bindings (callback gauges: zero hot-path cost)
    # ------------------------------------------------------------------
    def bind_storage(self, storage) -> None:
        if not self.enabled:
            return
        pool, wal = storage.pool, storage.wal
        reg = self.registry
        reg.gauge("buffer.hits", fn=lambda: pool.hits)
        reg.gauge("buffer.misses", fn=lambda: pool.misses)
        reg.gauge("buffer.evictions", fn=lambda: pool.evictions)
        reg.gauge("wal.appends", fn=lambda: wal.head_lsn)
        reg.gauge("wal.flushes", fn=lambda: wal.flush_count)
        wal.flush_timer = reg.histogram("wal.flush_seconds")

    def bind_wal_lifecycle(self, lifecycle) -> None:
        if not self.enabled:
            return
        reg = self.registry

        def segs():
            return lifecycle.wal.segments

        reg.gauge("wal.live_bytes",
                  fn=lambda: segs().live_bytes() if segs() else 0)
        reg.gauge("wal.live_segments",
                  fn=lambda: segs().live_count() if segs() else 0)
        reg.gauge("wal.archive_bytes",
                  fn=lambda: segs().archive_bytes() if segs() else 0)
        reg.gauge("wal.segments_archived",
                  fn=lambda: lifecycle.segments_archived)
        reg.gauge("wal.backups", fn=lambda: lifecycle.backups)
        reg.gauge("wal.scrub_errors", fn=lambda: lifecycle.scrub_errors)

    def bind_channel(self, channel) -> None:
        if not self.enabled:
            return
        channel.flush_timer = self.registry.histogram(
            "channel.flush_seconds")

    def bind_server(self, server) -> None:
        if not self.enabled:
            return
        reg = self.registry
        server._c_frames_in = reg.counter("server.frames_in")
        server._c_frames_out = reg.counter("server.frames_out")
        reg.gauge("server.sessions", fn=lambda: len(server.sessions))

    def bind_admission(self, controller) -> None:
        if not self.enabled:
            return
        reg = self.registry
        reg.gauge("admission.batches_admitted",
                  fn=lambda: controller.batches_admitted)
        reg.gauge("admission.batches_rejected",
                  fn=lambda: controller.batches_rejected)
        reg.gauge("admission.batches_shed",
                  fn=lambda: controller.batches_shed)
        reg.gauge("admission.rows_admitted",
                  fn=lambda: controller.rows_admitted)
        reg.gauge("admission.rows_rejected",
                  fn=lambda: controller.rows_rejected)
        reg.gauge("admission.rows_shed",
                  fn=lambda: controller.rows_shed)
        reg.gauge("admission.duplicates",
                  fn=lambda: controller.dedup.duplicates)
        reg.gauge("admission.tier", fn=controller.tier)

    def bind_replication_primary(self, manager) -> None:
        if not self.enabled:
            return

        def ship_lag():
            peers = list(manager.peers.values())
            if not peers:
                return 0
            head = manager.db.storage.wal.head_lsn
            return max(max(0, head - p.acked_lsn) for p in peers)

        self.registry.gauge("replication.ship_lag", fn=ship_lag)

    def bind_replication_standby(self, controller) -> None:
        if not self.enabled:
            return

        def apply_lag():
            return max(0, controller.head_seen
                       - controller.applier.applied_lsn)

        self.registry.gauge("replication.apply_lag", fn=apply_lag)

    # ------------------------------------------------------------------
    # surfaces
    # ------------------------------------------------------------------
    def slow_window_rows(self) -> List[tuple]:
        with self._lock:
            return list(self.slow_windows)
