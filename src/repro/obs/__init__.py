"""Engine observability: metrics registry, pipeline tracing, stats.

The subsystem is *always on* by default but pay-as-you-go: counters and
gauges are plain attribute bumps or snapshot-time callbacks, histograms
are log-bucketed arrays, and the tracer samples a configurable fraction
of ingested tuples (deterministic every-Nth, no RNG in the hot path).
``Database(observability=False)`` turns the whole layer into no-ops so
benchmarks can measure its cost honestly.
"""

from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry,
                                NULL_COUNTER, NULL_HISTOGRAM)
from repro.obs.tracing import Span, Trace, Tracer
from repro.obs.service import Observability, instrument_plan, walk_operators

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_COUNTER", "NULL_HISTOGRAM",
    "Span", "Trace", "Tracer",
    "Observability", "instrument_plan", "walk_operators",
]
