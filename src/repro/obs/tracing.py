"""Pipeline tracing: sampled tuples carry a span tree through the CQ
pipeline — source → window → operators → emit.

Sampling is deterministic every-Nth rather than random: no RNG call per
tuple, reproducible in tests (rate 1.0 traces everything), and the
sampled population is spread evenly across the ingest stream.  Finished
traces live in a bounded deque queryable through ``repro_traces``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Span:
    """One timed step of a sampled tuple's journey."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float            # wall clock (epoch seconds)
    duration: float         # seconds

    def row(self, trace_id: int) -> tuple:
        return (trace_id, self.span_id, self.parent_id, self.name,
                self.start, round(self.duration * 1000.0, 6))


@dataclass
class Trace:
    """A span tree rooted at the ingest of one sampled tuple."""

    trace_id: int
    ingest_pc: float                      # perf_counter at ingest
    spans: List[Span] = field(default_factory=list)
    _next_span: int = 0

    def add_span(self, name: str, parent_id: Optional[int],
                 start: float, duration: float) -> Span:
        span = Span(self._next_span, parent_id, name, start, duration)
        self._next_span += 1
        self.spans.append(span)
        return span

    @property
    def root_id(self) -> Optional[int]:
        return self.spans[0].span_id if self.spans else None


class Tracer:
    """Every-Nth sampling tracer with bounded finished-trace storage."""

    def __init__(self, sample_rate: float = 0.01, keep: int = 128):
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.finished: deque = deque(maxlen=keep)
        self._interval = 0
        self.set_rate(sample_rate)

    @property
    def sample_rate(self) -> float:
        return 1.0 / self._interval if self._interval else 0.0

    def set_rate(self, rate: float) -> None:
        if rate <= 0.0:
            self._interval = 0
        else:
            self._interval = max(1, round(1.0 / min(rate, 1.0)))

    def start(self) -> Trace:
        """Begin a trace now.  Sampling decisions live with the caller
        (streams keep an inline every-Nth countdown)."""
        return Trace(next(self._ids), time.perf_counter())

    def finish(self, trace: Trace) -> None:
        with self._lock:
            self.finished.append(trace)

    def rows(self) -> List[tuple]:
        """Flattened (trace_id, span_id, parent_id, name, start,
        duration_ms) rows over finished traces, oldest first."""
        with self._lock:
            traces = list(self.finished)
        out = []
        for trace in traces:
            for span in trace.spans:
                out.append(span.row(trace.trace_id))
        return out
