"""Batch expression compiler: AST -> numpy kernels.

Mirrors :mod:`repro.exec.expressions` exactly, but over
:class:`~repro.exec.columnar.ColumnBatch` lanes instead of single rows.
A compiled kernel is ``f(batch, ctx) -> (values, mask)`` where ``values``
is a numpy array of the expression result per lane and ``mask`` is
``None`` (no NULLs) or a boolean array with ``True`` marking NULL lanes.
Masked lanes of ``values`` hold unspecified fill and must not be read.

The compiler is deliberately partial: anything whose numpy translation
could *diverge* from the iterator semantics (LIKE, CASE, casts, string
functions, subqueries, cross-type-family comparisons, `sqrt`/`ln` domain
errors, ...) raises :class:`NotVectorizable`, and the planner keeps the
iterator operator for that part of the plan.  SQL three-valued logic
(Kleene AND/OR, the non-Kleene BETWEEN, IN with NULL items) is
reproduced bit-for-bit; see tests/test_vectorized_parity.py.
"""
from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError
from repro.exec.columnar import ColumnBatch, np, require_numpy
from repro.exec.expressions import CONTEXT_FUNCTIONS, RowLayout, infer_type
from repro.sql import ast
from repro.types.datatypes import (
    BooleanType,
    DoubleType,
    IntegerType,
    IntervalType,
    TimestampType,
    VarcharType,
)


class NotVectorizable(Exception):
    """The expression has no numpy kernel; use the iterator compiler."""


_NUMERIC_TYPES = (IntegerType, DoubleType, TimestampType, IntervalType)


def _family(expr: ast.Expr, layout: RowLayout) -> Optional[str]:
    """Coarse type family used to gate comparisons/arithmetic.

    ``sql_compare`` raises across string/number and bool/string, so the
    vectorized path only compares within one family; anything uncertain
    returns None and the expression falls back to the iterator.
    """
    datatype = infer_type(expr, layout)
    if isinstance(datatype, _NUMERIC_TYPES):
        return "num"
    if isinstance(datatype, BooleanType):
        return "bool"
    if isinstance(datatype, VarcharType):
        # infer_type defaults unknown expressions to text; only trust a
        # string family when the expression provably produces strings
        if isinstance(expr, ast.ColumnRef):
            return "str"
        if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
            return "str"
        return None
    return None


#: public name used by the plan-conversion pass
def expr_family(expr: ast.Expr, layout: RowLayout) -> Optional[str]:
    return _family(expr, layout)


def _comparable(left_family: Optional[str], right_family: Optional[str]) -> bool:
    if left_family is None or right_family is None:
        return False
    if "str" in (left_family, right_family):
        return left_family == right_family
    # bool-vs-number compares as floats, same as sql_compare
    return True


def _union(ma, mb):
    if ma is None:
        return mb
    if mb is None:
        return ma
    return ma | mb


def _masked_out(n, part_dtype):
    return np.zeros(n, dtype=part_dtype)


def compile_batch_expr(expr: ast.Expr, layout: RowLayout, flags: dict):
    """Compile ``expr`` to a batch kernel or raise NotVectorizable.

    ``flags`` collects compile-time facts about the kernel tree; the
    slicing eligibility check reads ``flags['context']`` (True when the
    expression reads ``cq_close``/``cq_open``, which vary per window and
    therefore must not be evaluated per slice).
    """
    require_numpy()

    if isinstance(expr, ast.Literal):
        return _literal_kernel(expr.value)

    if isinstance(expr, ast.ColumnRef):
        index, _type = layout.resolve(expr.table, expr.name)

        def column(batch: ColumnBatch, ctx):
            return batch.columns[index], batch.masks[index]
        return column

    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op in ("AND", "OR"):
            return _logic_kernel(expr, layout, flags)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare_kernel(expr, layout, flags)
        if op in ("+", "-", "*", "/", "%"):
            return _arith_kernel(expr, layout, flags)
        raise NotVectorizable(op)

    if isinstance(expr, ast.UnaryOp):
        return _unary_kernel(expr, layout, flags)

    if isinstance(expr, ast.IsNull):
        operand = compile_batch_expr(expr.operand, layout, flags)
        negated = expr.negated

        def isnull(batch: ColumnBatch, ctx):
            _values, mask = operand(batch, ctx)
            if mask is None:
                out = np.zeros(batch.length, dtype=bool)
            else:
                out = mask.copy()
            if negated:
                out = ~out
            return out, None
        return isnull

    if isinstance(expr, ast.Between):
        return _between_kernel(expr, layout, flags)

    if isinstance(expr, ast.InList):
        return _in_list_kernel(expr, layout, flags)

    if isinstance(expr, ast.FunctionCall):
        return _function_kernel(expr, layout, flags)

    raise NotVectorizable(type(expr).__name__)


def _literal_kernel(value):
    if value is None:
        def null_literal(batch: ColumnBatch, ctx):
            n = batch.length
            return np.zeros(n, dtype=object), np.ones(n, dtype=bool)
        return null_literal
    if isinstance(value, bool):
        dtype = np.bool_
    elif isinstance(value, int):
        dtype = np.int64 if -(2 ** 63) <= value < 2 ** 63 else object
    elif isinstance(value, float):
        dtype = np.float64
    elif isinstance(value, str):
        dtype = object
    else:
        raise NotVectorizable(f"literal {value!r}")

    def literal(batch: ColumnBatch, ctx):
        return np.full(batch.length, value, dtype=dtype), None
    return literal


def _logic_kernel(expr: ast.BinaryOp, layout, flags):
    # the iterator's _and/_or treat any non-False, non-None value as
    # true; bitwise & / | only match that for genuinely boolean operands
    if _family(expr.left, layout) != "bool" or \
            _family(expr.right, layout) != "bool":
        raise NotVectorizable(f"{expr.op} over non-boolean operands")
    left = compile_batch_expr(expr.left, layout, flags)
    right = compile_batch_expr(expr.right, layout, flags)
    is_and = expr.op == "AND"

    def logic(batch: ColumnBatch, ctx):
        a, ma = left(batch, ctx)
        b, mb = right(batch, ctx)
        if ma is None and mb is None:
            return (a & b) if is_and else (a | b), None
        a_true = a if ma is None else (a & ~ma)
        a_false = ~a if ma is None else (~a & ~ma)
        b_true = b if mb is None else (b & ~mb)
        b_false = ~b if mb is None else (~b & ~mb)
        if is_and:
            out_true = a_true & b_true
            out_false = a_false | b_false
        else:
            out_true = a_true | b_true
            out_false = a_false & b_false
        mask = ~(out_true | out_false)
        return out_true, (mask if mask.any() else None)
    return logic


def _lanewise_compare(op, a, b, valid, n):
    """Elementwise comparison restricted to valid lanes.

    Restriction matters for object columns, where a masked lane holds
    ``None`` and ordering against it would raise.
    """
    if valid is None:
        av, bv = a, b
    else:
        av, bv = a[valid], b[valid]
    if op == "=":
        part = av == bv
    elif op == "<>":
        part = av != bv
    elif op == "<":
        part = av < bv
    elif op == "<=":
        part = av <= bv
    elif op == ">":
        part = av > bv
    else:
        part = av >= bv
    part = np.asarray(part, dtype=bool)
    if valid is None:
        return part
    out = np.zeros(n, dtype=bool)
    out[valid] = part
    return out


def _compare_kernel(expr: ast.BinaryOp, layout, flags):
    if not _comparable(_family(expr.left, layout), _family(expr.right, layout)):
        raise NotVectorizable(f"compare {expr.op} across type families")
    left = compile_batch_expr(expr.left, layout, flags)
    right = compile_batch_expr(expr.right, layout, flags)
    op = expr.op

    def compare(batch: ColumnBatch, ctx):
        a, ma = left(batch, ctx)
        b, mb = right(batch, ctx)
        mask = _union(ma, mb)
        valid = None if mask is None else ~mask
        out = _lanewise_compare(op, a, b, valid, batch.length)
        return out, mask
    return compare


def _arith_kernel(expr: ast.BinaryOp, layout, flags):
    lf, rf = _family(expr.left, layout), _family(expr.right, layout)
    if lf != "num" or rf != "num":
        raise NotVectorizable(f"arithmetic {expr.op} on non-numeric operands")
    left = compile_batch_expr(expr.left, layout, flags)
    right = compile_batch_expr(expr.right, layout, flags)
    op = expr.op

    def arith(batch: ColumnBatch, ctx):
        a, ma = left(batch, ctx)
        b, mb = right(batch, ctx)
        mask = _union(ma, mb)
        n = batch.length
        if mask is None:
            av, bv = a, b
        else:
            valid = ~mask
            av, bv = a[valid], b[valid]
        if op == "+":
            part = av + bv
        elif op == "-":
            part = av - bv
        elif op == "*":
            part = av * bv
        elif op == "/":
            if bv.size and np.any(bv == 0):
                raise ExecutionError("division by zero")
            part = np.true_divide(av, bv)
        else:  # "%"
            if bv.size and np.any(bv == 0):
                raise ExecutionError("division by zero")
            part = np.mod(av, bv)
        if mask is None:
            return part, None
        out = _masked_out(n, part.dtype)
        out[valid] = part
        return out, mask
    return arith


def _unary_kernel(expr: ast.UnaryOp, layout, flags):
    if expr.op == "NOT":
        if _family(expr.operand, layout) != "bool":
            raise NotVectorizable("NOT over non-boolean")
        operand = compile_batch_expr(expr.operand, layout, flags)

        def negate(batch: ColumnBatch, ctx):
            values, mask = operand(batch, ctx)
            return ~values, mask
        return negate
    if expr.op == "-":
        datatype = infer_type(expr.operand, layout)
        if not isinstance(datatype, _NUMERIC_TYPES):
            raise NotVectorizable("unary minus over non-numeric")
        operand = compile_batch_expr(expr.operand, layout, flags)

        def minus(batch: ColumnBatch, ctx):
            values, mask = operand(batch, ctx)
            return -values, mask
        return minus
    # unary '+' compiles to the bare operand in the iterator too
    return compile_batch_expr(expr.operand, layout, flags)


def _between_kernel(expr: ast.Between, layout, flags):
    vf = _family(expr.operand, layout)
    lof = _family(expr.low, layout)
    hif = _family(expr.high, layout)
    if not (_comparable(vf, lof) and _comparable(vf, hif)):
        raise NotVectorizable("BETWEEN across type families")
    operand = compile_batch_expr(expr.operand, layout, flags)
    low = compile_batch_expr(expr.low, layout, flags)
    high = compile_batch_expr(expr.high, layout, flags)
    negated = expr.negated

    def between(batch: ColumnBatch, ctx):
        v, mv = operand(batch, ctx)
        lo, mlo = low(batch, ctx)
        hi, mhi = high(batch, ctx)
        # NOT Kleene: any NULL among the three operands nulls the result
        # (mirrors the iterator's sql_compare(value, low/high) is None)
        mask = _union(_union(mv, mlo), mhi)
        valid = None if mask is None else ~mask
        n = batch.length
        lo_ok = _lanewise_compare(">=", v, lo, valid, n)
        hi_ok = _lanewise_compare("<=", v, hi, valid, n)
        inside = lo_ok & hi_ok
        if negated:
            inside = ~inside if valid is None else (~inside & valid)
        return inside, mask
    return between


def _in_list_kernel(expr: ast.InList, layout, flags):
    vf = _family(expr.operand, layout)
    for item in expr.items:
        if not _comparable(vf, _family(item, layout)):
            raise NotVectorizable("IN across type families")
    operand = compile_batch_expr(expr.operand, layout, flags)
    items = [compile_batch_expr(item, layout, flags) for item in expr.items]
    negated = expr.negated

    def contains(batch: ColumnBatch, ctx):
        n = batch.length
        v, mv = operand(batch, ctx)
        match = np.zeros(n, dtype=bool)
        saw_null = np.zeros(n, dtype=bool)
        for item in items:
            cand, mc = item(batch, ctx)
            if mc is not None:
                saw_null |= mc
            both = _union(mv, mc)
            valid = None if both is None else ~both
            match |= _lanewise_compare("=", v, cand, valid, n)
        # a NULL operand is NULL; a non-match with a NULL item is NULL
        mask = saw_null & ~match
        if mv is not None:
            mask = mask | mv
        out = ~match if negated else match
        if mask.any():
            out = out & ~mask
            return out, mask
        return out, None
    return contains


# round() digits must be a literal so the kernel has one shift per batch
def _round_digits(expr: ast.FunctionCall):
    if len(expr.args) == 1:
        return 0
    if len(expr.args) == 2 and isinstance(expr.args[1], ast.Literal) \
            and isinstance(expr.args[1].value, int):
        return expr.args[1].value
    raise NotVectorizable("round with non-literal digits")


def _function_kernel(expr: ast.FunctionCall, layout, flags):
    name = expr.name
    if name in CONTEXT_FUNCTIONS:
        flags["context"] = True

        def from_context(batch: ColumnBatch, ctx, name=name):
            if ctx is None or name not in ctx:
                raise ExecutionError(
                    f"{name}(*) is only valid in a continuous query"
                )
            return np.full(batch.length, ctx[name], dtype=np.float64), None
        return from_context

    if name == "coalesce":
        if not expr.args:
            raise NotVectorizable("coalesce()")
        from repro.exec.columnar import dtype_for
        dtypes = {dtype_for(infer_type(a, layout)) for a in expr.args}
        if len(dtypes) != 1:
            # mixed-dtype coalesce would promote lanes the iterator
            # returns untouched (e.g. int lanes to float)
            raise NotVectorizable("coalesce across dtypes")
        args = [compile_batch_expr(a, layout, flags) for a in expr.args]

        def coalesce(batch: ColumnBatch, ctx):
            out = None
            omask = None
            for arg in args:
                values, mask = arg(batch, ctx)
                if out is None:
                    out = values.copy()
                    omask = None if mask is None else mask.copy()
                else:
                    need = omask
                    if mask is None:
                        out[need] = values[need]
                        omask = None
                    else:
                        take = need & ~mask
                        out[take] = values[take]
                        omask = need & mask
                if omask is None or not omask.any():
                    return out, None
            return out, omask
        return coalesce

    if name in ("abs", "floor", "ceil", "ceiling", "round"):
        if len(expr.args) < 1 or \
                not isinstance(infer_type(expr.args[0], layout),
                               _NUMERIC_TYPES):
            raise NotVectorizable(f"{name} over non-numeric")
        if name == "round":
            digits = _round_digits(expr)
        elif len(expr.args) != 1:
            raise NotVectorizable(f"{name} arity")
        arg = compile_batch_expr(expr.args[0], layout, flags)

        if name == "abs":
            def kernel(batch: ColumnBatch, ctx):
                values, mask = arg(batch, ctx)
                return np.abs(values), mask
        elif name == "round":
            def kernel(batch: ColumnBatch, ctx):
                values, mask = arg(batch, ctx)
                # the iterator's round() always returns float
                return np.round(values.astype(np.float64), digits), mask
        elif name == "floor":
            def kernel(batch: ColumnBatch, ctx):
                values, mask = arg(batch, ctx)
                # math.floor returns int; match it
                return np.floor(values).astype(np.int64), mask
        else:  # ceil / ceiling
            def kernel(batch: ColumnBatch, ctx):
                values, mask = arg(batch, ctx)
                return np.ceil(values).astype(np.int64), mask
        return kernel

    raise NotVectorizable(f"function {name}")
