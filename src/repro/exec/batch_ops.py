"""Batch-mode physical operators for the vectorized executor.

A batch operator implements ``batches(ctx)`` — a generator of
:class:`~repro.exec.columnar.ColumnBatch` — and bridges to the iterator
protocol through ``rows(ctx)``, so a batch subtree can sit under any
iterator operator (per-operator mixed mode).  Instrumentation wraps
``batches`` instead of ``rows``; ``OperatorStats.batch_rows`` counts the
rows that flowed through the vectorized path.

:class:`BatchAggregate` is the heart of the incremental window path: it
exposes mergeable *partial* aggregation (``partial_for_rows`` /
``merge_partials``) using exactly the same state shapes as the iterator
aggregates in :mod:`repro.exec.aggregates`, so slice partials computed
vectorized merge with ``Aggregate.merge`` at window close.
"""
from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro.exec import operators as ops
from repro.exec.columnar import ColumnBatch, np


class _RowwiseNeeded(Exception):
    """Internal: this batch needs the row-at-a-time fallback."""


class BatchOperator(ops.Operator):
    """Base class for operators that produce column batches."""

    mode = "batch"

    def batches(self, ctx):
        raise NotImplementedError

    def rows(self, ctx):
        # iterator bridge: parents that stayed in iterator mode pull
        # rows; self.batches is looked up per call so instrumentation
        # swaps apply here too
        for batch in self.batches(ctx):
            yield from batch.to_rows()

    def instrument(self) -> None:
        if self.stats is not None:
            return
        self.stats = st = ops.OperatorStats()
        inner = self._batches_plain = self.batches

        def batches(ctx, _inner=inner, _st=st, _pc=time.perf_counter):
            _st.calls += 1
            t0 = _pc()
            for batch in _inner(ctx):
                _st.wall_seconds += _pc() - t0
                _st.tuples_out += batch.length
                _st.batch_rows += batch.length
                yield batch
                t0 = _pc()
            _st.wall_seconds += _pc() - t0

        self._batches_timed = batches
        self.batches = batches

    def set_timing(self, active: bool) -> None:
        if self.stats is not None:
            self.batches = (self._batches_timed if active
                            else self._batches_plain)


class BatchSource(BatchOperator):
    """The batch twin of RowSource: builds one ColumnBatch per pull."""

    def __init__(self, fetch: Callable, types: Sequence, label: str,
                 fallback: ops.Operator, is_stream_source: bool = False):
        self._fetch = fetch
        self.types = list(types)
        self._label = label
        self.fallback = fallback
        self.is_stream_source = is_stream_source

    def batches(self, ctx):
        yield ColumnBatch.from_rows(self._fetch(), self.types)

    def _describe(self):
        return f"BatchSource({self._label})"


class BatchFilter(BatchOperator):
    """WHERE over batches: computes the predicate kernel, compresses."""

    def __init__(self, child: BatchOperator, kernel: Callable,
                 uses_context: bool):
        self.child = child
        self._kernel = kernel
        self.uses_context = uses_context

    def batches(self, ctx):
        kernel = self._kernel
        for batch in self.child.batches(ctx):
            values, mask = kernel(batch, ctx)
            keep = values if mask is None else (values & ~mask)
            if keep.all():
                yield batch
            else:
                yield batch.take(keep)

    def _children(self):
        return [self.child]


class BatchProject(BatchOperator):
    """Projection over batches: one kernel per output column."""

    def __init__(self, child: BatchOperator, kernels: Sequence[Callable],
                 uses_context: bool):
        self.child = child
        self._kernels = list(kernels)
        self.uses_context = uses_context

    def batches(self, ctx):
        kernels = self._kernels
        for batch in self.child.batches(ctx):
            columns = []
            masks = []
            for kernel in kernels:
                values, mask = kernel(batch, ctx)
                columns.append(values)
                masks.append(mask)
            yield ColumnBatch(columns, masks, batch.length)

    def _children(self):
        return [self.child]


# ---------------------------------------------------------------------------
# vectorized aggregation
# ---------------------------------------------------------------------------


_INT_MAX = None
_INT_MIN = None


def _int_sentinels():
    global _INT_MAX, _INT_MIN
    if _INT_MAX is None:
        info = np.iinfo(np.int64)
        _INT_MAX, _INT_MIN = info.max, info.min
    return _INT_MAX, _INT_MIN


class VectorAgg:
    """One aggregate column computed vectorized per batch.

    ``kind`` is one of ``count_star``, ``count``, ``sum``, ``avg``,
    ``min``, ``max``; ``partial`` returns one iterator-shaped state per
    group (see :mod:`repro.exec.aggregates` for the shapes).
    """

    def __init__(self, kind: str, arg_kernel: Optional[Callable]):
        self.kind = kind
        self._arg_kernel = arg_kernel

    def partial(self, batch: ColumnBatch, ctx, codes, order, starts,
                counts, g: int) -> List:
        kind = self.kind
        if kind == "count_star":
            return counts.tolist()
        values, mask = self._arg_kernel(batch, ctx)
        if mask is None:
            valid_counts = counts
        else:
            valid_counts = np.bincount(codes[~mask], minlength=g)
        if kind == "count":
            return valid_counts.tolist()
        if kind in ("min", "max") and values.dtype == object:
            # np.minimum/maximum over object lanes is not worth trusting
            raise _RowwiseNeeded
        sorted_values = values[order]
        sorted_mask = None if mask is None else mask[order]
        if kind == "sum":
            if sorted_mask is not None:
                zero = 0 if values.dtype != np.float64 else 0.0
                sorted_values = np.where(sorted_mask, zero, sorted_values)
            sums = np.add.reduceat(sorted_values, starts).tolist()
            return [None if valid_counts[i] == 0 else sums[i]
                    for i in range(g)]
        if kind == "avg":
            floats = sorted_values.astype(np.float64)
            if sorted_mask is not None:
                floats = np.where(sorted_mask, 0.0, floats)
            totals = np.add.reduceat(floats, starts).tolist()
            vc = valid_counts.tolist()
            # Avg state is (total, count); an empty group keeps (0.0, 0)
            return [(totals[i] if vc[i] else 0.0, vc[i]) for i in range(g)]
        # min / max
        if sorted_mask is not None:
            if values.dtype == np.float64:
                fill = np.inf if kind == "min" else -np.inf
            else:
                hi, lo = _int_sentinels()
                fill = hi if kind == "min" else lo
            sorted_values = np.where(sorted_mask, fill, sorted_values)
        reducer = np.minimum if kind == "min" else np.maximum
        extremes = reducer.reduceat(sorted_values, starts).tolist()
        return [None if valid_counts[i] == 0 else extremes[i]
                for i in range(g)]


class BatchAggregate(ops.Operator):
    """Vectorized GROUP BY (zero or one group key) with mergeable partials.

    Three entry points share the kernels:

    - plain plan execution: ``rows(ctx)`` accumulates over the child's
      batches and finalizes (whole-window vectorized aggregation);
    - the sliced window path: ``partial_for_rows`` per sealed slice and
      ``merge_partials`` + ``finalize`` at window close;
    - ``set_merged`` lets the CQ inject the already-finalized window
      rows so the same plan tree serves EXPLAIN/stats in sliced mode.

    Groups are emitted in first-seen order, matching HashAggregate.
    """

    mode = "batch"

    def __init__(self, child, group_kernel: Optional[Callable],
                 vector_aggs: Sequence[VectorAgg],
                 fallback_group_fns, fallback_specs, uses_context: bool):
        self.child = child
        self._group_kernel = group_kernel
        self._vector_aggs = list(vector_aggs)
        self._fallback_group_fns = list(fallback_group_fns)
        self._fallback_specs = list(fallback_specs)
        self.uses_context = uses_context
        self._merged = None
        self._timed = True

    # -- plan protocol ------------------------------------------------------

    def rows(self, ctx):
        if self._merged is not None:
            yield from self._merged
            return
        yield from self.finalize(self.accumulate(ctx))

    def set_timing(self, active: bool) -> None:
        super().set_timing(active)
        self._timed = active

    def set_merged(self, rows) -> None:
        self._merged = rows

    def _children(self):
        return [self.child]

    def _describe(self):
        return (f"BatchAggregate({len(self._fallback_group_fns)} keys, "
                f"{len(self._vector_aggs)} aggs)")

    # -- partial aggregation ------------------------------------------------

    def accumulate(self, ctx) -> dict:
        """Aggregate the child's batches into a partial-state dict."""
        merged: dict = {}
        st = self.stats
        for batch in self.child.batches(ctx):
            if st is not None and self._timed:
                st.batch_rows += batch.length
            part = self._batch_partial(batch, ctx)
            if not merged:
                merged = part
            else:
                self._merge_into(merged, part)
        return merged

    def partial_for_rows(self, batch: ColumnBatch, ctx) -> dict:
        """One slice's partial states (used by the sliced window path)."""
        return self._batch_partial(batch, ctx)

    def merge_partials(self, partials) -> dict:
        merged: dict = {}
        for part in partials:
            if not merged:
                # copy the state lists: slice partials are reused across
                # overlapping windows and must never be mutated
                for key, states in part.items():
                    merged[key] = list(states)
            else:
                self._merge_into(merged, part)
        return merged

    def finalize(self, groups: dict) -> List[tuple]:
        specs = self._fallback_specs
        if not groups and not self._fallback_group_fns:
            groups = {(): [agg.create() for agg, _ in specs]}
        return [
            key + tuple(agg.result(state)
                        for (agg, _), state in zip(specs, states))
            for key, states in groups.items()
        ]

    def _merge_into(self, merged: dict, part: dict) -> None:
        specs = self._fallback_specs
        for key, states in part.items():
            current = merged.get(key)
            if current is None:
                merged[key] = list(states)
            else:
                merged[key] = [
                    agg.merge(a, b)
                    for (agg, _), a, b in zip(specs, current, states)
                ]

    def _batch_partial(self, batch: ColumnBatch, ctx) -> dict:
        n = batch.length
        if n == 0:
            return {}
        if self._group_kernel is None:
            codes = np.zeros(n, dtype=np.intp)
            g = 1
            keys = [()]
            first_seen = range(1)
        else:
            group_values, group_mask = self._group_kernel(batch, ctx)
            if group_mask is not None and group_mask.any():
                # NULL group keys are rare; keep exact dict semantics
                return self._rowwise_partial(batch, ctx)
            uniques, first_index, codes = np.unique(
                group_values, return_index=True, return_inverse=True)
            g = len(uniques)
            key_values = uniques.tolist()
            keys = [(k,) for k in key_values]
            # np.unique sorts; HashAggregate emits first-seen order
            first_seen = np.argsort(first_index, kind="stable").tolist()
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        starts = np.searchsorted(sorted_codes, np.arange(g))
        counts = np.bincount(codes, minlength=g)
        try:
            per_agg = [va.partial(batch, ctx, codes, order, starts,
                                  counts, g)
                       for va in self._vector_aggs]
        except _RowwiseNeeded:
            return self._rowwise_partial(batch, ctx)
        return {
            keys[gi]: [states[gi] for states in per_agg]
            for gi in first_seen
        }

    def _rowwise_partial(self, batch: ColumnBatch, ctx) -> dict:
        """The HashAggregate loop over this one batch (exact semantics)."""
        groups: dict = {}
        group_fns = self._fallback_group_fns
        specs = self._fallback_specs
        for row in batch.to_rows():
            key = tuple(e(row, ctx) for e in group_fns)
            states = groups.get(key)
            if states is None:
                states = [agg.create() for agg, _ in specs]
                groups[key] = states
            for i, (agg, arg_fn) in enumerate(specs):
                value = arg_fn(row, ctx) if arg_fn is not None else None
                states[i] = agg.add(states[i], value)
        return groups
